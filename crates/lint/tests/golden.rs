//! Golden gate: the 17 reference solutions, every alternate solution, and
//! every testbench must produce zero error-severity lint diagnostics.
//!
//! Warnings are allowed (some references legitimately leave signals unused
//! or rely on idioms the warning rules flag conservatively); errors mean a
//! rule's false-positive policy regressed. CI additionally snapshots the
//! exact output via the `lint-golden` job.

use vgen_lint::lint_source;
use vgen_problems::problems;

#[test]
fn reference_solutions_have_no_lint_errors() {
    for p in problems() {
        for (i, source) in p.all_solutions().into_iter().enumerate() {
            let report = lint_source(&source)
                .unwrap_or_else(|e| panic!("problem {} solution {i} must parse: {e}", p.id));
            assert!(
                !report.has_errors(),
                "problem {} solution {i} has lint errors:\n{}",
                p.id,
                report.render("solution.v", &source)
            );
        }
    }
}

#[test]
fn testbenches_have_no_lint_errors() {
    for p in problems() {
        // Testbenches are linted standalone: the DUT instance is unresolved,
        // which exercises the conservative instance-connection policy.
        let report = lint_source(p.testbench)
            .unwrap_or_else(|e| panic!("problem {} testbench must parse: {e}", p.id));
        assert!(
            !report.has_errors(),
            "problem {} testbench has lint errors:\n{}",
            p.id,
            report.render("tb.v", p.testbench)
        );
    }
}

#[test]
fn full_reference_with_testbench_has_no_lint_errors() {
    for p in problems() {
        let source = format!("{}\n{}", p.reference_source(), p.testbench);
        let report =
            lint_source(&source).unwrap_or_else(|e| panic!("problem {} must parse: {e}", p.id));
        assert!(
            !report.has_errors(),
            "problem {} reference+tb has lint errors:\n{}",
            p.id,
            report.render("full.v", &source)
        );
    }
}
