//! Lint diagnostics: rule identities, severities, and rendering.
//!
//! Every finding is a [`Diagnostic`] carrying the rule that fired, its
//! severity, a source [`Span`] and a message. Rendering resolves spans to
//! `file:line:col` through [`LineMap`] and prints a rustc-style snippet;
//! [`diagnostics_json`] serialises the same data machine-readably so a
//! tool-assisted generation loop can feed findings back to a model.

use std::fmt;

use vgen_verilog::span::{LineMap, Span};

/// The lint rules, in canonical (report) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// One net with two whole-signal structural drivers (two continuous
    /// assigns, two always blocks, or a mix).
    MultiDrivenNet,
    /// A cycle of combinational dependencies with no register breaking it.
    CombLoop,
    /// The same signal assigned with both `=` and `<=` in procedural code.
    MixedAssignStyles,
    /// A combinational block leaves a signal unassigned on some path.
    InferredLatch,
    /// A `case` in a combinational block with no `default` and no provably
    /// full label coverage.
    MissingDefault,
    /// A level-sensitive block reads signals missing from its
    /// sensitivity list.
    IncompleteSensitivity,
    /// An assignment whose right-hand side is provably wider than its
    /// target (silent truncation).
    WidthMismatch,
    /// A part-select or replication of zero width.
    ZeroWidth,
    /// A signal that is read but has no driver.
    UndrivenSignal,
    /// A signal that is never read.
    UnusedSignal,
}

impl Rule {
    /// All rules in canonical order.
    pub const ALL: [Rule; 10] = [
        Rule::MultiDrivenNet,
        Rule::CombLoop,
        Rule::MixedAssignStyles,
        Rule::InferredLatch,
        Rule::MissingDefault,
        Rule::IncompleteSensitivity,
        Rule::WidthMismatch,
        Rule::ZeroWidth,
        Rule::UndrivenSignal,
        Rule::UnusedSignal,
    ];

    /// Stable kebab-case identifier (used in reports, journals and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Rule::MultiDrivenNet => "multi-driven-net",
            Rule::CombLoop => "comb-loop",
            Rule::MixedAssignStyles => "mixed-assign-styles",
            Rule::InferredLatch => "inferred-latch",
            Rule::MissingDefault => "missing-default",
            Rule::IncompleteSensitivity => "incomplete-sensitivity",
            Rule::WidthMismatch => "width-mismatch",
            Rule::ZeroWidth => "zero-width",
            Rule::UndrivenSignal => "undriven-signal",
            Rule::UnusedSignal => "unused-signal",
        }
    }

    /// Looks a rule up by its [`Rule::name`].
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether this rule describes a behavioural hazard — something that
    /// can make a testbench-passing design misbehave in real hardware
    /// (races, latches, feedback, truncation). The hygiene rules
    /// ([`Rule::UndrivenSignal`], [`Rule::UnusedSignal`]) flag dead code,
    /// not hazards, and are excluded from the eval sweep's
    /// passed-but-hazardous bucket.
    pub fn is_hazard(self) -> bool {
        !matches!(self, Rule::UndrivenSignal | Rule::UnusedSignal)
    }

    /// The severity this rule fires at.
    ///
    /// Error severity is reserved for hazards that are structurally broken
    /// regardless of intent (conflicting drivers, combinational feedback);
    /// everything that *could* be deliberate — latches, truncation, unused
    /// signals — stays a warning. See DESIGN.md, "Lint severity model".
    pub fn severity(self) -> Severity {
        match self {
            Rule::MultiDrivenNet | Rule::CombLoop => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Tolerable hazard; the design may still be intentional.
    Warning,
    /// Structurally broken; no plausible intent produces this.
    Error,
}

impl Severity {
    /// Lower-case tag used in rendered output and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Severity (normally [`Rule::severity`]).
    pub severity: Severity,
    /// Source location of the finding.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the rule's default severity.
    pub fn new(rule: Rule, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic rustc-style against its source:
    ///
    /// ```text
    /// warning[inferred-latch]: `q` is not assigned on every path
    ///   --> cand.v:3:1
    ///    |
    ///  3 | always @* if (en) q = d;
    ///    | ^^^^^^^^^
    /// ```
    pub fn render(&self, file: &str, src: &str) -> String {
        let map = LineMap::new(src);
        let (start, end) = map.span_line_cols(self.span);
        let mut out = format!(
            "{}[{}]: {}\n  --> {file}:{start}\n",
            self.severity, self.rule, self.message
        );
        // Source snippet: the first line of the span, with a caret run
        // under the spanned columns (clamped to that line).
        let line_begin = map.line_start(start.line).unwrap_or(0) as usize;
        let line_text = src[line_begin..].lines().next().unwrap_or("");
        let gutter = format!("{:>4}", start.line);
        let blank = " ".repeat(gutter.len());
        let caret_start = (start.col as usize).saturating_sub(1).min(line_text.len());
        let span_cols = if end.line == start.line {
            (end.col.saturating_sub(start.col) as usize).max(1)
        } else {
            line_text.len().saturating_sub(caret_start).max(1)
        };
        let carets = "^".repeat(span_cols.min(line_text.len().saturating_sub(caret_start).max(1)));
        out.push_str(&format!(
            "{blank} |\n{gutter} | {line_text}\n{blank} | {}{carets}\n",
            " ".repeat(caret_start)
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises diagnostics as a JSON array (hand-rolled; no serde in this
/// environment). Spans are emitted both as byte offsets and as resolved
/// line/column so downstream tools need no source access.
pub fn diagnostics_json(diags: &[Diagnostic], file: &str, src: &str) -> String {
    let map = LineMap::new(src);
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        let (start, end) = map.span_line_cols(d.span);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"rule\": \"{}\", \"severity\": \"{}\", \
             \"line\": {}, \"col\": {}, \"end_line\": {}, \"end_col\": {}, \
             \"start\": {}, \"end\": {}, \"message\": \"{}\"}}",
            json_escape(file),
            d.rule,
            d.severity,
            start.line,
            start.col,
            end.line,
            end.col,
            d.span.start,
            d.span.end,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn severity_model_is_two_tier() {
        assert_eq!(Rule::MultiDrivenNet.severity(), Severity::Error);
        assert_eq!(Rule::CombLoop.severity(), Severity::Error);
        assert_eq!(Rule::InferredLatch.severity(), Severity::Warning);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "module m;\nassign y = a;\nendmodule\n";
        let d = Diagnostic::new(
            Rule::UndrivenSignal,
            Span::new(21, 22),
            "`a` is read but never driven",
        );
        let text = d.render("m.v", src);
        assert!(text.contains("warning[undriven-signal]"), "{text}");
        assert!(text.contains("--> m.v:2:12"), "{text}");
        assert!(text.contains("assign y = a;"), "{text}");
        assert!(text.lines().last().expect("caret line").contains('^'));
    }

    #[test]
    fn render_survives_spans_past_line_end() {
        let d = Diagnostic::new(Rule::CombLoop, Span::new(0, 500), "loop");
        let text = d.render("m.v", "assign y = y;\n");
        assert!(text.contains("error[comb-loop]"));
    }

    #[test]
    fn json_escapes_and_resolves() {
        let src = "assign y = \"x\";\n";
        let d = Diagnostic::new(Rule::WidthMismatch, Span::new(0, 6), "bad \"quote\"");
        let json = diagnostics_json(&[d], "a\\b.v", src);
        assert!(json.contains("\"rule\": \"width-mismatch\""), "{json}");
        assert!(json.contains("\\\"quote\\\""), "{json}");
        assert!(json.contains("a\\\\b.v"), "{json}");
        assert!(json.contains("\"line\": 1"));
        assert_eq!(diagnostics_json(&[], "f", ""), "[]");
    }
}
