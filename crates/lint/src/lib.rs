//! # vgen-lint
//!
//! Semantic static analysis for generated Verilog — the VGen-RS analogue of
//! an iverilog/Verilator lint pass. The benchmark's pass/fail split hides a
//! finer signal: completions that pass their testbench while carrying
//! latent hazards. This crate surfaces those as structured, span-carrying
//! diagnostics over the parsed AST (with elaborated widths when the module
//! elaborates):
//!
//! * **races** — multiply-driven nets, mixed `=`/`<=` styles
//!   ([`Rule::MultiDrivenNet`], [`Rule::MixedAssignStyles`])
//! * **latches** — incomplete path coverage in combinational blocks,
//!   `case` without `default`, incomplete sensitivity lists
//! * **combinational loops** — cycles in the signal-dependency graph
//! * **width hazards** — silent truncation, zero-width selects, plus
//!   undriven/unused signals
//!
//! ```
//! use vgen_lint::{lint_source, Rule};
//!
//! let report = lint_source(
//!     "module m(input en, input d, output reg q);
//!        always @* if (en) q = d;
//!      endmodule",
//! ).expect("parses");
//! assert_eq!(report.warning_count(), 1);
//! assert_eq!(report.diagnostics[0].rule, Rule::InferredLatch);
//! ```
//!
//! Every rule is *total*: hostile input may produce diagnostics or silence,
//! never a panic or unbounded work (checked arithmetic everywhere, caps on
//! reported loops and total diagnostics). The false-positive policy is
//! "silence when unsure": rules fire only on provable hazards, because in
//! the eval sweep a diagnostic demotes a passing completion into the
//! hazardous-pass bucket. See DESIGN.md for the full policy.

#![warn(missing_docs)]

pub mod analyze;
pub mod diag;

mod graph;
mod latch;
mod race;
mod usage;
mod width;

pub use diag::{diagnostics_json, Diagnostic, Rule, Severity};
pub use vgen_verilog::error::ParseError;

use vgen_verilog::ast::SourceFile;

/// Hard cap on diagnostics per report, so a pathological input cannot
/// balloon journals or JSON artifacts.
pub const MAX_DIAGNOSTICS: usize = 64;

/// The result of linting one source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, ordered by source position then rule, capped at
    /// [`MAX_DIAGNOSTICS`].
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> u32 {
        self.count_severity(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> u32 {
        self.count_severity(Severity::Warning)
    }

    fn count_severity(&self, severity: Severity) -> u32 {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count() as u32
    }

    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether the report is completely clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Per-rule finding counts, in [`Rule::ALL`] order, zero-count rules
    /// omitted. Deterministic — used for journal serialisation.
    pub fn per_rule(&self) -> Vec<(Rule, u32)> {
        Rule::ALL
            .into_iter()
            .filter_map(|rule| {
                let n = self.diagnostics.iter().filter(|d| d.rule == rule).count() as u32;
                (n > 0).then_some((rule, n))
            })
            .collect()
    }

    /// Renders every diagnostic rustc-style against the source.
    pub fn render(&self, file: &str, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(file, src));
            out.push('\n');
        }
        out
    }

    /// Serialises the report as a JSON array.
    pub fn to_json(&self, file: &str, src: &str) -> String {
        diagnostics_json(&self.diagnostics, file, src)
    }
}

/// Lints an already-parsed source file: every module is analysed
/// independently and the findings are merged, sorted and capped.
pub fn lint_file(file: &SourceFile) -> LintReport {
    let _span = vgen_obs::span("lint");
    let mut diagnostics = Vec::new();
    for module in &file.modules {
        let a = analyze::Analysis::build(file, module);
        race::check(&a, &mut diagnostics);
        latch::check(&a, &mut diagnostics);
        graph::check(&a, &mut diagnostics);
        width::check(&a, &mut diagnostics);
        usage::check(&a, &mut diagnostics);
    }
    diagnostics.sort_by(|x, y| {
        (x.span.start, x.span.end, x.rule, x.message.as_str()).cmp(&(
            y.span.start,
            y.span.end,
            y.rule,
            y.message.as_str(),
        ))
    });
    diagnostics.truncate(MAX_DIAGNOSTICS);
    LintReport { diagnostics }
}

/// Parses and lints Verilog source. A parse failure is returned as an
/// error — parse diagnostics already flow through the compile-fail path of
/// the eval pipeline and are not lint findings.
pub fn lint_source(src: &str) -> Result<LintReport, ParseError> {
    let file = vgen_verilog::parse(src)?;
    Ok(lint_file(&file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_verilog::span::LineMap;

    fn lint(src: &str) -> LintReport {
        lint_source(src).expect("fixture parses")
    }

    /// The acceptance-criteria fixtures: each of the four hazard classes is
    /// detected with a span pointing at the offending construct.
    #[test]
    fn race_fixture_with_span() {
        let src = "module m(input a, input b, output y);\n\
                   assign y = a;\n\
                   assign y = b;\n\
                   endmodule\n";
        let r = lint(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::MultiDrivenNet)
            .expect("race detected");
        assert_eq!(d.severity, Severity::Error);
        let line = LineMap::new(src).line_col(d.span.start).line;
        assert!(line == 2 || line == 3, "span on a driver line, got {line}");
        assert!(r.has_errors());
    }

    #[test]
    fn latch_fixture_with_span() {
        let src = "module m(input en, input d, output reg q);\n\
                   always @* begin\n\
                   if (en) q = d;\n\
                   end\n\
                   endmodule\n";
        let r = lint(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::InferredLatch)
            .expect("latch detected");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(LineMap::new(src).line_col(d.span.start).line, 3);
    }

    #[test]
    fn comb_loop_fixture_with_span() {
        let src = "module m(input a, input b, output p, output q);\n\
                   assign p = q & a;\n\
                   assign q = p | b;\n\
                   endmodule\n";
        let r = lint(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::CombLoop)
            .expect("loop detected");
        assert_eq!(d.severity, Severity::Error);
        let line = LineMap::new(src).line_col(d.span.start).line;
        assert!(line == 2 || line == 3, "span on a driver line, got {line}");
    }

    #[test]
    fn multi_driver_always_fixture() {
        let src = "module m(input clk, input a, output reg q);\n\
                   always @(posedge clk) q <= a;\n\
                   always @(posedge clk) q <= ~a;\n\
                   endmodule\n";
        let r = lint(src);
        assert!(
            r.diagnostics.iter().any(|d| d.rule == Rule::MultiDrivenNet),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn width_fixture_with_span() {
        let src = "module m(input [15:0] a, output [7:0] y);\n\
                   assign y = a;\n\
                   endmodule\n";
        let r = lint(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::WidthMismatch)
            .expect("truncation detected");
        assert_eq!(LineMap::new(src).line_col(d.span.start).line, 2);
        assert!(!r.has_errors());
    }

    #[test]
    fn clean_reference_style_module() {
        let r = lint(
            "module mux2(input [3:0] a, input [3:0] b, input sel,
                         output [3:0] y);
               assign y = sel ? b : a;
             endmodule",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn report_counts_and_per_rule() {
        let r = lint(
            "module m(input a, input b, output y, output z);
               assign y = a;
               assign y = b;
               assign z = ~z;
             endmodule",
        );
        assert_eq!(r.error_count(), 2);
        assert!(r.has_errors());
        let per_rule = r.per_rule();
        assert!(
            per_rule.contains(&(Rule::MultiDrivenNet, 1)),
            "{per_rule:?}"
        );
        assert!(per_rule.contains(&(Rule::CombLoop, 1)), "{per_rule:?}");
        let total: u32 = per_rule.iter().map(|(_, n)| n).sum();
        assert_eq!(total as usize, r.diagnostics.len());
    }

    #[test]
    fn diagnostics_are_sorted_and_capped() {
        // A module with many zero-width selects still yields a bounded,
        // position-sorted report.
        let mut body = String::from("module m(input [7:0] a, output y);\n");
        for i in 0..100 {
            body.push_str(&format!("wire t{i} = a[0:1];\n"));
        }
        body.push_str("assign y = 1'b0;\nendmodule\n");
        let r = lint(&body);
        assert!(r.diagnostics.len() <= MAX_DIAGNOSTICS);
        let starts: Vec<u32> = r.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn parse_error_is_propagated() {
        assert!(lint_source("module m(; endmodule").is_err());
    }

    #[test]
    fn multiple_modules_are_all_linted() {
        let r = lint(
            "module a_bad(output y);
               assign y = ~y;
             endmodule
             module b_bad(input en, input d, output reg q);
               always @* if (en) q = d;
             endmodule",
        );
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::CombLoop));
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::InferredLatch));
    }
}
