//! Combinational loop detection over a signal-dependency graph.
//!
//! Edges run from each combinationally-driven signal to the signals its
//! value depends on: continuous assigns, gate outputs, and assignments in
//! combinational always blocks (including control dependencies). Edge-
//! triggered blocks break cycles by construction and contribute nothing.
//! Within a combinational block, reads of a variable already assigned
//! earlier on the same path (blocking) are *not* dependencies — that is the
//! standard `y = 0; y = y | a;` accumulator idiom, not feedback.

use std::collections::{BTreeMap, BTreeSet};

use vgen_verilog::ast::{AssignOp, Expr, Item, Stmt, StmtKind};
use vgen_verilog::span::Span;

use crate::analyze::{self, Analysis, BlockKind, Sel};
use crate::diag::{Diagnostic, Rule};

/// At most this many distinct loops are reported per module.
const MAX_LOOPS: usize = 5;

/// Runs combinational loop detection over one module's analysis.
pub fn check(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    let mut g = Graph::default();
    for item in &a.module.items {
        match item {
            Item::Assign(ai) => {
                for (lhs, rhs) in &ai.assigns {
                    let mut deps = Vec::new();
                    analyze::expr_reads(rhs, &mut deps);
                    let mut targets = Vec::new();
                    let mut index_reads = Vec::new();
                    analyze::lvalue_targets(lhs, &a.params, &mut targets, &mut index_reads);
                    deps.extend(index_reads);
                    for t in &targets {
                        g.add(a, &t.name, t.span, deps.iter().map(|(n, _)| n.as_str()));
                    }
                }
            }
            Item::Gate(gate) => {
                let mut conns = gate.conns.iter();
                let Some(out_conn) = conns.next() else {
                    continue;
                };
                let mut deps = Vec::new();
                for input in conns {
                    analyze::expr_reads(input, &mut deps);
                }
                let mut targets = Vec::new();
                let mut index_reads = Vec::new();
                analyze::lvalue_targets(out_conn, &a.params, &mut targets, &mut index_reads);
                for t in &targets {
                    g.add(a, &t.name, t.span, deps.iter().map(|(n, _)| n.as_str()));
                }
            }
            Item::Decl(decl) => {
                for d in &decl.names {
                    if let Some(init) = &d.init {
                        // Only wire initialisers are continuous drivers; a
                        // `reg q = 0;` initialiser runs once.
                        let is_var = matches!(
                            decl.kind,
                            Some(
                                vgen_verilog::ast::NetKind::Reg
                                    | vgen_verilog::ast::NetKind::Integer
                                    | vgen_verilog::ast::NetKind::Time
                            )
                        );
                        if is_var {
                            continue;
                        }
                        let mut deps = Vec::new();
                        analyze::expr_reads(init, &mut deps);
                        g.add(a, &d.name, d.span, deps.iter().map(|(n, _)| n.as_str()));
                    }
                }
            }
            _ => {}
        }
    }
    for block in &a.blocks {
        if block.kind != BlockKind::Comb {
            continue;
        }
        if let Some(body) = block.body {
            walk(a, body, &mut BTreeSet::new(), &mut Vec::new(), &mut g);
        }
    }
    report(&g, out);
}

#[derive(Default)]
struct Graph {
    edges: BTreeMap<String, BTreeSet<String>>,
    span_of: BTreeMap<String, Span>,
}

impl Graph {
    fn add<'d>(
        &mut self,
        a: &Analysis<'_>,
        target: &str,
        span: Span,
        deps: impl Iterator<Item = &'d str>,
    ) {
        if !a.is_signal(target) || a.symbols.get(target).is_some_and(|s| s.is_memory) {
            return;
        }
        let entry = self.edges.entry(target.to_string()).or_default();
        for dep in deps {
            if a.is_signal(dep) && !a.symbols.get(dep).is_some_and(|s| s.is_memory) {
                entry.insert(dep.to_string());
            }
        }
        self.span_of.entry(target.to_string()).or_insert(span);
    }
}

/// Walks a combinational body adding dependency edges, tracking which
/// variables are already (blocking-)assigned on the current path and the
/// stack of control-condition reads.
fn walk(
    a: &Analysis<'_>,
    stmt: &Stmt,
    assigned: &mut BTreeSet<String>,
    ctrl: &mut Vec<String>,
    g: &mut Graph,
) {
    let read_names = |expr: &Expr| -> Vec<String> {
        let mut reads = Vec::new();
        analyze::expr_reads(expr, &mut reads);
        reads.into_iter().map(|(n, _)| n).collect()
    };
    match &stmt.kind {
        StmtKind::Assign { lhs, op, rhs, .. } => {
            let mut deps = read_names(rhs);
            deps.extend(ctrl.iter().cloned());
            let mut targets = Vec::new();
            let mut index_reads = Vec::new();
            analyze::lvalue_targets(lhs, &a.params, &mut targets, &mut index_reads);
            deps.extend(index_reads.into_iter().map(|(n, _)| n));
            deps.retain(|d| !assigned.contains(d));
            for t in &targets {
                g.add(a, &t.name, stmt.span, deps.iter().map(String::as_str));
            }
            if *op == AssignOp::Blocking {
                for t in targets {
                    if t.sel == Sel::Whole {
                        assigned.insert(t.name);
                    }
                }
            }
        }
        StmtKind::Block { stmts, .. } => {
            for s in stmts {
                walk(a, s, assigned, ctrl, g);
            }
        }
        StmtKind::If { cond, then, els } => {
            let depth = ctrl.len();
            ctrl.extend(
                read_names(cond)
                    .into_iter()
                    .filter(|n| !assigned.contains(n)),
            );
            let mut a1 = assigned.clone();
            walk(a, then, &mut a1, ctrl, g);
            if let Some(els) = els {
                let mut a2 = assigned.clone();
                walk(a, els, &mut a2, ctrl, g);
                assigned.extend(a1.intersection(&a2).cloned());
            }
            ctrl.truncate(depth);
        }
        StmtKind::Case { expr, arms, .. } => {
            let depth = ctrl.len();
            ctrl.extend(
                read_names(expr)
                    .into_iter()
                    .filter(|n| !assigned.contains(n)),
            );
            let mut arm_sets = Vec::new();
            for arm in arms {
                for label in &arm.labels {
                    ctrl.extend(
                        read_names(label)
                            .into_iter()
                            .filter(|n| !assigned.contains(n)),
                    );
                }
                let mut ai = assigned.clone();
                walk(a, &arm.body, &mut ai, ctrl, g);
                arm_sets.push(ai);
            }
            if arms.iter().any(|arm| arm.labels.is_empty()) {
                if let Some(first) = arm_sets.first().cloned() {
                    let common = arm_sets
                        .iter()
                        .skip(1)
                        .fold(first, |acc, s| acc.intersection(s).cloned().collect());
                    assigned.extend(common);
                }
            }
            ctrl.truncate(depth);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            // init is a blocking assign: process it first so the loop index
            // never looks like feedback.
            let init_stmt = StmtKind::Assign {
                lhs: init.0.clone(),
                op: AssignOp::Blocking,
                delay: None,
                rhs: init.1.clone(),
            };
            walk(
                a,
                &Stmt {
                    kind: init_stmt,
                    span: stmt.span,
                },
                assigned,
                ctrl,
                g,
            );
            let depth = ctrl.len();
            ctrl.extend(
                read_names(cond)
                    .into_iter()
                    .filter(|n| !assigned.contains(n)),
            );
            let mut ab = assigned.clone();
            walk(a, body, &mut ab, ctrl, g);
            let step_stmt = StmtKind::Assign {
                lhs: step.0.clone(),
                op: AssignOp::Blocking,
                delay: None,
                rhs: step.1.clone(),
            };
            walk(
                a,
                &Stmt {
                    kind: step_stmt,
                    span: stmt.span,
                },
                &mut ab,
                ctrl,
                g,
            );
            ctrl.truncate(depth);
        }
        StmtKind::While { cond, body } => {
            let depth = ctrl.len();
            ctrl.extend(
                read_names(cond)
                    .into_iter()
                    .filter(|n| !assigned.contains(n)),
            );
            let mut ab = assigned.clone();
            walk(a, body, &mut ab, ctrl, g);
            ctrl.truncate(depth);
        }
        StmtKind::Repeat { count, body } => {
            let depth = ctrl.len();
            ctrl.extend(
                read_names(count)
                    .into_iter()
                    .filter(|n| !assigned.contains(n)),
            );
            let mut ab = assigned.clone();
            walk(a, body, &mut ab, ctrl, g);
            ctrl.truncate(depth);
        }
        StmtKind::Forever { body } => {
            let mut ab = assigned.clone();
            walk(a, body, &mut ab, ctrl, g);
        }
        StmtKind::Delay { stmt: Some(s), .. }
        | StmtKind::Event { stmt: Some(s), .. }
        | StmtKind::Wait { stmt: Some(s), .. } => walk(a, s, assigned, ctrl, g),
        _ => {}
    }
}

/// Finds cycles with an iterative DFS and reports up to [`MAX_LOOPS`].
fn report(g: &Graph, out: &mut Vec<Diagnostic>) {
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in g.edges.keys() {
        if color.get(start.as_str()).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Stack of (node, neighbor cursor); path mirrors the grey chain.
        let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
        let mut path: Vec<&str> = vec![start.as_str()];
        color.insert(start.as_str(), 1);
        while let Some(&(node, cursor)) = stack.last() {
            let neighbors: Vec<&str> = g
                .edges
                .get(node)
                .map(|s| s.iter().map(String::as_str).collect())
                .unwrap_or_default();
            if cursor >= neighbors.len() {
                color.insert(node, 2);
                path.pop();
                stack.pop();
                continue;
            }
            stack.last_mut().expect("nonempty stack").1 += 1;
            let next = neighbors[cursor];
            match color.get(next).copied().unwrap_or(0) {
                0 => {
                    color.insert(next, 1);
                    stack.push((next, 0));
                    path.push(next);
                }
                1 => {
                    // Back edge: the cycle is the path suffix from `next`.
                    let pos = path.iter().position(|n| *n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[pos..].iter().map(|s| s.to_string()).collect();
                    // Canonicalise: rotate the smallest name to the front.
                    if let Some(min_idx) = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| (*n).clone())
                        .map(|(i, _)| i)
                    {
                        cycle.rotate_left(min_idx);
                    }
                    seen_cycles.insert(cycle);
                }
                _ => {}
            }
        }
    }
    for cycle in seen_cycles.iter().take(MAX_LOOPS) {
        let span = g
            .span_of
            .get(&cycle[0])
            .copied()
            .unwrap_or_else(|| Span::point(0));
        let mut chain = cycle.join(" -> ");
        chain.push_str(" -> ");
        chain.push_str(&cycle[0]);
        out.push(Diagnostic::new(
            Rule::CombLoop,
            span,
            format!("combinational loop: {chain}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_verilog::parse;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = parse(src).expect("fixture parses");
        let a = Analysis::build(&file, &file.modules[0]);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn self_feedback_assign_is_a_loop() {
        let d = lint(
            "module m(output y);
               assign y = ~y;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::CombLoop);
        assert!(d[0].message.contains("y -> y"), "{}", d[0].message);
    }

    #[test]
    fn cross_signal_loop_is_reported_once() {
        let d = lint(
            "module m(input a, input b, output p, output q);
               assign p = q & a;
               assign q = p | b;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("p -> q"), "{}", d[0].message);
    }

    #[test]
    fn register_breaks_the_loop() {
        let d = lint(
            "module m(input clk, input d, output reg q, output y);
               assign y = q & d;
               always @(posedge clk) q <= y;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn accumulator_idiom_is_not_feedback() {
        let d = lint(
            "module m(input [3:0] x, output reg y);
               integer i;
               always @* begin
                 y = 1'b0;
                 for (i = 0; i < 4; i = i + 1) y = y | x[i];
               end
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn comb_always_feedback_is_a_loop() {
        let d = lint(
            "module m(input en, output reg q);
               always @* if (en) q = q + 1'b1;
             endmodule",
        );
        assert!(d.iter().any(|d| d.rule == Rule::CombLoop), "{d:?}");
    }
}
