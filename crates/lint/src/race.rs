//! Race hazards: multiply-driven nets and mixed blocking/nonblocking
//! assignment styles.

use std::collections::BTreeSet;

use vgen_verilog::ast::AssignOp;

use crate::analyze::{Analysis, BlockKind, Driver};
use crate::diag::{Diagnostic, Rule};

/// Runs both race rules over one module's analysis.
pub fn check(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    multi_driven(a, out);
    mixed_styles(a, out);
}

/// Two structural drivers that provably cover a common bit of the same
/// signal. Initial blocks and delay-loop `always` blocks are exempt (the
/// `initial clk = 0; always #5 clk = ~clk;` testbench idiom), as are
/// memories (multi-port writes are routine) and anything connected to a
/// module instance (port directions are not resolved).
fn multi_driven(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    for (name, drivers) in &a.drivers {
        if a.instance_connected.contains(name) {
            continue;
        }
        if a.symbols.get(name).is_some_and(|s| s.is_memory) {
            continue;
        }
        let conflicting: Vec<&Driver> = drivers.iter().filter(|d| d.source.conflicts()).collect();
        'outer: for (i, d1) in conflicting.iter().enumerate() {
            for d2 in &conflicting[..i] {
                if d1.unit != d2.unit && d1.sel.overlaps(&d2.sel) {
                    out.push(Diagnostic::new(
                        Rule::MultiDrivenNet,
                        d1.span,
                        format!(
                            "`{name}` is driven here and by another \
                             assignment; conflicting drivers race"
                        ),
                    ));
                    // One diagnostic per signal is enough.
                    break 'outer;
                }
            }
        }
    }
}

/// The same signal assigned with both `=` and `<=` in procedural blocks
/// (initial blocks and delay-loop blocks again exempt).
fn mixed_styles(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    let mut blocking: BTreeSet<&str> = BTreeSet::new();
    let mut nonblocking: BTreeSet<&str> = BTreeSet::new();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    // Two passes keep the diagnostic on the *later* style occurrence
    // regardless of which block comes first.
    for block in &a.blocks {
        if matches!(block.kind, BlockKind::Other) {
            continue;
        }
        for pa in &block.assigns {
            match pa.op {
                AssignOp::Blocking => blocking.insert(&pa.target.name),
                AssignOp::NonBlocking => nonblocking.insert(&pa.target.name),
            };
        }
    }
    for block in &a.blocks {
        if matches!(block.kind, BlockKind::Other) {
            continue;
        }
        for pa in &block.assigns {
            let name = pa.target.name.as_str();
            if blocking.contains(name) && nonblocking.contains(name) && reported.insert(name) {
                out.push(Diagnostic::new(
                    Rule::MixedAssignStyles,
                    pa.span,
                    format!("`{name}` is assigned with both `=` and `<=`"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_verilog::parse;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = parse(src).expect("fixture parses");
        let a = Analysis::build(&file, &file.modules[0]);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn two_continuous_assigns_race() {
        let d = lint(
            "module m(input a, input b, output y);
               assign y = a;
               assign y = b;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::MultiDrivenNet);
    }

    #[test]
    fn assign_vs_always_races() {
        let d = lint(
            "module m(input a, input clk, output reg y);
               always @(posedge clk) y <= a;
             endmodule
             module n(input a, output y);
               assign y = a;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = lint(
            "module m(input a, input clk, output reg y);
               assign y = a;
               always @(posedge clk) y <= a;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::MultiDrivenNet);
    }

    #[test]
    fn disjoint_bit_drivers_are_fine() {
        let d = lint(
            "module m(input a, input b, output [1:0] y);
               assign y[0] = a;
               assign y[1] = b;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = lint(
            "module m(input a, input b, output [1:0] y);
               assign y[0] = a;
               assign y[0] = b;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn testbench_clock_idiom_is_exempt() {
        let d = lint(
            "module tb;
               reg clk;
               initial clk = 0;
               always #5 clk = ~clk;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn mixed_styles_flagged_once() {
        let d = lint(
            "module m(input clk, input a, output reg y);
               always @(posedge clk) begin
                 y = a;
                 y <= ~a;
               end
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::MixedAssignStyles);
    }
}
