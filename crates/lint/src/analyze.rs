//! Per-module semantic analysis shared by every lint rule.
//!
//! One [`Analysis`] is built per module: a symbol table with const-folded
//! widths (backed by the elaborator's authoritative widths when the module
//! elaborates), every structural driver of every signal, every read with its
//! first source span, and a classification of each `always` block as
//! combinational, sequential or other. Rules consume this; none of them
//! re-walk the AST from scratch.

use std::collections::{BTreeMap, BTreeSet};

use vgen_verilog::ast::{
    AssignOp, Connection, Decl, EventControl, EventExpr, Expr, ExprKind, Item, Module, NetKind,
    PortDir, SourceFile, Stmt, StmtKind,
};
use vgen_verilog::span::Span;

/// Which bits of a signal an lvalue (or driver) covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sel {
    /// The whole signal.
    Whole,
    /// A constant bit select `x[i]`.
    Bit(i64),
    /// A constant part select `x[msb:lsb]`.
    Part(i64, i64),
    /// A select whose indices are not compile-time constant.
    Dynamic,
}

impl Sel {
    /// Whether two selects provably cover at least one common bit.
    ///
    /// `Dynamic` never overlaps anything: when we cannot prove a conflict we
    /// stay silent (see the false-positive policy in DESIGN.md).
    pub fn overlaps(&self, other: &Sel) -> bool {
        fn range(sel: &Sel) -> Option<(i64, i64)> {
            match sel {
                Sel::Whole => Some((i64::MIN, i64::MAX)),
                Sel::Bit(i) => Some((*i, *i)),
                Sel::Part(a, b) => Some((*a.min(b), *a.max(b))),
                Sel::Dynamic => None,
            }
        }
        match (range(self), range(other)) {
            (Some((lo1, hi1)), Some((lo2, hi2))) => lo1 <= hi2 && lo2 <= hi1,
            _ => false,
        }
    }
}

/// One lvalue target: the base signal plus which bits are written.
#[derive(Debug, Clone)]
pub struct LvTarget {
    /// Base signal name.
    pub name: String,
    /// Span of the whole lvalue expression.
    pub span: Span,
    /// Which bits are covered.
    pub sel: Sel,
}

/// What kind of construct drives a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverSource {
    /// `assign` item or a `wire x = ...` declarator initialiser.
    Continuous,
    /// An `always` block classified combinational (`@*` or level list).
    AlwaysComb,
    /// An `always` block where every sensitivity term is edge-qualified.
    AlwaysSeq,
    /// Any other `always` shape (delay loops, mixed lists).
    AlwaysOther,
    /// An `initial` block or a `reg q = ...` initialiser.
    Initial,
    /// A primitive gate output.
    Gate,
}

impl DriverSource {
    /// Whether this driver participates in multi-driver conflict checking.
    /// Initial blocks and delay-loop always blocks are the standard
    /// testbench idiom (`initial clk = 0; always #5 clk = ~clk;`) and are
    /// deliberately excluded.
    pub fn conflicts(self) -> bool {
        !matches!(self, DriverSource::Initial | DriverSource::AlwaysOther)
    }
}

/// One structural driver of a signal.
#[derive(Debug, Clone)]
pub struct Driver {
    /// What drives it.
    pub source: DriverSource,
    /// Item index in the module body — two assignments inside one `always`
    /// block share a unit and never conflict with each other.
    pub unit: usize,
    /// Span of the driving assignment.
    pub span: Span,
    /// Bits covered.
    pub sel: Sel,
}

/// One procedural assignment, used for style and latch analysis.
#[derive(Debug, Clone)]
pub struct ProcAssign {
    /// The written signal.
    pub target: LvTarget,
    /// `=` or `<=`.
    pub op: AssignOp,
    /// Span of the assignment statement.
    pub span: Span,
}

/// Classification of an `always` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `always @*` or `always @(a or b)` — combinational intent.
    Comb,
    /// `always @(posedge clk ...)` — sequential intent.
    Seq,
    /// Anything else (`always #5 ...`, mixed edge/level lists).
    Other,
}

/// A classified `always` block.
pub struct Block<'a> {
    /// Combinational / sequential / other.
    pub kind: BlockKind,
    /// The statement under the event control (or the whole body for
    /// `Other` blocks). `None` for a bare `always @(...);`.
    pub body: Option<&'a Stmt>,
    /// The explicit sensitivity list, when one was written.
    pub sens: Option<&'a [EventExpr]>,
    /// Item index in the module body.
    pub unit: usize,
    /// Span of the whole `always` item.
    pub span: Span,
    /// Every procedural assignment in the block, in source order.
    pub assigns: Vec<ProcAssign>,
}

/// Declared metadata for one name.
#[derive(Debug, Clone)]
pub struct SymbolInfo {
    /// Port direction, if the name is a port.
    pub dir: Option<PortDir>,
    /// Storage kind (defaults to wire).
    pub kind: NetKind,
    /// Const-folded bit width, when resolvable.
    pub width: Option<u64>,
    /// Declared range, const-folded, as `(msb, lsb)`.
    pub range: Option<(i64, i64)>,
    /// Whether the declarator has unpacked (array) dimensions.
    pub is_memory: bool,
    /// Whether the declarator carries an initialiser.
    pub has_init: bool,
    /// Span of the (first) declarator.
    pub span: Span,
}

/// Everything the rules need to know about one module.
pub struct Analysis<'a> {
    /// The module under analysis.
    pub module: &'a Module,
    /// Declared names.
    pub symbols: BTreeMap<String, SymbolInfo>,
    /// Const-folded parameter values.
    pub params: BTreeMap<String, i64>,
    /// Declared function names (excluded from signal read sets).
    pub functions: BTreeSet<String>,
    /// Names listed in the port header but never declared in the body.
    pub implicit_ports: BTreeSet<String>,
    /// Structural drivers per signal.
    pub drivers: BTreeMap<String, Vec<Driver>>,
    /// First read span per signal (every read position, including
    /// sensitivity lists and system-task arguments).
    pub reads: BTreeMap<String, Span>,
    /// Names connected to a module instance (treated as both driven and
    /// read — we do not resolve instance port directions).
    pub instance_connected: BTreeSet<String>,
    /// Classified `always` blocks.
    pub blocks: Vec<Block<'a>>,
    /// Elaborated signal widths, when the module elaborates.
    elab_widths: BTreeMap<String, u64>,
}

impl<'a> Analysis<'a> {
    /// Builds the analysis for `module` within `file`.
    pub fn build(file: &SourceFile, module: &'a Module) -> Analysis<'a> {
        let params = fold_params(module);
        let (symbols, functions, implicit_ports) = build_symbols(module, &params);
        let mut a = Analysis {
            module,
            symbols,
            params,
            functions,
            implicit_ports,
            drivers: BTreeMap::new(),
            reads: BTreeMap::new(),
            instance_connected: BTreeSet::new(),
            blocks: Vec::new(),
            elab_widths: BTreeMap::new(),
        };
        // The elaborator folds parameters and evaluates range expressions
        // exactly; when the module elaborates, its widths are authoritative
        // and the AST const-fold above is only the fallback.
        if let Ok(design) = vgen_sim::elab::elaborate(file, &module.name) {
            for name in a.symbols.keys() {
                if let Some(w) = design.signal_width(name) {
                    a.elab_widths.insert(name.clone(), w as u64);
                }
            }
        }
        a.collect(module);
        a
    }

    /// Whether `name` is a declared signal of this module.
    pub fn is_signal(&self, name: &str) -> bool {
        self.symbols.contains_key(name)
    }

    /// The resolved bit width of a declared signal.
    pub fn signal_width(&self, name: &str) -> Option<u64> {
        if let Some(w) = self.elab_widths.get(name) {
            return Some(*w);
        }
        self.symbols.get(name).and_then(|s| s.width)
    }

    /// Const-folds an expression against this module's parameters.
    pub fn const_eval(&self, expr: &Expr) -> Option<i64> {
        const_eval(expr, &self.params)
    }

    fn note_read(&mut self, name: &str, span: Span) {
        if !self.reads.contains_key(name) {
            self.reads.insert(name.to_string(), span);
        }
    }

    fn note_reads_of(&mut self, expr: &Expr) {
        let mut out = Vec::new();
        expr_reads(expr, &mut out);
        for (name, span) in out {
            self.note_read(&name, span);
        }
    }

    fn add_driver(&mut self, target: &LvTarget, source: DriverSource, unit: usize) {
        self.drivers
            .entry(target.name.clone())
            .or_default()
            .push(Driver {
                source,
                unit,
                span: target.span,
                sel: target.sel,
            });
    }

    fn collect(&mut self, module: &'a Module) {
        for (unit, item) in module.items.iter().enumerate() {
            match item {
                Item::Decl(decl) => {
                    for d in &decl.names {
                        if let Some(init) = &d.init {
                            self.note_reads_of(init);
                            let source = match decl.kind {
                                Some(NetKind::Reg | NetKind::Integer | NetKind::Time) => {
                                    DriverSource::Initial
                                }
                                _ => DriverSource::Continuous,
                            };
                            let target = LvTarget {
                                name: d.name.clone(),
                                span: d.span,
                                sel: Sel::Whole,
                            };
                            self.add_driver(&target, source, unit);
                        }
                    }
                }
                Item::Param(p) => {
                    for (_, value) in &p.assigns {
                        self.note_reads_of(value);
                    }
                }
                Item::Assign(a) => {
                    for (lhs, rhs) in &a.assigns {
                        self.note_reads_of(rhs);
                        if let Some(delay) = &a.delay {
                            self.note_reads_of(delay);
                        }
                        let mut targets = Vec::new();
                        let mut index_reads = Vec::new();
                        lvalue_targets(lhs, &self.params, &mut targets, &mut index_reads);
                        for (name, span) in index_reads {
                            self.note_read(&name, span);
                        }
                        for t in targets {
                            self.add_driver(&t, DriverSource::Continuous, unit);
                        }
                    }
                }
                Item::Always(al) => {
                    let block = classify_always(&al.body, al.span, unit, &self.params);
                    let source = match block.kind {
                        BlockKind::Comb => DriverSource::AlwaysComb,
                        BlockKind::Seq => DriverSource::AlwaysSeq,
                        BlockKind::Other => DriverSource::AlwaysOther,
                    };
                    // One always block is one driver unit per signal.
                    let mut seen = BTreeSet::new();
                    for pa in &block.assigns {
                        if seen.insert(pa.target.name.clone()) {
                            self.add_driver(&pa.target, source, unit);
                        }
                    }
                    self.collect_stmt_reads(&al.body);
                    self.blocks.push(block);
                }
                Item::Initial(init) => {
                    let mut assigns = Vec::new();
                    collect_stmt_assigns(&init.body, &self.params, &mut assigns);
                    let mut seen = BTreeSet::new();
                    for pa in &assigns {
                        if seen.insert(pa.target.name.clone()) {
                            self.add_driver(&pa.target, DriverSource::Initial, unit);
                        }
                    }
                    self.collect_stmt_reads(&init.body);
                }
                Item::Instance(inst) => {
                    for conn in inst.params.iter().chain(&inst.conns) {
                        let expr = match conn {
                            Connection::Named(_, Some(e)) => e,
                            Connection::Positional(e) => e,
                            Connection::Named(_, None) => continue,
                        };
                        self.note_reads_of(expr);
                        let mut targets = Vec::new();
                        let mut index_reads = Vec::new();
                        lvalue_targets(expr, &self.params, &mut targets, &mut index_reads);
                        for (name, span) in index_reads {
                            self.note_read(&name, span);
                        }
                        for t in targets {
                            self.instance_connected.insert(t.name);
                        }
                    }
                }
                Item::Gate(g) => {
                    let mut conns = g.conns.iter();
                    if let Some(out) = conns.next() {
                        let mut targets = Vec::new();
                        let mut index_reads = Vec::new();
                        lvalue_targets(out, &self.params, &mut targets, &mut index_reads);
                        for (name, span) in index_reads {
                            self.note_read(&name, span);
                        }
                        for t in targets {
                            self.add_driver(&t, DriverSource::Gate, unit);
                        }
                    }
                    for input in conns {
                        self.note_reads_of(input);
                    }
                }
                Item::Defparam { value, .. } => self.note_reads_of(value),
                Item::Function(f) => {
                    // Reads inside the function body count as module reads,
                    // minus the function's own locals and name.
                    let mut locals: BTreeSet<String> = f
                        .decls
                        .iter()
                        .flat_map(|d| d.names.iter().map(|n| n.name.clone()))
                        .collect();
                    locals.insert(f.name.clone());
                    let mut reads = Vec::new();
                    collect_stmt_read_exprs(&f.body, &mut |e| expr_reads(e, &mut reads));
                    for (name, span) in reads {
                        if !locals.contains(&name) {
                            self.note_read(&name, span);
                        }
                    }
                }
            }
        }
    }

    /// Records every read position inside a statement (RHSs, conditions,
    /// indices, sensitivity lists, call arguments).
    fn collect_stmt_reads(&mut self, stmt: &Stmt) {
        let mut reads = Vec::new();
        collect_stmt_read_exprs(stmt, &mut |e| expr_reads(e, &mut reads));
        for (name, span) in reads {
            self.note_read(&name, span);
        }
    }
}

/// Const-folds parameter declarations, in order, allowing references to
/// earlier parameters. Non-constant defaults are simply absent.
fn fold_params(module: &Module) -> BTreeMap<String, i64> {
    let mut params = BTreeMap::new();
    for item in &module.items {
        if let Item::Param(p) = item {
            for (name, value) in &p.assigns {
                if let Some(v) = const_eval(value, &params) {
                    params.insert(name.clone(), v);
                }
            }
        }
    }
    params
}

fn build_symbols(
    module: &Module,
    params: &BTreeMap<String, i64>,
) -> (
    BTreeMap<String, SymbolInfo>,
    BTreeSet<String>,
    BTreeSet<String>,
) {
    let mut symbols: BTreeMap<String, SymbolInfo> = BTreeMap::new();
    let mut functions = BTreeSet::new();
    let add_decl = |symbols: &mut BTreeMap<String, SymbolInfo>, decl: &Decl| {
        let range = decl
            .range
            .as_ref()
            .and_then(|r| Some((const_eval(&r.msb, params)?, const_eval(&r.lsb, params)?)));
        for d in &decl.names {
            let kind = decl.kind.unwrap_or(NetKind::Wire);
            let width = match kind {
                NetKind::Integer => Some(32),
                NetKind::Time => Some(64),
                NetKind::Real => None,
                _ => Some(range.map_or(1, |(msb, lsb)| (msb - lsb).unsigned_abs() + 1)),
            };
            let entry = symbols.entry(d.name.clone()).or_insert(SymbolInfo {
                dir: None,
                kind,
                width: None,
                range: None,
                is_memory: false,
                has_init: false,
                span: d.span,
            });
            // Merge split declarations (`output y;` + `reg [3:0] y;`).
            entry.dir = entry.dir.or(decl.dir);
            if decl.kind.is_some() || entry.width.is_none() {
                entry.kind = kind;
            }
            if decl.range.is_some() || entry.width.is_none() {
                entry.width = width;
                entry.range = range;
            }
            entry.is_memory |= !d.dims.is_empty();
            entry.has_init |= d.init.is_some();
        }
    };
    for item in &module.items {
        match item {
            Item::Decl(decl) => add_decl(&mut symbols, decl),
            Item::Function(f) => {
                functions.insert(f.name.clone());
            }
            _ => {}
        }
    }
    let implicit_ports = module
        .ports
        .iter()
        .filter(|p| !symbols.contains_key(*p))
        .cloned()
        .collect();
    (symbols, functions, implicit_ports)
}

/// Const-folds an expression to an `i64` using checked arithmetic, so that
/// hostile inputs (overflow, huge shifts, division by zero) fold to `None`
/// instead of panicking.
pub fn const_eval(expr: &Expr, params: &BTreeMap<String, i64>) -> Option<i64> {
    use vgen_verilog::ast::{BinaryOp, UnaryOp};
    match &expr.kind {
        ExprKind::Number(v) => v.to_i64(),
        ExprKind::Ident(name) => params.get(name).copied(),
        ExprKind::Unary { op, arg } => {
            let v = const_eval(arg, params)?;
            match op {
                UnaryOp::Plus => Some(v),
                UnaryOp::Neg => v.checked_neg(),
                UnaryOp::LogicNot => Some(i64::from(v == 0)),
                _ => None,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, params)?;
            let b = const_eval(rhs, params)?;
            match op {
                BinaryOp::Add => a.checked_add(b),
                BinaryOp::Sub => a.checked_sub(b),
                BinaryOp::Mul => a.checked_mul(b),
                BinaryOp::Div => a.checked_div(b),
                BinaryOp::Rem => a.checked_rem(b),
                BinaryOp::Shl => u32::try_from(b).ok().and_then(|s| a.checked_shl(s)),
                BinaryOp::Shr => u32::try_from(b).ok().and_then(|s| a.checked_shr(s)),
                _ => None,
            }
        }
        ExprKind::Ternary { cond, then, els } => {
            if const_eval(cond, params)? != 0 {
                const_eval(then, params)
            } else {
                const_eval(els, params)
            }
        }
        _ => None,
    }
}

/// Collects every identifier read by `expr` (index expressions included;
/// function names in call position excluded) with the span of each read.
pub fn expr_reads(expr: &Expr, out: &mut Vec<(String, Span)>) {
    match &expr.kind {
        ExprKind::Number(_) | ExprKind::Real(_) | ExprKind::Str(_) => {}
        ExprKind::Ident(name) => out.push((name.clone(), expr.span)),
        ExprKind::Unary { arg, .. } => expr_reads(arg, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_reads(lhs, out);
            expr_reads(rhs, out);
        }
        ExprKind::Ternary { cond, then, els } => {
            expr_reads(cond, out);
            expr_reads(then, out);
            expr_reads(els, out);
        }
        ExprKind::Index { base, index } => {
            expr_reads(base, out);
            expr_reads(index, out);
        }
        ExprKind::PartSelect { base, msb, lsb } => {
            expr_reads(base, out);
            expr_reads(msb, out);
            expr_reads(lsb, out);
        }
        ExprKind::IndexedSelect {
            base, start, width, ..
        } => {
            expr_reads(base, out);
            expr_reads(start, out);
            expr_reads(width, out);
        }
        ExprKind::Concat(items) => {
            for item in items {
                expr_reads(item, out);
            }
        }
        ExprKind::Replicate { count, items } => {
            expr_reads(count, out);
            for item in items {
                expr_reads(item, out);
            }
        }
        ExprKind::SysCall { args, .. } | ExprKind::Call { args, .. } => {
            for arg in args {
                expr_reads(arg, out);
            }
        }
    }
}

/// Decomposes an lvalue expression into base-signal targets. Index
/// expressions inside the lvalue are reported as reads. Non-lvalue shapes
/// (a model emitting `assign a & b = x;` never parses that far) contribute
/// nothing.
pub fn lvalue_targets(
    expr: &Expr,
    params: &BTreeMap<String, i64>,
    targets: &mut Vec<LvTarget>,
    index_reads: &mut Vec<(String, Span)>,
) {
    match &expr.kind {
        ExprKind::Ident(name) => targets.push(LvTarget {
            name: name.clone(),
            span: expr.span,
            sel: Sel::Whole,
        }),
        ExprKind::Index { base, index } => {
            expr_reads(index, index_reads);
            if let ExprKind::Ident(name) = &base.kind {
                let sel = match const_eval(index, params) {
                    Some(i) => Sel::Bit(i),
                    None => Sel::Dynamic,
                };
                targets.push(LvTarget {
                    name: name.clone(),
                    span: expr.span,
                    sel,
                });
            }
        }
        ExprKind::PartSelect { base, msb, lsb } => {
            expr_reads(msb, index_reads);
            expr_reads(lsb, index_reads);
            if let ExprKind::Ident(name) = &base.kind {
                let sel = match (const_eval(msb, params), const_eval(lsb, params)) {
                    (Some(m), Some(l)) => Sel::Part(m, l),
                    _ => Sel::Dynamic,
                };
                targets.push(LvTarget {
                    name: name.clone(),
                    span: expr.span,
                    sel,
                });
            }
        }
        ExprKind::IndexedSelect {
            base, start, width, ..
        } => {
            expr_reads(start, index_reads);
            expr_reads(width, index_reads);
            if let ExprKind::Ident(name) = &base.kind {
                targets.push(LvTarget {
                    name: name.clone(),
                    span: expr.span,
                    sel: Sel::Dynamic,
                });
            }
        }
        ExprKind::Concat(items) => {
            for item in items {
                lvalue_targets(item, params, targets, index_reads);
            }
        }
        _ => {}
    }
}

/// Collects every procedural assignment under `stmt`, in source order.
/// `for` init/step count as blocking assignments.
pub fn collect_stmt_assigns(
    stmt: &Stmt,
    params: &BTreeMap<String, i64>,
    out: &mut Vec<ProcAssign>,
) {
    let push = |lhs: &Expr, op: AssignOp, span: Span, out: &mut Vec<ProcAssign>| {
        let mut targets = Vec::new();
        let mut index_reads = Vec::new();
        lvalue_targets(lhs, params, &mut targets, &mut index_reads);
        for target in targets {
            out.push(ProcAssign { target, op, span });
        }
    };
    match &stmt.kind {
        StmtKind::Assign { lhs, op, .. } => push(lhs, *op, stmt.span, out),
        StmtKind::Block { stmts, .. } => {
            for s in stmts {
                collect_stmt_assigns(s, params, out);
            }
        }
        StmtKind::If { then, els, .. } => {
            collect_stmt_assigns(then, params, out);
            if let Some(els) = els {
                collect_stmt_assigns(els, params, out);
            }
        }
        StmtKind::Case { arms, .. } => {
            for arm in arms {
                collect_stmt_assigns(&arm.body, params, out);
            }
        }
        StmtKind::For {
            init, step, body, ..
        } => {
            push(&init.0, AssignOp::Blocking, stmt.span, out);
            collect_stmt_assigns(body, params, out);
            push(&step.0, AssignOp::Blocking, stmt.span, out);
        }
        StmtKind::While { body, .. }
        | StmtKind::Repeat { body, .. }
        | StmtKind::Forever { body } => collect_stmt_assigns(body, params, out),
        StmtKind::Delay { stmt: Some(s), .. }
        | StmtKind::Event { stmt: Some(s), .. }
        | StmtKind::Wait { stmt: Some(s), .. } => collect_stmt_assigns(s, params, out),
        _ => {}
    }
}

/// Calls `f` on every expression read (not written) by the statement tree:
/// RHSs, conditions, indices of lvalues, sensitivity terms, call arguments.
pub fn collect_stmt_read_exprs<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    let lvalue_index_reads = |lhs: &'a Expr, f: &mut dyn FnMut(&'a Expr)| match &lhs.kind {
        ExprKind::Index { index, .. } => f(index),
        ExprKind::PartSelect { msb, lsb, .. } => {
            f(msb);
            f(lsb);
        }
        ExprKind::IndexedSelect { start, width, .. } => {
            f(start);
            f(width);
        }
        ExprKind::Concat(items) => {
            for item in items {
                if let ExprKind::Index { index, .. } = &item.kind {
                    f(index);
                }
            }
        }
        _ => {}
    };
    match &stmt.kind {
        StmtKind::Assign {
            lhs, delay, rhs, ..
        } => {
            lvalue_index_reads(lhs, f);
            if let Some(d) = delay {
                f(d);
            }
            f(rhs);
        }
        StmtKind::Block { stmts, .. } => {
            for s in stmts {
                collect_stmt_read_exprs(s, f);
            }
        }
        StmtKind::If { cond, then, els } => {
            f(cond);
            collect_stmt_read_exprs(then, f);
            if let Some(els) = els {
                collect_stmt_read_exprs(els, f);
            }
        }
        StmtKind::Case { expr, arms, .. } => {
            f(expr);
            for arm in arms {
                for label in &arm.labels {
                    f(label);
                }
                collect_stmt_read_exprs(&arm.body, f);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            f(&init.1);
            f(cond);
            f(&step.1);
            collect_stmt_read_exprs(body, f);
        }
        StmtKind::While { cond, body } => {
            f(cond);
            collect_stmt_read_exprs(body, f);
        }
        StmtKind::Repeat { count, body } => {
            f(count);
            collect_stmt_read_exprs(body, f);
        }
        StmtKind::Forever { body } => collect_stmt_read_exprs(body, f),
        StmtKind::Delay { amount, stmt } => {
            f(amount);
            if let Some(s) = stmt {
                collect_stmt_read_exprs(s, f);
            }
        }
        StmtKind::Event { control, stmt } => {
            if let EventControl::List(terms) = control {
                for term in terms {
                    f(&term.expr);
                }
            }
            if let Some(s) = stmt {
                collect_stmt_read_exprs(s, f);
            }
        }
        StmtKind::Wait { cond, stmt } => {
            f(cond);
            if let Some(s) = stmt {
                collect_stmt_read_exprs(s, f);
            }
        }
        StmtKind::SysCall { args, .. } | StmtKind::TaskCall { args, .. } => {
            for arg in args {
                f(arg);
            }
        }
        StmtKind::Disable(_) | StmtKind::Null => {}
    }
}

/// Classifies an `always` body by its top-level event control and collects
/// its procedural assignments.
fn classify_always<'a>(
    body: &'a Stmt,
    span: Span,
    unit: usize,
    params: &BTreeMap<String, i64>,
) -> Block<'a> {
    let (kind, inner, sens) = match &body.kind {
        StmtKind::Event { control, stmt } => {
            let inner = stmt.as_deref();
            match control {
                EventControl::Star => (BlockKind::Comb, inner, None),
                EventControl::List(terms) => {
                    let edges = terms.iter().filter(|t| t.edge.is_some()).count();
                    let kind = if edges == terms.len() && !terms.is_empty() {
                        BlockKind::Seq
                    } else if edges == 0 {
                        BlockKind::Comb
                    } else {
                        BlockKind::Other
                    };
                    (kind, inner, Some(terms.as_slice()))
                }
            }
        }
        _ => (BlockKind::Other, Some(body), None),
    };
    let mut assigns = Vec::new();
    collect_stmt_assigns(body, params, &mut assigns);
    Block {
        kind,
        body: inner,
        sens,
        unit,
        span,
        assigns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_verilog::parse;

    fn analyze(src: &str) -> (SourceFile, usize) {
        let file = parse(src).expect("fixture parses");
        (file, 0)
    }

    #[test]
    fn sel_overlap_rules() {
        assert!(Sel::Whole.overlaps(&Sel::Bit(3)));
        assert!(Sel::Bit(3).overlaps(&Sel::Bit(3)));
        assert!(!Sel::Bit(3).overlaps(&Sel::Bit(4)));
        assert!(Sel::Part(7, 4).overlaps(&Sel::Bit(5)));
        assert!(!Sel::Part(7, 4).overlaps(&Sel::Part(3, 0)));
        assert!(!Sel::Dynamic.overlaps(&Sel::Whole));
    }

    #[test]
    fn symbols_fold_param_ranges() {
        let (file, _) = analyze(
            "module m;
               parameter W = 4;
               reg [W-1:0] q;
               wire [7:0] w;
               integer i;
             endmodule",
        );
        let a = Analysis::build(&file, &file.modules[0]);
        assert_eq!(a.signal_width("q"), Some(4));
        assert_eq!(a.signal_width("w"), Some(8));
        assert_eq!(a.signal_width("i"), Some(32));
        assert_eq!(a.params.get("W"), Some(&4));
    }

    #[test]
    fn drivers_and_reads_are_collected() {
        let (file, _) = analyze(
            "module m(input a, input b, output y);
               wire t;
               assign t = a & b;
               assign y = t;
             endmodule",
        );
        let a = Analysis::build(&file, &file.modules[0]);
        assert_eq!(a.drivers.get("t").map(Vec::len), Some(1));
        assert_eq!(a.drivers.get("y").map(Vec::len), Some(1));
        assert!(a.reads.contains_key("a"));
        assert!(a.reads.contains_key("t"));
        assert!(!a.reads.contains_key("y"));
    }

    #[test]
    fn always_blocks_are_classified() {
        let (file, _) = analyze(
            "module m(input clk, input d, output reg q, output reg g);
               always @(posedge clk) q <= d;
               always @* g = d;
               always #5 q = ~q;
             endmodule",
        );
        let a = Analysis::build(&file, &file.modules[0]);
        assert_eq!(a.blocks.len(), 3);
        assert_eq!(a.blocks[0].kind, BlockKind::Seq);
        assert_eq!(a.blocks[1].kind, BlockKind::Comb);
        assert_eq!(a.blocks[2].kind, BlockKind::Other);
        assert_eq!(a.blocks[0].assigns.len(), 1);
        assert_eq!(a.blocks[0].assigns[0].op, AssignOp::NonBlocking);
    }

    #[test]
    fn initial_and_delay_loop_drivers_do_not_conflict() {
        assert!(!DriverSource::Initial.conflicts());
        assert!(!DriverSource::AlwaysOther.conflicts());
        assert!(DriverSource::Continuous.conflicts());
        assert!(DriverSource::AlwaysSeq.conflicts());
    }

    #[test]
    fn const_eval_is_total_on_hostile_arithmetic() {
        let params = BTreeMap::new();
        let src = "module m; localparam X = 1 / 0; endmodule";
        let file = parse(src).expect("parses");
        if let Item::Param(p) = &file.modules[0].items[0] {
            assert_eq!(const_eval(&p.assigns[0].1, &params), None);
        } else {
            panic!("expected param");
        }
    }
}
