//! Width hazards: silent truncation on assignment and zero-width selects.

use vgen_verilog::ast::{
    BinaryOp, Connection, Expr, ExprKind, Item, Module, Stmt, StmtKind, UnaryOp,
};

use crate::analyze::{self, Analysis, Sel};
use crate::diag::{Diagnostic, Rule};

/// Runs both width rules over one module's analysis.
pub fn check(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    truncations(a, out);
    zero_width(a, out);
}

/// The width of an expression, when provable.
///
/// `Lit` marks number literals and parameter reads: Verilog literals adapt
/// to their assignment context, so a `Lit` operand adopts the other
/// operand's width instead of forcing its own (`q <= q + 1` is 4-bit even
/// though `1` parses as 32-bit). A bare `Lit` on an assignment RHS never
/// fires the truncation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum W {
    Fixed(u64),
    Lit(u64),
}

impl W {
    fn combine(self, other: W) -> W {
        match (self, other) {
            (W::Fixed(x), W::Fixed(y)) => W::Fixed(x.max(y)),
            (W::Fixed(x), W::Lit(_)) | (W::Lit(_), W::Fixed(x)) => W::Fixed(x),
            (W::Lit(x), W::Lit(y)) => W::Lit(x.max(y)),
        }
    }

    fn bits(self) -> u64 {
        match self {
            W::Fixed(x) | W::Lit(x) => x,
        }
    }
}

fn expr_width(a: &Analysis<'_>, expr: &Expr) -> Option<W> {
    match &expr.kind {
        ExprKind::Number(v) => Some(W::Lit(v.width() as u64)),
        ExprKind::Ident(name) => {
            if a.params.contains_key(name) {
                Some(W::Lit(32))
            } else if a.symbols.get(name).is_some_and(|s| s.is_memory) {
                None
            } else {
                a.signal_width(name).map(W::Fixed)
            }
        }
        ExprKind::Unary { op, arg } => match op {
            UnaryOp::Plus | UnaryOp::Neg | UnaryOp::BitNot => expr_width(a, arg),
            _ => Some(W::Fixed(1)),
        },
        ExprKind::Binary { op, lhs, rhs } => match op {
            BinaryOp::Add
            | BinaryOp::Sub
            | BinaryOp::Mul
            | BinaryOp::Div
            | BinaryOp::Rem
            | BinaryOp::BitAnd
            | BinaryOp::BitOr
            | BinaryOp::BitXor
            | BinaryOp::BitXnor => Some(expr_width(a, lhs)?.combine(expr_width(a, rhs)?)),
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::CaseEq
            | BinaryOp::CaseNe
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::LogicAnd
            | BinaryOp::LogicOr => Some(W::Fixed(1)),
            BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr => expr_width(a, lhs),
            BinaryOp::Pow => None,
        },
        ExprKind::Ternary { then, els, .. } => {
            Some(expr_width(a, then)?.combine(expr_width(a, els)?))
        }
        ExprKind::Index { base, .. } => match &base.kind {
            // A word select of a memory has the word width; a bit select of
            // a vector is one bit.
            ExprKind::Ident(name) if a.symbols.get(name).is_some_and(|s| s.is_memory) => {
                a.symbols.get(name).and_then(|s| s.width).map(W::Fixed)
            }
            _ => Some(W::Fixed(1)),
        },
        ExprKind::PartSelect { msb, lsb, .. } => {
            let (m, l) = (a.const_eval(msb)?, a.const_eval(lsb)?);
            let w = (m - l).unsigned_abs() + 1;
            Some(W::Fixed(w))
        }
        ExprKind::IndexedSelect { width, .. } => {
            let w = a.const_eval(width)?;
            u64::try_from(w).ok().map(W::Fixed)
        }
        ExprKind::Concat(items) => {
            let mut total = 0u64;
            for item in items {
                total = total.checked_add(expr_width(a, item)?.bits())?;
            }
            Some(W::Fixed(total))
        }
        ExprKind::Replicate { count, items } => {
            let n = u64::try_from(a.const_eval(count)?).ok()?;
            let mut total = 0u64;
            for item in items {
                total = total.checked_add(expr_width(a, item)?.bits())?;
            }
            Some(W::Fixed(n.checked_mul(total)?))
        }
        _ => None,
    }
}

/// Assignments whose RHS is provably wider than the written bits.
fn truncations(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    let check_assign = |lhs: &Expr, rhs: &Expr, out: &mut Vec<Diagnostic>| {
        // Bare literals adapt to the target; never flag them.
        if matches!(rhs.kind, ExprKind::Number(_)) {
            return;
        }
        let Some(W::Fixed(rhs_bits)) = expr_width(a, rhs) else {
            return;
        };
        let mut targets = Vec::new();
        let mut index_reads = Vec::new();
        analyze::lvalue_targets(lhs, &a.params, &mut targets, &mut index_reads);
        // Only single-target lvalues: a concat lvalue distributes bits.
        let [target] = targets.as_slice() else { return };
        if a.symbols.get(&target.name).is_some_and(|s| s.is_memory) {
            return;
        }
        let lhs_bits = match target.sel {
            Sel::Whole => match a.signal_width(&target.name) {
                Some(w) => w,
                None => return,
            },
            Sel::Bit(_) => 1,
            Sel::Part(m, l) => (m - l).unsigned_abs() + 1,
            Sel::Dynamic => return,
        };
        if rhs_bits > lhs_bits {
            out.push(Diagnostic::new(
                Rule::WidthMismatch,
                lhs.span.to(rhs.span),
                format!(
                    "{rhs_bits}-bit value is truncated to {lhs_bits}-bit `{}`",
                    target.name
                ),
            ));
        }
    };
    for item in &a.module.items {
        if let Item::Assign(ai) = item {
            for (lhs, rhs) in &ai.assigns {
                check_assign(lhs, rhs, out);
            }
        }
    }
    for block in &a.blocks {
        // Delay-loop/testbench blocks are exempt along with initial blocks:
        // stimulus code writes counters with integer arithmetic freely.
        if matches!(block.kind, crate::analyze::BlockKind::Other) {
            continue;
        }
        if let Some(body) = block.body {
            each_assign(body, &mut |lhs, rhs| check_assign(lhs, rhs, out));
        }
    }
}

fn each_assign<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr, &'a Expr)) {
    if let StmtKind::Assign { lhs, rhs, .. } = &stmt.kind {
        f(lhs, rhs);
    }
    match &stmt.kind {
        StmtKind::Block { stmts, .. } => {
            for s in stmts {
                each_assign(s, f);
            }
        }
        StmtKind::If { then, els, .. } => {
            each_assign(then, f);
            if let Some(els) = els {
                each_assign(els, f);
            }
        }
        StmtKind::Case { arms, .. } => {
            for arm in arms {
                each_assign(&arm.body, f);
            }
        }
        StmtKind::For { body, .. }
        | StmtKind::While { body, .. }
        | StmtKind::Repeat { body, .. }
        | StmtKind::Forever { body } => each_assign(body, f),
        StmtKind::Delay { stmt: Some(s), .. }
        | StmtKind::Event { stmt: Some(s), .. }
        | StmtKind::Wait { stmt: Some(s), .. } => each_assign(s, f),
        _ => {}
    }
}

/// Part-selects, indexed selects and replications that cover zero bits.
fn zero_width(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    let visit = |expr: &Expr, out: &mut Vec<Diagnostic>| match &expr.kind {
        ExprKind::PartSelect { base, msb, lsb } => {
            let (Some(m), Some(l)) = (a.const_eval(msb), a.const_eval(lsb)) else {
                return;
            };
            // Judge direction against the declared range when known;
            // otherwise assume the conventional descending `[msb:lsb]`.
            let descending = match &base.kind {
                ExprKind::Ident(name) => a
                    .symbols
                    .get(name)
                    .and_then(|s| s.range)
                    .is_none_or(|(rm, rl)| rm >= rl),
                _ => true,
            };
            let w = if descending { m - l + 1 } else { l - m + 1 };
            if w <= 0 {
                out.push(Diagnostic::new(
                    Rule::ZeroWidth,
                    expr.span,
                    format!("part-select `[{m}:{l}]` covers no bits"),
                ));
            }
        }
        ExprKind::IndexedSelect { width, .. } => {
            if let Some(w) = a.const_eval(width) {
                if w <= 0 {
                    out.push(Diagnostic::new(
                        Rule::ZeroWidth,
                        expr.span,
                        format!("indexed select of width {w} covers no bits"),
                    ));
                }
            }
        }
        ExprKind::Replicate { count, .. } => {
            if let Some(n) = a.const_eval(count) {
                if n <= 0 {
                    out.push(Diagnostic::new(
                        Rule::ZeroWidth,
                        expr.span,
                        format!("replication count {n} produces no bits"),
                    ));
                }
            }
        }
        _ => {}
    };
    for_each_module_expr(a.module, &mut |e| visit(e, out));
}

/// Visits every expression in the module body, recursively.
fn for_each_module_expr<'a>(module: &'a Module, f: &mut dyn FnMut(&'a Expr)) {
    fn deep<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
        f(expr);
        match &expr.kind {
            ExprKind::Unary { arg, .. } => deep(arg, f),
            ExprKind::Binary { lhs, rhs, .. } => {
                deep(lhs, f);
                deep(rhs, f);
            }
            ExprKind::Ternary { cond, then, els } => {
                deep(cond, f);
                deep(then, f);
                deep(els, f);
            }
            ExprKind::Index { base, index } => {
                deep(base, f);
                deep(index, f);
            }
            ExprKind::PartSelect { base, msb, lsb } => {
                deep(base, f);
                deep(msb, f);
                deep(lsb, f);
            }
            ExprKind::IndexedSelect {
                base, start, width, ..
            } => {
                deep(base, f);
                deep(start, f);
                deep(width, f);
            }
            ExprKind::Concat(items) => {
                for item in items {
                    deep(item, f);
                }
            }
            ExprKind::Replicate { count, items } => {
                deep(count, f);
                for item in items {
                    deep(item, f);
                }
            }
            ExprKind::SysCall { args, .. } | ExprKind::Call { args, .. } => {
                for arg in args {
                    deep(arg, f);
                }
            }
            _ => {}
        }
    }
    fn stmt_exprs<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
        match &stmt.kind {
            StmtKind::Assign {
                lhs, delay, rhs, ..
            } => {
                deep(lhs, f);
                if let Some(d) = delay {
                    deep(d, f);
                }
                deep(rhs, f);
            }
            StmtKind::Block { stmts, .. } => {
                for s in stmts {
                    stmt_exprs(s, f);
                }
            }
            StmtKind::If { cond, then, els } => {
                deep(cond, f);
                stmt_exprs(then, f);
                if let Some(els) = els {
                    stmt_exprs(els, f);
                }
            }
            StmtKind::Case { expr, arms, .. } => {
                deep(expr, f);
                for arm in arms {
                    for label in &arm.labels {
                        deep(label, f);
                    }
                    stmt_exprs(&arm.body, f);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                deep(&init.0, f);
                deep(&init.1, f);
                deep(cond, f);
                deep(&step.0, f);
                deep(&step.1, f);
                stmt_exprs(body, f);
            }
            StmtKind::While { cond, body } => {
                deep(cond, f);
                stmt_exprs(body, f);
            }
            StmtKind::Repeat { count, body } => {
                deep(count, f);
                stmt_exprs(body, f);
            }
            StmtKind::Forever { body } => stmt_exprs(body, f),
            StmtKind::Delay { amount, stmt } => {
                deep(amount, f);
                if let Some(s) = stmt {
                    stmt_exprs(s, f);
                }
            }
            StmtKind::Event { control, stmt } => {
                if let vgen_verilog::ast::EventControl::List(terms) = control {
                    for term in terms {
                        deep(&term.expr, f);
                    }
                }
                if let Some(s) = stmt {
                    stmt_exprs(s, f);
                }
            }
            StmtKind::Wait { cond, stmt } => {
                deep(cond, f);
                if let Some(s) = stmt {
                    stmt_exprs(s, f);
                }
            }
            StmtKind::SysCall { args, .. } | StmtKind::TaskCall { args, .. } => {
                for arg in args {
                    deep(arg, f);
                }
            }
            StmtKind::Disable(_) | StmtKind::Null => {}
        }
    }
    for item in &module.items {
        match item {
            Item::Decl(decl) => {
                for d in &decl.names {
                    if let Some(init) = &d.init {
                        deep(init, f);
                    }
                }
            }
            Item::Param(p) => {
                for (_, value) in &p.assigns {
                    deep(value, f);
                }
            }
            Item::Assign(ai) => {
                for (lhs, rhs) in &ai.assigns {
                    deep(lhs, f);
                    deep(rhs, f);
                }
            }
            Item::Always(al) => stmt_exprs(&al.body, f),
            Item::Initial(init) => stmt_exprs(&init.body, f),
            Item::Instance(inst) => {
                for conn in inst.params.iter().chain(&inst.conns) {
                    match conn {
                        Connection::Named(_, Some(e)) => deep(e, f),
                        Connection::Positional(e) => deep(e, f),
                        Connection::Named(_, None) => {}
                    }
                }
            }
            Item::Gate(g) => {
                for conn in &g.conns {
                    deep(conn, f);
                }
            }
            Item::Defparam { value, .. } => deep(value, f),
            Item::Function(func) => stmt_exprs(&func.body, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_verilog::parse;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = parse(src).expect("fixture parses");
        let a = Analysis::build(&file, &file.modules[0]);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn concat_truncation_is_flagged() {
        let d = lint(
            "module m(input [7:0] a, input [7:0] b, output [7:0] y);
               assign y = {a, b};
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::WidthMismatch);
        assert!(d[0].message.contains("16-bit"), "{}", d[0].message);
    }

    #[test]
    fn literal_and_counter_idioms_are_exempt() {
        let d = lint(
            "module m(input clk, output reg [3:0] q);
               always @(posedge clk) q <= q + 1;
               initial q = 0;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn matching_widths_are_clean() {
        let d = lint(
            "module m(input [7:0] a, input [7:0] b, output [7:0] y);
               assign y = a & b;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wider_source_signal_is_flagged() {
        let d = lint(
            "module m(input [15:0] a, output [7:0] y);
               assign y = a;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::WidthMismatch);
    }

    #[test]
    fn part_select_narrowing_is_clean() {
        let d = lint(
            "module m(input [15:0] a, output [7:0] y);
               assign y = a[7:0];
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn zero_width_part_select_is_flagged() {
        let d = lint(
            "module m(input [7:0] a, output y);
               assign y = a[0:1];
             endmodule",
        );
        assert!(d.iter().any(|d| d.rule == Rule::ZeroWidth), "{d:?}");
    }

    #[test]
    fn zero_replication_is_flagged() {
        let d = lint(
            "module m(input a, output [3:0] y);
               assign y = {{0{a}}, 4'b0};
             endmodule",
        );
        assert!(d.iter().any(|d| d.rule == Rule::ZeroWidth), "{d:?}");
    }
}
