//! Signal usage hygiene: undriven-but-read and never-read signals.

use vgen_verilog::ast::{NetKind, PortDir};

use crate::analyze::Analysis;
use crate::diag::{Diagnostic, Rule};

/// Runs the usage rules over one module's analysis.
pub fn check(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    for (name, sym) in &a.symbols {
        // Instance connections are treated as both driven and read because
        // port directions are not resolved across modules.
        if a.instance_connected.contains(name) {
            continue;
        }
        let driven = a.drivers.contains_key(name)
            || matches!(sym.dir, Some(PortDir::Input | PortDir::Inout))
            || matches!(sym.kind, NetKind::Supply0 | NetKind::Supply1)
            || sym.has_init;
        let read = a.reads.contains_key(name);
        if read && !driven {
            let span = a.reads.get(name).copied().unwrap_or(sym.span);
            out.push(Diagnostic::new(
                Rule::UndrivenSignal,
                span,
                format!("`{name}` is read but never driven"),
            ));
        } else if !read && !matches!(sym.dir, Some(PortDir::Output | PortDir::Inout)) {
            out.push(Diagnostic::new(
                Rule::UnusedSignal,
                sym.span,
                format!("`{name}` is never read"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use vgen_verilog::parse;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = parse(src).expect("fixture parses");
        let a = Analysis::build(&file, &file.modules[0]);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn undriven_read_signal_is_flagged() {
        let d = lint(
            "module m(output y);
               wire t;
               assign y = t;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UndrivenSignal);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn unused_signal_is_flagged() {
        let d = lint(
            "module m(input a, output y);
               wire dead;
               assign dead = a;
               assign y = a;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UnusedSignal);
        assert!(d[0].message.contains("`dead`"));
    }

    #[test]
    fn unused_input_is_flagged_but_output_is_not() {
        let d = lint(
            "module m(input a, input b, output y);
               assign y = a;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`b`"));
    }

    #[test]
    fn clean_module_has_no_findings() {
        let d = lint(
            "module m(input a, input b, output y);
               wire t;
               assign t = a & b;
               assign y = t;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn instance_connections_count_as_driven_and_read() {
        let d = lint(
            "module tb;
               wire q;
               reg clk;
               dff dut(.clk(clk), .q(q));
               initial clk = 0;
             endmodule
             module dff(input clk, output reg q);
               always @(posedge clk) q <= ~q;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
