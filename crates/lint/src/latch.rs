//! Latch hazards in combinational always blocks: incomplete assignment
//! coverage, `case` without `default`, and incomplete sensitivity lists.

use std::collections::{BTreeMap, BTreeSet};

use vgen_verilog::ast::{AssignOp, CaseArm, Expr, ExprKind, Stmt, StmtKind};
use vgen_verilog::span::Span;

use crate::analyze::{self, Analysis, BlockKind};
use crate::diag::{Diagnostic, Rule};

/// Runs the latch-family rules over one module's analysis.
pub fn check(a: &Analysis<'_>, out: &mut Vec<Diagnostic>) {
    for block in &a.blocks {
        if block.kind != BlockKind::Comb {
            continue;
        }
        let Some(body) = block.body else { continue };
        inferred_latches(a, block.assigns.as_slice(), body, out);
        missing_defaults(a, body, out);
        if let Some(sens) = block.sens {
            incomplete_sensitivity(a, sens, body, out);
        }
    }
}

/// A signal assigned somewhere in a combinational block but not on every
/// path through it holds its previous value on the uncovered paths — a
/// latch. Coverage is judged per signal name (assigning any bits counts),
/// which under-reports partial-assign latches but never false-positives.
fn inferred_latches(
    a: &Analysis<'_>,
    assigns: &[analyze::ProcAssign],
    body: &Stmt,
    out: &mut Vec<Diagnostic>,
) {
    let covered = must_assign(a, body);
    let mut reported = BTreeSet::new();
    for pa in assigns {
        let name = pa.target.name.as_str();
        if covered.contains(name) || !reported.insert(name.to_string()) {
            continue;
        }
        if a.symbols.get(name).is_some_and(|s| s.is_memory) {
            continue;
        }
        out.push(Diagnostic::new(
            Rule::InferredLatch,
            pa.span,
            format!(
                "`{name}` is not assigned on every path through this \
                 combinational block; a latch is inferred"
            ),
        ));
    }
}

/// The set of signals assigned on *every* path through `stmt`.
///
/// Loops optimistically contribute their body (a constant-bound `for` in a
/// combinational block executes at least once in practice); `if` without
/// `else` and `case` without full coverage contribute nothing.
fn must_assign(a: &Analysis<'_>, stmt: &Stmt) -> BTreeSet<String> {
    match &stmt.kind {
        StmtKind::Assign { lhs, .. } => {
            let mut targets = Vec::new();
            let mut reads = Vec::new();
            analyze::lvalue_targets(lhs, &a.params, &mut targets, &mut reads);
            targets.into_iter().map(|t| t.name).collect()
        }
        StmtKind::Block { stmts, .. } => {
            let mut set = BTreeSet::new();
            for s in stmts {
                set.extend(must_assign(a, s));
            }
            set
        }
        StmtKind::If {
            then,
            els: Some(els),
            ..
        } => {
            let t = must_assign(a, then);
            let e = must_assign(a, els);
            t.intersection(&e).cloned().collect()
        }
        StmtKind::If { els: None, .. } => BTreeSet::new(),
        StmtKind::Case { expr, arms, .. } => {
            let has_default = arms.iter().any(|arm| arm.labels.is_empty());
            if !has_default && !case_fully_covered(a, expr, arms) {
                return BTreeSet::new();
            }
            let mut sets = arms.iter().map(|arm| must_assign(a, &arm.body));
            let Some(first) = sets.next() else {
                return BTreeSet::new();
            };
            sets.fold(first, |acc, s| acc.intersection(&s).cloned().collect())
        }
        StmtKind::For {
            init, step, body, ..
        } => {
            let mut set = must_assign(a, body);
            for lhs in [&init.0, &step.0] {
                let mut targets = Vec::new();
                let mut reads = Vec::new();
                analyze::lvalue_targets(lhs, &a.params, &mut targets, &mut reads);
                set.extend(targets.into_iter().map(|t| t.name));
            }
            set
        }
        StmtKind::While { body, .. }
        | StmtKind::Repeat { body, .. }
        | StmtKind::Forever { body } => must_assign(a, body),
        StmtKind::Delay { stmt: Some(s), .. }
        | StmtKind::Event { stmt: Some(s), .. }
        | StmtKind::Wait { stmt: Some(s), .. } => must_assign(a, s),
        _ => BTreeSet::new(),
    }
}

/// Whether a `case` with only labelled arms provably covers every value of
/// its selector: constant labels, known selector width ≤ 16, and exactly
/// `2^width` distinct label values.
fn case_fully_covered(a: &Analysis<'_>, selector: &Expr, arms: &[CaseArm]) -> bool {
    let width = selector_width(a, selector);
    let Some(width) = width.filter(|w| (1..=16).contains(w)) else {
        return false;
    };
    let mask = (1u64 << width) - 1;
    let mut values = BTreeSet::new();
    for arm in arms {
        for label in &arm.labels {
            let Some(v) = a.const_eval(label) else {
                return false;
            };
            values.insert((v as u64) & mask);
        }
    }
    values.len() as u64 == 1 << width
}

fn selector_width(a: &Analysis<'_>, selector: &Expr) -> Option<u64> {
    match &selector.kind {
        ExprKind::Ident(name) => a.signal_width(name),
        ExprKind::Index { .. } => Some(1),
        ExprKind::PartSelect { msb, lsb, .. } => {
            let (m, l) = (a.const_eval(msb)?, a.const_eval(lsb)?);
            Some((m - l).unsigned_abs() + 1)
        }
        ExprKind::Concat(items) => items
            .iter()
            .map(|i| selector_width(a, i))
            .sum::<Option<u64>>(),
        _ => None,
    }
}

/// `case` without `default` (and without provably full coverage) inside a
/// combinational block.
fn missing_defaults(a: &Analysis<'_>, stmt: &Stmt, out: &mut Vec<Diagnostic>) {
    if let StmtKind::Case { expr, arms, .. } = &stmt.kind {
        let has_default = arms.iter().any(|arm| arm.labels.is_empty());
        if !has_default && !case_fully_covered(a, expr, arms) {
            out.push(Diagnostic::new(
                Rule::MissingDefault,
                stmt.span,
                "`case` in a combinational block has no `default` and does \
                 not cover every selector value"
                    .to_string(),
            ));
        }
    }
    each_child(stmt, &mut |s| missing_defaults(a, s, out));
}

fn each_child(stmt: &Stmt, f: &mut dyn FnMut(&Stmt)) {
    match &stmt.kind {
        StmtKind::Block { stmts, .. } => stmts.iter().for_each(f),
        StmtKind::If { then, els, .. } => {
            f(then);
            if let Some(els) = els {
                f(els);
            }
        }
        StmtKind::Case { arms, .. } => arms.iter().for_each(|arm| f(&arm.body)),
        StmtKind::For { body, .. }
        | StmtKind::While { body, .. }
        | StmtKind::Repeat { body, .. }
        | StmtKind::Forever { body } => f(body),
        StmtKind::Delay { stmt: Some(s), .. }
        | StmtKind::Event { stmt: Some(s), .. }
        | StmtKind::Wait { stmt: Some(s), .. } => f(s),
        _ => {}
    }
}

/// A level-sensitive block reading signals its sensitivity list does not
/// mention simulates differently from the hardware it describes.
fn incomplete_sensitivity(
    a: &Analysis<'_>,
    sens: &[vgen_verilog::ast::EventExpr],
    body: &Stmt,
    out: &mut Vec<Diagnostic>,
) {
    let mut listed = BTreeSet::new();
    for term in sens {
        let mut reads = Vec::new();
        analyze::expr_reads(&term.expr, &mut reads);
        listed.extend(reads.into_iter().map(|(name, _)| name));
    }
    let mut first_read: BTreeMap<String, Span> = BTreeMap::new();
    reads_before_write(a, body, &mut BTreeSet::new(), &mut first_read);
    let missing: Vec<(&String, &Span)> = first_read
        .iter()
        .filter(|(name, _)| {
            a.is_signal(name)
                && !listed.contains(*name)
                && !a.symbols.get(*name).is_some_and(|s| s.is_memory)
        })
        .collect();
    if missing.is_empty() {
        return;
    }
    let span = *missing
        .iter()
        .map(|(_, span)| *span)
        .min_by_key(|s| (s.start, s.end))
        .expect("nonempty");
    let names: Vec<String> = missing.iter().map(|(n, _)| format!("`{n}`")).collect();
    out.push(Diagnostic::new(
        Rule::IncompleteSensitivity,
        span,
        format!("sensitivity list does not include {}", names.join(", ")),
    ));
}

/// Records the first read span of every signal read before being assigned
/// (whole, blocking) on some path through `stmt`.
fn reads_before_write(
    a: &Analysis<'_>,
    stmt: &Stmt,
    assigned: &mut BTreeSet<String>,
    out: &mut BTreeMap<String, Span>,
) {
    let note = |expr: &Expr, assigned: &BTreeSet<String>, out: &mut BTreeMap<String, Span>| {
        let mut reads = Vec::new();
        analyze::expr_reads(expr, &mut reads);
        for (name, span) in reads {
            if !assigned.contains(&name) {
                out.entry(name).or_insert(span);
            }
        }
    };
    match &stmt.kind {
        StmtKind::Assign { lhs, op, rhs, .. } => {
            let mut targets = Vec::new();
            let mut index_reads = Vec::new();
            analyze::lvalue_targets(lhs, &a.params, &mut targets, &mut index_reads);
            for (name, span) in index_reads {
                if !assigned.contains(&name) {
                    out.entry(name).or_insert(span);
                }
            }
            note(rhs, assigned, out);
            if *op == AssignOp::Blocking {
                for t in targets {
                    if t.sel == analyze::Sel::Whole {
                        assigned.insert(t.name);
                    }
                }
            }
        }
        StmtKind::Block { stmts, .. } => {
            for s in stmts {
                reads_before_write(a, s, assigned, out);
            }
        }
        StmtKind::If { cond, then, els } => {
            note(cond, assigned, out);
            let mut a1 = assigned.clone();
            reads_before_write(a, then, &mut a1, out);
            if let Some(els) = els {
                let mut a2 = assigned.clone();
                reads_before_write(a, els, &mut a2, out);
                assigned.extend(a1.intersection(&a2).cloned());
            }
        }
        StmtKind::Case { expr, arms, .. } => {
            note(expr, assigned, out);
            let mut arm_sets: Vec<BTreeSet<String>> = Vec::new();
            for arm in arms {
                for label in &arm.labels {
                    note(label, assigned, out);
                }
                let mut ai = assigned.clone();
                reads_before_write(a, &arm.body, &mut ai, out);
                arm_sets.push(ai);
            }
            let has_default = arms.iter().any(|arm| arm.labels.is_empty());
            if has_default {
                if let Some(first) = arm_sets.first().cloned() {
                    let common = arm_sets
                        .iter()
                        .skip(1)
                        .fold(first, |acc, s| acc.intersection(s).cloned().collect());
                    assigned.extend(common);
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            note(&init.1, assigned, out);
            let mut targets = Vec::new();
            let mut index_reads = Vec::new();
            analyze::lvalue_targets(&init.0, &a.params, &mut targets, &mut index_reads);
            for t in targets {
                assigned.insert(t.name);
            }
            note(cond, assigned, out);
            let mut ab = assigned.clone();
            reads_before_write(a, body, &mut ab, out);
            let mut reads = Vec::new();
            analyze::expr_reads(&step.1, &mut reads);
            for (name, span) in reads {
                if !ab.contains(&name) {
                    out.entry(name).or_insert(span);
                }
            }
        }
        StmtKind::While { cond, body } => {
            note(cond, assigned, out);
            let mut ab = assigned.clone();
            reads_before_write(a, body, &mut ab, out);
        }
        StmtKind::Repeat { count, body } => {
            note(count, assigned, out);
            let mut ab = assigned.clone();
            reads_before_write(a, body, &mut ab, out);
        }
        StmtKind::Forever { body } => {
            let mut ab = assigned.clone();
            reads_before_write(a, body, &mut ab, out);
        }
        StmtKind::Delay { amount, stmt } => {
            note(amount, assigned, out);
            if let Some(s) = stmt {
                reads_before_write(a, s, assigned, out);
            }
        }
        StmtKind::Event { stmt, .. } => {
            if let Some(s) = stmt {
                reads_before_write(a, s, assigned, out);
            }
        }
        StmtKind::Wait { cond, stmt } => {
            note(cond, assigned, out);
            if let Some(s) = stmt {
                reads_before_write(a, s, assigned, out);
            }
        }
        StmtKind::SysCall { args, .. } | StmtKind::TaskCall { args, .. } => {
            for arg in args {
                note(arg, assigned, out);
            }
        }
        StmtKind::Disable(_) | StmtKind::Null => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_verilog::parse;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = parse(src).expect("fixture parses");
        let a = Analysis::build(&file, &file.modules[0]);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn if_without_else_infers_latch() {
        let d = lint(
            "module m(input en, input d, output reg q);
               always @* if (en) q = d;
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::InferredLatch);
        assert!(d[0].message.contains("`q`"));
    }

    #[test]
    fn complete_if_else_is_clean() {
        let d = lint(
            "module m(input en, input d, output reg q);
               always @* begin
                 if (en) q = d;
                 else q = 1'b0;
               end
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn default_pre_assignment_is_clean() {
        let d = lint(
            "module m(input en, input d, output reg q);
               always @* begin
                 q = 1'b0;
                 if (en) q = d;
               end
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn case_without_default_warns_twice() {
        let d = lint(
            "module m(input [1:0] s, output reg q);
               always @* case (s)
                 2'd0: q = 1'b0;
                 2'd1: q = 1'b1;
               endcase
             endmodule",
        );
        let rules: Vec<Rule> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::MissingDefault), "{d:?}");
        assert!(rules.contains(&Rule::InferredLatch), "{d:?}");
    }

    #[test]
    fn fully_covered_case_is_clean() {
        let d = lint(
            "module m(input [1:0] s, output reg q);
               always @* case (s)
                 2'd0: q = 1'b0;
                 2'd1: q = 1'b1;
                 2'd2: q = 1'b0;
                 2'd3: q = 1'b1;
               endcase
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn case_with_default_is_clean() {
        let d = lint(
            "module m(input [1:0] s, output reg q);
               always @* case (s)
                 2'd0: q = 1'b0;
                 default: q = 1'b1;
               endcase
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_sensitivity_entry_warns() {
        let d = lint(
            "module m(input a, input b, input s, output reg y);
               always @(a or b) begin
                 if (s) y = a;
                 else y = b;
               end
             endmodule",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::IncompleteSensitivity);
        assert!(d[0].message.contains("`s`"), "{}", d[0].message);
    }

    #[test]
    fn complete_sensitivity_is_clean() {
        let d = lint(
            "module m(input a, input b, input s, output reg y);
               always @(a or b or s) begin
                 if (s) y = a;
                 else y = b;
               end
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sequential_blocks_are_exempt() {
        let d = lint(
            "module m(input clk, input en, input d, output reg q);
               always @(posedge clk) if (en) q <= d;
             endmodule",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
