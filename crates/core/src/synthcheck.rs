//! Extension experiment: the *synthesis* check.
//!
//! The paper's introduction motivates syntax, **synthesis** and functional
//! checks (its §I, citing the Copilot security study), but its evaluation
//! only reports compile and functional rates. With a real synthesis
//! backend available (`vgen-synth`), this module adds the missing middle
//! tier: a completion is *synthesizable* when it compiles **and** lowers to
//! a netlist with no error diagnostics (no latches, no timing controls, no
//! memories, single drivers).

use vgen_lm::engine::CompletionEngine;
use vgen_problems::problem;

use crate::check::{assemble, CheckOutcome};
use crate::sweep::EvalConfig;

/// Pass counts for the three-tier check of one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthTally {
    /// Total completions checked.
    pub total: usize,
    /// Completions that compile (parse + elaborate).
    pub compiled: usize,
    /// Completions that also synthesize latch-free.
    pub synthesizable: usize,
    /// Completions that also pass the testbench.
    pub functional: usize,
}

impl SynthTally {
    /// Compile rate.
    pub fn compile_rate(&self) -> f64 {
        ratio(self.compiled, self.total)
    }

    /// Synthesis rate.
    pub fn synth_rate(&self) -> f64 {
        ratio(self.synthesizable, self.total)
    }

    /// Functional rate.
    pub fn functional_rate(&self) -> f64 {
        ratio(self.functional, self.total)
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Runs the three-tier check (compile / synthesize / function) for an
/// engine over a grid. Problem 10 (RAM) is excluded from the synthesis
/// tier (memories are outside the netlist backend) but still counted for
/// compile/functional.
pub fn synth_sweep(engine: &mut dyn CompletionEngine, config: &EvalConfig) -> SynthTally {
    let mut tally = SynthTally::default();
    for &pid in &config.problem_ids {
        let prob = problem(pid).unwrap_or_else(|| panic!("unknown problem id {pid}"));
        for &level in &config.levels {
            for &t in &config.temperatures {
                for &n in &config.ns {
                    for c in engine.generate(prob, level, t, n) {
                        let source = assemble(prob, level, &c.text);
                        let outcome = crate::check::check_source(prob, &source, config.sim);
                        tally.total += 1;
                        if !outcome.compiled() {
                            continue;
                        }
                        tally.compiled += 1;
                        if matches!(outcome, CheckOutcome::Pass) {
                            tally.functional += 1;
                        }
                        if pid == 10 {
                            continue;
                        }
                        if vgen_synth::synthesize_source(&source).is_ok() {
                            tally.synthesizable += 1;
                        }
                    }
                }
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_corpus::CorpusSource;
    use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};
    use vgen_problems::PromptLevel;
    use vgen_sim::SimConfig;

    #[test]
    fn tiers_are_ordered() {
        let mut engine = FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
            CorpusSource::GithubOnly,
            21,
        );
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![6],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2, 6, 15],
            sim: SimConfig::default(),
        };
        let t = synth_sweep(&mut engine, &cfg);
        assert!(t.total > 0);
        // compile ⊇ synthesizable ⊇ functional (for non-RAM problems the
        // reference solutions all synthesize, so functional ⊆ synth).
        assert!(t.compiled <= t.total);
        assert!(t.synthesizable <= t.compiled);
        assert!(t.functional <= t.compiled);
        assert!(t.compiled > 0);
        assert!(t.synthesizable > 0);
    }

    #[test]
    fn reference_solutions_hit_all_tiers() {
        // Hand-check one correct completion through the tiers.
        let p = problem(6).expect("p6");
        let src = p.reference_source();
        assert!(vgen_synth::synthesize_source(&src).is_ok());
    }
}
