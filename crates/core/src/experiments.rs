//! One-call experiment drivers used by the bench binaries and examples:
//! evaluate every Table IV model row over a grid and return [`ModelRun`]s.

use vgen_corpus::CorpusSource;
use vgen_lm::registry::ModelId;
use vgen_lm::FamilyEngine;

use crate::report::ModelRun;
use crate::sweep::{run_engine, EvalConfig};

/// Evaluates all 11 (family, tuning) rows with the calibrated family
/// engine. J1-Large automatically skips n = 25 (§IV-B).
pub fn evaluate_all_models(config: &EvalConfig, corpus: CorpusSource, seed: u64) -> Vec<ModelRun> {
    ModelId::all_evaluated()
        .into_iter()
        .map(|model| evaluate_model(model, config, corpus, seed))
        .collect()
}

/// Evaluates a single model row.
pub fn evaluate_model(
    model: ModelId,
    config: &EvalConfig,
    corpus: CorpusSource,
    seed: u64,
) -> ModelRun {
    let mut cfg = config.clone();
    if !model.family.supports_n25() {
        cfg.ns.retain(|&n| n != 25);
    }
    let mut engine = FamilyEngine::new(model, corpus, seed);
    ModelRun {
        model,
        run: run_engine(&mut engine, &cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_lm::{ModelFamily, Tuning};
    use vgen_problems::PromptLevel;
    use vgen_sim::SimConfig;

    #[test]
    fn j1_skips_n25() {
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![1, 25],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1],
            sim: SimConfig::default(),
        };
        let j1 = evaluate_model(
            ModelId::new(ModelFamily::J1Large7B, Tuning::FineTuned),
            &cfg,
            CorpusSource::GithubOnly,
            1,
        );
        assert!(j1.run.records.iter().all(|r| r.n != 25));
        let other = evaluate_model(
            ModelId::new(ModelFamily::CodeGen2B, Tuning::FineTuned),
            &cfg,
            CorpusSource::GithubOnly,
            1,
        );
        assert!(other.run.records.iter().any(|r| r.n == 25));
    }

    #[test]
    fn all_models_evaluated() {
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![2],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![2],
            sim: SimConfig::default(),
        };
        let rows = evaluate_all_models(&cfg, CorpusSource::GithubOnly, 7);
        assert_eq!(rows.len(), 11);
        assert!(rows.iter().all(|r| !r.run.records.is_empty()));
    }
}
