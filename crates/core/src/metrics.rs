//! Evaluation metrics.
//!
//! The paper's headline metric is **Pass@(scenario·n)**: for a *scenario*
//! (a set of problems at one difficulty and description level) with `n`
//! completions per problem, the *fraction of the scenario·n completions*
//! that pass the check (§V-B: "For compilation, the Pass@k metric reflects
//! the proportion of completions that compile. For functional tests, this
//! metric is the fraction of the k code samples that pass").
//!
//! The unbiased pass@k estimator from the Codex paper (Chen et al. 2021)
//! is also provided as an extension for the ablation benches.

/// Fraction of `passed` outcomes — the paper's Pass@(scenario·n).
///
/// Returns 0.0 for an empty slice.
pub fn pass_fraction(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64
}

/// The unbiased pass@k estimator: `1 - C(n-c, k)/C(n, k)` where `n` is the
/// number of samples and `c` the number that passed.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n` or `c > n`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k must not exceed n");
    assert!(c <= n, "c must not exceed n");
    if n - c < k {
        return 1.0;
    }
    // 1 - prod_{i=n-c+1..=n} (1 - k/i)
    let mut prod = 1.0;
    for i in (n - c + 1)..=n {
        prod *= 1.0 - k as f64 / i as f64;
    }
    1.0 - prod
}

/// Aggregated counts for one cell of a results table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Total completions checked.
    pub total: usize,
    /// Completions that compiled.
    pub compiled: usize,
    /// Completions that passed the testbench.
    pub passed: usize,
}

impl Tally {
    /// Adds one observation.
    pub fn record(&mut self, compiled: bool, passed: bool) {
        self.total += 1;
        if compiled {
            self.compiled += 1;
        }
        if passed {
            self.passed += 1;
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: Tally) {
        self.total += other.total;
        self.compiled += other.compiled;
        self.passed += other.passed;
    }

    /// Compile Pass@(scenario·n).
    pub fn compile_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.compiled as f64 / self.total as f64
        }
    }

    /// Functional Pass@(scenario·n).
    pub fn functional_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.passed as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fraction_basic() {
        assert_eq!(pass_fraction(&[true, false, true, true]), 0.75);
        assert_eq!(pass_fraction(&[]), 0.0);
        assert_eq!(pass_fraction(&[false]), 0.0);
    }

    #[test]
    fn pass_at_k_extremes() {
        assert_eq!(pass_at_k(10, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 10, 1), 1.0);
        // All failures except fewer than k leftovers → certain success.
        assert_eq!(pass_at_k(10, 5, 6), 1.0);
    }

    #[test]
    fn pass_at_1_equals_fraction() {
        let v = pass_at_k(20, 5, 1);
        assert!((v - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pass_at_k_monotone_in_k() {
        let mut prev = 0.0;
        for k in 1..=10 {
            let v = pass_at_k(10, 3, k);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "k must not exceed n")]
    fn pass_at_k_validates() {
        let _ = pass_at_k(5, 2, 6);
    }

    #[test]
    fn tally_rates() {
        let mut t = Tally::default();
        t.record(true, true);
        t.record(true, false);
        t.record(false, false);
        t.record(true, true);
        assert_eq!(t.total, 4);
        assert_eq!(t.compile_rate(), 0.75);
        assert_eq!(t.functional_rate(), 0.5);
        let mut u = Tally::default();
        u.record(true, false);
        u.merge(t);
        assert_eq!(u.total, 5);
        assert_eq!(u.compiled, 4);
    }

    #[test]
    fn empty_tally_is_zero() {
        let t = Tally::default();
        assert_eq!(t.compile_rate(), 0.0);
        assert_eq!(t.functional_rate(), 0.0);
    }
}
