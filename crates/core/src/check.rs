//! Candidate checking: truncation, assembly, compile check, functional
//! check (paper Fig. 1 step ⑧), plus a semantic lint pass
//! ([`vgen_lint`]) over every candidate that parses.

use vgen_lint::{LintReport, Rule};
use vgen_obs::CancelToken;
use vgen_problems::{Problem, PromptLevel, PASS_MARKER};
use vgen_sim::{SimConfig, StopReason};
use vgen_verilog::truncate::{assemble_candidate, truncate_completion};

/// How a check's wall-clock deadline was enforced when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// The [`CancelToken`] tripped and the pipeline unwound cooperatively
    /// within the grace period.
    Soft,
    /// The checker thread did not exit within deadline + grace — it was
    /// detached and abandoned by the watchdog (see [`crate::guard`]).
    Hard,
}

/// Why a record carries no candidate verdict. `None` of these say anything
/// about the candidate's correctness; sweeps tally them separately and
/// exclude them from pass/compile rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The harness panicked ([`CheckOutcome::HarnessFault`]).
    Panic,
    /// Soft timeout ([`CheckOutcome::Timeout`] with [`TimeoutKind::Soft`]).
    SoftTimeout,
    /// Hard timeout ([`CheckOutcome::Timeout`] with [`TimeoutKind::Hard`]).
    HardTimeout,
}

impl FaultKind {
    /// The single-token journal field for this kind.
    pub fn journal_tag(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::SoftTimeout => "soft",
            FaultKind::HardTimeout => "hard",
        }
    }

    /// Parses a [`journal_tag`](Self::journal_tag) field. `-` (the
    /// no-fault marker) parses as `Some(None)`; anything unrecognised is
    /// `None` so journal recovery treats the line as torn.
    pub fn from_journal_tag(s: &str) -> Option<Option<FaultKind>> {
        match s {
            "-" => Some(None),
            "panic" => Some(Some(FaultKind::Panic)),
            "soft" => Some(Some(FaultKind::SoftTimeout)),
            "hard" => Some(Some(FaultKind::HardTimeout)),
            _ => None,
        }
    }
}

/// Why a candidate failed (or that it didn't).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Compiled and passed the testbench.
    Pass,
    /// Compiled but the testbench reported errors or never printed the
    /// pass marker.
    FunctionalFail,
    /// Compiled but simulation ended abnormally (hang, runtime error).
    SimulationFail(String),
    /// Failed to parse or elaborate.
    CompileFail(String),
    /// The checking harness itself panicked — a bug in the harness, not a
    /// property of the candidate. See [`crate::guard`].
    HarnessFault(String),
    /// The check exceeded its wall-clock deadline. Like a harness fault,
    /// this says nothing about the candidate (the budget-legal work was
    /// merely slow on this machine at this moment), so it carries no
    /// verdict.
    Timeout(TimeoutKind),
}

impl CheckOutcome {
    /// Whether the candidate compiled. A harness fault or timeout tells us
    /// nothing about the candidate, so neither counts as compiled.
    pub fn compiled(&self) -> bool {
        !matches!(
            self,
            CheckOutcome::CompileFail(_) | CheckOutcome::HarnessFault(_) | CheckOutcome::Timeout(_)
        )
    }

    /// Whether the candidate is functionally correct.
    pub fn passed(&self) -> bool {
        matches!(self, CheckOutcome::Pass)
    }

    /// The fault classification for no-verdict outcomes, `None` for real
    /// verdicts.
    pub fn fault_kind(&self) -> Option<FaultKind> {
        match self {
            CheckOutcome::HarnessFault(_) => Some(FaultKind::Panic),
            CheckOutcome::Timeout(TimeoutKind::Soft) => Some(FaultKind::SoftTimeout),
            CheckOutcome::Timeout(TimeoutKind::Hard) => Some(FaultKind::HardTimeout),
            _ => None,
        }
    }
}

/// Lint tallies for one checked candidate — the compact form of a
/// [`LintReport`] carried on [`CheckResult`] and journaled per record.
///
/// Spans and messages are dropped (they are reproducible by re-linting the
/// source); what the sweep aggregates are counts per severity and rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintCounts {
    /// Error-severity diagnostics.
    pub errors: u32,
    /// Warning-severity diagnostics.
    pub warnings: u32,
    /// Per-rule diagnostic counts in [`Rule::ALL`] order, zero-count rules
    /// omitted.
    pub per_rule: Vec<(Rule, u32)>,
}

impl LintCounts {
    /// Condenses a full report into counts.
    pub fn from_report(report: &LintReport) -> Self {
        LintCounts {
            errors: report.error_count(),
            warnings: report.warning_count(),
            per_rule: report.per_rule(),
        }
    }

    /// Whether no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0
    }

    /// Diagnostics from behavioural-hazard rules ([`Rule::is_hazard`]) —
    /// the count that sends a passing record to the hazardous-pass bucket.
    pub fn hazard_count(&self) -> u32 {
        self.per_rule
            .iter()
            .filter(|(r, _)| r.is_hazard())
            .map(|(_, n)| n)
            .sum()
    }

    /// Serialises the counts as one journal field:
    /// `errors:warnings[:rule=count|rule=count|...]`. Contains no comma, so
    /// it nests inside the comma-separated record line.
    pub fn to_journal_field(&self) -> String {
        let mut out = format!("{}:{}", self.errors, self.warnings);
        if !self.per_rule.is_empty() {
            out.push(':');
            let rules: Vec<String> = self
                .per_rule
                .iter()
                .map(|(r, n)| format!("{}={n}", r.name()))
                .collect();
            out.push_str(&rules.join("|"));
        }
        out
    }

    /// Parses a [`LintCounts::to_journal_field`] string. Returns `None` on
    /// any malformed piece, including a per-rule sum that disagrees with
    /// the severity totals (a torn journal write).
    pub fn from_journal_field(s: &str) -> Option<LintCounts> {
        let mut it = s.splitn(3, ':');
        let errors: u32 = it.next()?.parse().ok()?;
        let warnings: u32 = it.next()?.parse().ok()?;
        let mut per_rule = Vec::new();
        if let Some(rules) = it.next() {
            let mut prev: Option<Rule> = None;
            for part in rules.split('|') {
                let (name, count) = part.split_once('=')?;
                let rule = Rule::from_name(name)?;
                let n: u32 = count.parse().ok()?;
                if n == 0 || prev.is_some_and(|p| p >= rule) {
                    return None; // zero counts and out-of-order rules are never written
                }
                prev = Some(rule);
                per_rule.push((rule, n));
            }
        }
        let total: u32 = per_rule.iter().map(|(_, n)| n).sum();
        if total != errors.checked_add(warnings)? {
            return None;
        }
        Some(LintCounts {
            errors,
            warnings,
            per_rule,
        })
    }
}

/// The result of checking one completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Outcome classification.
    pub outcome: CheckOutcome,
    /// The assembled candidate source that was checked.
    pub source: String,
    /// Lint tallies for the candidate. `None` when there was nothing to
    /// lint: the source failed to parse, or the harness faulted before the
    /// lint stage ran.
    pub lint: Option<LintCounts>,
}

/// Assembles a raw completion into a full candidate source.
///
/// Completions from the paper's flow are module *bodies* appended to the
/// prompt (after truncation at `endmodule`). The calibrated family engine
/// instead emits whole modules; those are detected by their leading
/// `module` keyword and used directly (after the same truncation).
pub fn assemble(problem: &Problem, level: PromptLevel, completion: &str) -> String {
    let trimmed = completion.trim_start();
    // Skip leading comment lines when detecting full-source completions.
    let mut rest = trimmed;
    while let Some(line_end) = rest.find('\n') {
        let line = rest[..line_end].trim_start();
        if line.starts_with("//") || line.is_empty() {
            rest = &rest[line_end + 1..];
        } else {
            break;
        }
    }
    if starts_with_module_keyword(rest) {
        truncate_completion(trimmed).to_string()
    } else {
        assemble_candidate(problem.prompt(level), completion)
    }
}

/// Whether `s` (after leading whitespace) begins with the `module` keyword
/// proper — not an identifier such as `module_helper` that merely shares
/// the prefix.
fn starts_with_module_keyword(s: &str) -> bool {
    match s.trim_start().strip_prefix("module") {
        Some(rest) => !matches!(
            rest.chars().next(),
            Some(c) if c.is_alphanumeric() || c == '_' || c == '$'
        ),
        None => false,
    }
}

/// Checks one completion end to end: assemble, compile (parse +
/// elaborate), lint, then simulate against the problem's testbench.
pub fn check_completion(
    problem: &Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
) -> CheckResult {
    check_completion_cancellable(
        problem,
        level,
        completion,
        config,
        &CancelToken::unlimited(),
    )
}

/// [`check_completion`] under a cooperative [`CancelToken`]. The token is
/// threaded through the parser, elaborator and scheduler; once it trips,
/// whichever stage is running unwinds and the outcome becomes
/// [`CheckOutcome::Timeout`] ([`TimeoutKind::Soft`]) instead of a verdict.
pub fn check_completion_cancellable(
    problem: &Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
    cancel: &CancelToken,
) -> CheckResult {
    let source = assemble(problem, level, completion);
    let (outcome, lint) = check_source_cancellable(problem, &source, config, cancel);
    CheckResult {
        outcome,
        source,
        lint,
    }
}

/// Checks an already-assembled candidate source.
pub fn check_source(problem: &Problem, source: &str, config: SimConfig) -> CheckOutcome {
    check_source_with_lint(problem, source, config).0
}

/// [`check_source`] that also returns lint tallies whenever the source
/// parses (even if it later fails elaboration or simulation — the lint
/// rules are total over any parsed AST). Runs inside the same call so a
/// sweep pays one parse per candidate and the
/// [guard](crate::guard::guarded_check_completion) covers the lint stage
/// too.
pub fn check_source_with_lint(
    problem: &Problem,
    source: &str,
    config: SimConfig,
) -> (CheckOutcome, Option<LintCounts>) {
    check_source_cancellable(problem, source, config, &CancelToken::unlimited())
}

/// [`check_source_with_lint`] under a cooperative [`CancelToken`].
pub fn check_source_cancellable(
    problem: &Problem,
    source: &str,
    config: SimConfig,
    cancel: &CancelToken,
) -> (CheckOutcome, Option<LintCounts>) {
    // Compile check: the DUT alone must parse and elaborate.
    let file = match vgen_verilog::parse_with_cancel(source, cancel) {
        Ok(f) => f,
        Err(e) if e.cancelled => return (CheckOutcome::Timeout(TimeoutKind::Soft), None),
        Err(e) => return (CheckOutcome::CompileFail(e.to_string()), None),
    };
    // Lint stage: every parsed candidate gets tallies, so "compiled but
    // hazardous" and even "unelaboratable but racy" both leave a trace.
    let lint = Some(LintCounts::from_report(&vgen_lint::lint_file(&file)));
    let outcome = check_parsed(problem, source, &file, config, cancel);
    (outcome, lint)
}

/// The elaborate + simulate stages, after parse and lint.
fn check_parsed(
    problem: &Problem,
    source: &str,
    file: &vgen_verilog::ast::SourceFile,
    config: SimConfig,
    cancel: &CancelToken,
) -> CheckOutcome {
    if file.module(problem.module_name).is_none() {
        return CheckOutcome::CompileFail(format!(
            "completion does not define module `{}`",
            problem.module_name
        ));
    }
    match vgen_sim::elab::elaborate_with_cancel(file, problem.module_name, cancel) {
        Err(e) if e.cancelled => return CheckOutcome::Timeout(TimeoutKind::Soft),
        Err(e) => return CheckOutcome::CompileFail(e.to_string()),
        Ok(_) => {}
    }
    // Functional check: simulate DUT + testbench.
    let full = format!("{source}\n{}", problem.testbench);
    match vgen_sim::simulate_with_cancel(&full, Some("tb"), config, cancel) {
        Ok(out) => {
            if !out.reason.is_clean() {
                return match out.reason {
                    StopReason::Cancelled => CheckOutcome::Timeout(TimeoutKind::Soft),
                    StopReason::RuntimeError(m) => CheckOutcome::SimulationFail(m),
                    other => CheckOutcome::SimulationFail(format!("{other:?}")),
                };
            }
            if out.stdout.contains(PASS_MARKER) {
                CheckOutcome::Pass
            } else {
                CheckOutcome::FunctionalFail
            }
        }
        Err(vgen_sim::SimError::Parse(e)) if e.cancelled => {
            CheckOutcome::Timeout(TimeoutKind::Soft)
        }
        Err(vgen_sim::SimError::Elab(e)) if e.cancelled => CheckOutcome::Timeout(TimeoutKind::Soft),
        Err(e) => CheckOutcome::CompileFail(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_problems::problems;

    fn p(id: u8) -> &'static Problem {
        vgen_problems::problem(id).expect("problem id")
    }

    #[test]
    fn reference_bodies_pass() {
        for prob in problems() {
            let r = check_completion(
                prob,
                PromptLevel::Low,
                prob.reference_body,
                SimConfig::default(),
            );
            assert_eq!(
                r.outcome,
                CheckOutcome::Pass,
                "problem {} reference must pass",
                prob.id
            );
        }
    }

    #[test]
    fn garbage_fails_compile() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "assign y = a &;&& b\nendmodule",
            SimConfig::default(),
        );
        assert!(matches!(r.outcome, CheckOutcome::CompileFail(_)));
        assert!(!r.outcome.compiled());
    }

    #[test]
    fn wrong_logic_fails_functionally() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "assign y = a | b;\nendmodule",
            SimConfig::default(),
        );
        assert_eq!(r.outcome, CheckOutcome::FunctionalFail);
        assert!(r.outcome.compiled());
        assert!(!r.outcome.passed());
    }

    #[test]
    fn empty_body_compiles_but_fails() {
        let r = check_completion(p(2), PromptLevel::Low, "endmodule", SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::FunctionalFail);
    }

    #[test]
    fn full_source_completion_detected() {
        let full = p(2).reference_source();
        let r = check_completion(p(2), PromptLevel::High, &full, SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::Pass);
        // Source must not contain a duplicated module header.
        assert_eq!(r.source.matches("module and_gate").count(), 1);
    }

    #[test]
    fn full_source_with_leading_comments_detected() {
        let full = format!("// a chatty preamble\n\n{}", p(2).reference_source());
        let r = check_completion(p(2), PromptLevel::Low, &full, SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::Pass);
    }

    #[test]
    fn trailing_junk_is_truncated() {
        let with_junk = format!(
            "{}\nmodule scratch(input unused_x);\nendmodule\n",
            p(2).reference_source()
        );
        let r = check_completion(p(2), PromptLevel::Low, &with_junk, SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::Pass);
        assert!(!r.source.contains("scratch"));
    }

    #[test]
    fn module_prefixed_identifier_is_not_full_source() {
        // `module_helper ...` shares a prefix with the `module` keyword but
        // is an identifier; the completion must be treated as a body and
        // appended to the prompt, not mistaken for a whole module.
        let completion = "module_helper u0(y, a, b);\nendmodule";
        let src = assemble(p(2), PromptLevel::Low, completion);
        assert!(
            src.contains("module and_gate"),
            "completion must be appended to the prompt:\n{src}"
        );
        assert!(starts_with_module_keyword("module and_gate(input a);"));
        assert!(starts_with_module_keyword("  module m;"));
        assert!(!starts_with_module_keyword("module_helper u0();"));
        assert!(!starts_with_module_keyword("modulex"));
    }

    #[test]
    fn wrong_module_name_is_compile_fail() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "module wrong_name(input a, output y); assign y = a; endmodule",
            SimConfig::default(),
        );
        assert!(matches!(r.outcome, CheckOutcome::CompileFail(_)));
    }

    #[test]
    fn clean_pass_has_clean_lint() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
        );
        assert_eq!(r.outcome, CheckOutcome::Pass);
        let lint = r.lint.expect("parsed source carries lint tallies");
        assert!(lint.is_clean(), "reference-style AND gate: {lint:?}");
        assert_eq!(lint.hazard_count(), 0);
    }

    #[test]
    fn hazardous_pass_carries_lint_counts() {
        // Functionally correct (the assign drives `y` exactly like the
        // reference), but the dead side-computation reads `b` from a
        // sensitivity list that only mentions `a` — a passing candidate
        // that still lands in the hazardous bucket.
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "reg t;\nalways @(a) t = a & b;\nassign y = a & b;\nendmodule",
            SimConfig::default(),
        );
        assert_eq!(r.outcome, CheckOutcome::Pass);
        let lint = r.lint.expect("lint tallies");
        assert!(
            lint.per_rule
                .iter()
                .any(|(rule, _)| *rule == vgen_lint::Rule::IncompleteSensitivity),
            "expected incomplete-sensitivity: {lint:?}"
        );
        assert!(lint.hazard_count() > 0);
    }

    #[test]
    fn unparsable_source_has_no_lint() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "assign y = a &;&& b\nendmodule",
            SimConfig::default(),
        );
        assert!(matches!(r.outcome, CheckOutcome::CompileFail(_)));
        assert_eq!(r.lint, None);
    }

    #[test]
    fn compile_fail_after_parse_still_lints() {
        // Parses, but defines the wrong module name: the lint stage still
        // ran over the AST.
        let (outcome, lint) = check_source_with_lint(
            p(2),
            "module wrong_name(input a, output y);\nassign y = a;\nendmodule",
            SimConfig::default(),
        );
        assert!(matches!(outcome, CheckOutcome::CompileFail(_)));
        assert!(lint.is_some());
    }

    #[test]
    fn lint_counts_journal_field_roundtrip() {
        let cases = [
            LintCounts::default(),
            LintCounts {
                errors: 2,
                warnings: 1,
                per_rule: vec![(Rule::MultiDrivenNet, 2), (Rule::IncompleteSensitivity, 1)],
            },
        ];
        for c in cases {
            let field = c.to_journal_field();
            assert!(!field.contains(','), "journal field must stay comma-free");
            assert_eq!(LintCounts::from_journal_field(&field), Some(c));
        }
        // Malformed pieces: garbage, torn sums, unknown rules, bad order.
        for bad in [
            "",
            "x:0",
            "1:0", // totals claim 1, rules claim 0
            "0:1:unknown-rule=1",
            "0:2:unused-signal=1|inferred-latch=1", // out of canonical order
            "0:1:unused-signal=0",
            "1:0:multi-driven-net=1|multi-driven-net=1",
        ] {
            assert_eq!(
                LintCounts::from_journal_field(bad),
                None,
                "accepted `{bad}`"
            );
        }
    }

    #[test]
    fn hang_is_simulation_fail() {
        // An always block with no event control spins forever within t=0.
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "reg spin;\nalways spin = ~spin;\nassign y = a & b;\nendmodule",
            SimConfig::default()
                .with_max_time(1000)
                .with_max_steps(50_000),
        );
        assert!(
            matches!(r.outcome, CheckOutcome::SimulationFail(_)),
            "got {:?}",
            r.outcome
        );
    }
}
