//! Candidate checking: truncation, assembly, compile check, functional
//! check (paper Fig. 1 step ⑧).

use vgen_problems::{Problem, PromptLevel, PASS_MARKER};
use vgen_sim::{SimConfig, StopReason};
use vgen_verilog::truncate::{assemble_candidate, truncate_completion};

/// Why a candidate failed (or that it didn't).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Compiled and passed the testbench.
    Pass,
    /// Compiled but the testbench reported errors or never printed the
    /// pass marker.
    FunctionalFail,
    /// Compiled but simulation ended abnormally (hang, runtime error).
    SimulationFail(String),
    /// Failed to parse or elaborate.
    CompileFail(String),
    /// The checking harness itself panicked — a bug in the harness, not a
    /// property of the candidate. See [`crate::guard`].
    HarnessFault(String),
}

impl CheckOutcome {
    /// Whether the candidate compiled. A harness fault tells us nothing
    /// about the candidate, so it does not count as compiled.
    pub fn compiled(&self) -> bool {
        !matches!(
            self,
            CheckOutcome::CompileFail(_) | CheckOutcome::HarnessFault(_)
        )
    }

    /// Whether the candidate is functionally correct.
    pub fn passed(&self) -> bool {
        matches!(self, CheckOutcome::Pass)
    }
}

/// The result of checking one completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Outcome classification.
    pub outcome: CheckOutcome,
    /// The assembled candidate source that was checked.
    pub source: String,
}

/// Assembles a raw completion into a full candidate source.
///
/// Completions from the paper's flow are module *bodies* appended to the
/// prompt (after truncation at `endmodule`). The calibrated family engine
/// instead emits whole modules; those are detected by their leading
/// `module` keyword and used directly (after the same truncation).
pub fn assemble(problem: &Problem, level: PromptLevel, completion: &str) -> String {
    let trimmed = completion.trim_start();
    // Skip leading comment lines when detecting full-source completions.
    let mut rest = trimmed;
    while let Some(line_end) = rest.find('\n') {
        let line = rest[..line_end].trim_start();
        if line.starts_with("//") || line.is_empty() {
            rest = &rest[line_end + 1..];
        } else {
            break;
        }
    }
    if starts_with_module_keyword(rest) {
        truncate_completion(trimmed).to_string()
    } else {
        assemble_candidate(problem.prompt(level), completion)
    }
}

/// Whether `s` (after leading whitespace) begins with the `module` keyword
/// proper — not an identifier such as `module_helper` that merely shares
/// the prefix.
fn starts_with_module_keyword(s: &str) -> bool {
    match s.trim_start().strip_prefix("module") {
        Some(rest) => !matches!(
            rest.chars().next(),
            Some(c) if c.is_alphanumeric() || c == '_' || c == '$'
        ),
        None => false,
    }
}

/// Checks one completion end to end: assemble, compile (parse +
/// elaborate), then simulate against the problem's testbench.
pub fn check_completion(
    problem: &Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
) -> CheckResult {
    let source = assemble(problem, level, completion);
    let outcome = check_source(problem, &source, config);
    CheckResult { outcome, source }
}

/// Checks an already-assembled candidate source.
pub fn check_source(problem: &Problem, source: &str, config: SimConfig) -> CheckOutcome {
    // Compile check: the DUT alone must parse and elaborate.
    let file = match vgen_verilog::parse(source) {
        Ok(f) => f,
        Err(e) => return CheckOutcome::CompileFail(e.to_string()),
    };
    if file.module(problem.module_name).is_none() {
        return CheckOutcome::CompileFail(format!(
            "completion does not define module `{}`",
            problem.module_name
        ));
    }
    if let Err(e) = vgen_sim::elab::elaborate(&file, problem.module_name) {
        return CheckOutcome::CompileFail(e.to_string());
    }
    // Functional check: simulate DUT + testbench.
    let full = format!("{source}\n{}", problem.testbench);
    match vgen_sim::simulate(&full, Some("tb"), config) {
        Ok(out) => {
            if !out.reason.is_clean() {
                return CheckOutcome::SimulationFail(match out.reason {
                    StopReason::RuntimeError(m) => m,
                    other => format!("{other:?}"),
                });
            }
            if out.stdout.contains(PASS_MARKER) {
                CheckOutcome::Pass
            } else {
                CheckOutcome::FunctionalFail
            }
        }
        Err(e) => CheckOutcome::CompileFail(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_problems::problems;

    fn p(id: u8) -> &'static Problem {
        vgen_problems::problem(id).expect("problem id")
    }

    #[test]
    fn reference_bodies_pass() {
        for prob in problems() {
            let r = check_completion(
                prob,
                PromptLevel::Low,
                prob.reference_body,
                SimConfig::default(),
            );
            assert_eq!(
                r.outcome,
                CheckOutcome::Pass,
                "problem {} reference must pass",
                prob.id
            );
        }
    }

    #[test]
    fn garbage_fails_compile() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "assign y = a &;&& b\nendmodule",
            SimConfig::default(),
        );
        assert!(matches!(r.outcome, CheckOutcome::CompileFail(_)));
        assert!(!r.outcome.compiled());
    }

    #[test]
    fn wrong_logic_fails_functionally() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "assign y = a | b;\nendmodule",
            SimConfig::default(),
        );
        assert_eq!(r.outcome, CheckOutcome::FunctionalFail);
        assert!(r.outcome.compiled());
        assert!(!r.outcome.passed());
    }

    #[test]
    fn empty_body_compiles_but_fails() {
        let r = check_completion(p(2), PromptLevel::Low, "endmodule", SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::FunctionalFail);
    }

    #[test]
    fn full_source_completion_detected() {
        let full = p(2).reference_source();
        let r = check_completion(p(2), PromptLevel::High, &full, SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::Pass);
        // Source must not contain a duplicated module header.
        assert_eq!(r.source.matches("module and_gate").count(), 1);
    }

    #[test]
    fn full_source_with_leading_comments_detected() {
        let full = format!("// a chatty preamble\n\n{}", p(2).reference_source());
        let r = check_completion(p(2), PromptLevel::Low, &full, SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::Pass);
    }

    #[test]
    fn trailing_junk_is_truncated() {
        let with_junk = format!(
            "{}\nmodule scratch(input unused_x);\nendmodule\n",
            p(2).reference_source()
        );
        let r = check_completion(p(2), PromptLevel::Low, &with_junk, SimConfig::default());
        assert_eq!(r.outcome, CheckOutcome::Pass);
        assert!(!r.source.contains("scratch"));
    }

    #[test]
    fn module_prefixed_identifier_is_not_full_source() {
        // `module_helper ...` shares a prefix with the `module` keyword but
        // is an identifier; the completion must be treated as a body and
        // appended to the prompt, not mistaken for a whole module.
        let completion = "module_helper u0(y, a, b);\nendmodule";
        let src = assemble(p(2), PromptLevel::Low, completion);
        assert!(
            src.contains("module and_gate"),
            "completion must be appended to the prompt:\n{src}"
        );
        assert!(starts_with_module_keyword("module and_gate(input a);"));
        assert!(starts_with_module_keyword("  module m;"));
        assert!(!starts_with_module_keyword("module_helper u0();"));
        assert!(!starts_with_module_keyword("modulex"));
    }

    #[test]
    fn wrong_module_name_is_compile_fail() {
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "module wrong_name(input a, output y); assign y = a; endmodule",
            SimConfig::default(),
        );
        assert!(matches!(r.outcome, CheckOutcome::CompileFail(_)));
    }

    #[test]
    fn hang_is_simulation_fail() {
        // An always block with no event control spins forever within t=0.
        let r = check_completion(
            p(2),
            PromptLevel::Low,
            "reg spin;\nalways spin = ~spin;\nassign y = a & b;\nendmodule",
            SimConfig::default()
                .with_max_time(1000)
                .with_max_steps(50_000),
        );
        assert!(
            matches!(r.outcome, CheckOutcome::SimulationFail(_)),
            "got {:?}",
            r.outcome
        );
    }
}
