//! # vgen-core
//!
//! The VGen evaluation framework — the paper's primary contribution: an
//! automated pipeline that takes LLM completions for the 17-problem Verilog
//! benchmark, truncates/assembles them (§IV), checks compilation (parse +
//! elaborate, standing in for `iverilog`), simulates them against
//! hand-written testbenches, and reports Pass@(scenario·n) across the
//! temperature / completions / prompt-detail grid of §IV-B.
//!
//! ```
//! use vgen_core::check::{check_completion, CheckOutcome};
//! use vgen_problems::{problem, PromptLevel};
//! use vgen_sim::SimConfig;
//!
//! let and_gate = problem(2).expect("problem 2 exists");
//! let result = check_completion(
//!     and_gate,
//!     PromptLevel::Low,
//!     "assign y = a & b;\nendmodule",
//!     SimConfig::default(),
//! );
//! assert_eq!(result.outcome, CheckOutcome::Pass);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod check;
pub mod experiments;
pub mod guard;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod sweep;
pub mod synthcheck;

pub use chaos::{ChaosSite, ChaosSpec};
pub use check::{check_completion, CheckOutcome, CheckResult, FaultKind, TimeoutKind};
pub use experiments::{evaluate_all_models, evaluate_model};
pub use guard::{
    catch_harness_fault, guarded_check_completion, supervised_check_completion, CheckPolicy,
};
pub use metrics::{pass_at_k, pass_fraction, Tally};
pub use pool::{ReorderBuffer, WorkerPool};
pub use report::{
    headline_stats, render_eval_summary, render_fault_summary, sweep_stats_json, Headline, ModelRun,
};
pub use sweep::{
    config_fingerprint, journal_header, read_journal, read_journal_recovering, run_engine,
    run_engine_journaled, run_engine_parallel, run_engine_sweep, run_engine_sweep_sharded,
    run_engine_sweep_stats, EvalConfig, EvalRun, FsyncPolicy, Record, RecordObserver,
    RecoveryReport, ShardSpec, SweepHooks, SweepOptions, SweepStats,
};
