//! Seeded, deterministic fault injection for the checking pipeline.
//!
//! A [`ChaosSpec`] names *failpoint sites* (in the guard, the worker pool
//! and the journal writer) and, per site, a firing rate. Whether a given
//! site fires for a given piece of work is a pure function of
//! `(seed, site, content key)` — the key is canonical content (the
//! completion text, the journal line, the work item's position in the
//! deterministic generation order), **never** a process-local occurrence
//! counter or a clock. That choice is what makes chaos testing composable
//! with the sweep's determinism guarantees:
//!
//! * the same faults fire at `--jobs 1` and `--jobs 8`, whatever order the
//!   pool schedules work in;
//! * a killed-and-resumed sweep re-fires exactly the faults the dead
//!   process would have hit, so the final report is byte-identical to an
//!   uninterrupted run;
//! * injected timeouts are synthesized without reading any clock, so even
//!   a chaos run's report is reproducible — unlike real wall-clock
//!   timeouts, which are inherently nondeterministic (see `DESIGN.md`).
//!
//! Specs are written `site[:param]%denominator`, semicolon-separated:
//! `check.panic%17;check.timeout:1%5;journal.torn:20%31` fires an injected
//! checker panic for ~1/17 of completions, a synthetic soft timeout on
//! attempt 0 (healing on retry) for ~1/5, and tears a journal write down
//! to its first 20 bytes for ~1/31 of records.

use std::fmt;
use std::sync::Arc;

/// A failpoint site in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// Inside the checker thread, before the real check runs: `panic!` —
    /// exercises the [`crate::guard`] panic path. Keyed by completion.
    CheckPanic,
    /// In the guard, before spawning the checker: synthesize a
    /// [`CheckOutcome::Timeout`](crate::check::CheckOutcome::Timeout)
    /// (soft) without running anything or reading a clock. Keyed by
    /// completion; the rule's `param` is an *attempt ceiling* — the fault
    /// fires only on attempts `< param` (0 means every attempt), so
    /// `check.timeout:1%5` heals on first retry while `check.timeout%5`
    /// persists through all retries.
    CheckTimeout,
    /// Inside the checker thread: sleep `param` milliseconds before
    /// checking — a *real* stall that exercises the watchdog's hard-timeout
    /// detach path. Keyed by completion. (Wall-clock: only for tests that
    /// accept nondeterministic latency, never for byte-compare CI.)
    CheckDelayMs,
    /// In the sweep's worker-pool task wrapper, outside the guard —
    /// exercises the pool-plumbing fault path. Keyed by the item's
    /// deterministic position.
    TaskPanic,
    /// In the journal writer: write only the first `param` bytes of the
    /// record line (no newline, fsync'd) and fail the writer — a torn
    /// write followed by a crash, exercising journal recovery. Keyed by
    /// the record line.
    JournalTorn,
}

impl ChaosSite {
    /// Stable one-byte tag mixed into the firing hash.
    fn tag(self) -> u8 {
        match self {
            ChaosSite::CheckPanic => 1,
            ChaosSite::CheckTimeout => 2,
            ChaosSite::CheckDelayMs => 3,
            ChaosSite::TaskPanic => 4,
            ChaosSite::JournalTorn => 5,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ChaosSite::CheckPanic => "check.panic",
            ChaosSite::CheckTimeout => "check.timeout",
            ChaosSite::CheckDelayMs => "check.delay",
            ChaosSite::TaskPanic => "task.panic",
            ChaosSite::JournalTorn => "journal.torn",
        }
    }

    fn from_name(s: &str) -> Option<ChaosSite> {
        match s {
            "check.panic" => Some(ChaosSite::CheckPanic),
            "check.timeout" => Some(ChaosSite::CheckTimeout),
            "check.delay" => Some(ChaosSite::CheckDelayMs),
            "task.panic" => Some(ChaosSite::TaskPanic),
            "journal.torn" => Some(ChaosSite::JournalTorn),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChaosRule {
    site: ChaosSite,
    /// Site-specific parameter (delay ms, torn-prefix bytes, attempt
    /// ceiling); 0 when the site takes none.
    param: u64,
    /// The rule fires when `hash(seed, site, key) % denom == 0`.
    denom: u64,
}

/// A parsed, seeded chaos configuration. Empty (the [`Default`]) means no
/// injection anywhere; every lookup is then a slice-len check.
///
/// Cloning is cheap — the rule list is shared.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    seed: u64,
    rules: Arc<[ChaosRule]>,
}

impl ChaosSpec {
    /// Parses a `site[:param]%denom;...` spec under `seed`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry for
    /// unknown sites, missing/zero denominators, or malformed numbers.
    pub fn parse(spec: &str, seed: u64) -> Result<ChaosSpec, String> {
        let mut rules = Vec::new();
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (head, denom) = entry
                .split_once('%')
                .ok_or_else(|| format!("chaos entry `{entry}` is missing `%denominator`"))?;
            let denom: u64 = denom
                .parse()
                .map_err(|_| format!("chaos entry `{entry}`: bad denominator `{denom}`"))?;
            if denom == 0 {
                return Err(format!("chaos entry `{entry}`: denominator must be >= 1"));
            }
            let (name, param) = match head.split_once(':') {
                Some((n, p)) => (
                    n,
                    p.parse::<u64>()
                        .map_err(|_| format!("chaos entry `{entry}`: bad parameter `{p}`"))?,
                ),
                None => (head, 0),
            };
            let site = ChaosSite::from_name(name)
                .ok_or_else(|| format!("chaos entry `{entry}`: unknown site `{name}`"))?;
            if site == ChaosSite::CheckDelayMs && param == 0 {
                return Err(format!(
                    "chaos entry `{entry}`: check.delay needs `:milliseconds`"
                ));
            }
            rules.push(ChaosRule { site, param, denom });
        }
        Ok(ChaosSpec {
            seed,
            rules: rules.into(),
        })
    }

    /// Whether no rule is configured (the common, zero-cost case).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// If a rule for `site` fires on `key`, returns that rule's parameter.
    ///
    /// Pure in `(self, site, key)`: no clocks, no counters, no globals —
    /// the property every chaos determinism test rests on.
    pub fn fires(&self, site: ChaosSite, key: &[u8]) -> Option<u64> {
        self.rules
            .iter()
            .filter(|r| r.site == site)
            .find(|r| self.hash(site, key).is_multiple_of(r.denom))
            .map(|r| r.param)
    }

    /// [`fires`](Self::fires) for [`ChaosSite::CheckTimeout`], applying the
    /// rule's attempt-ceiling parameter: a rule with `param == 0` fires on
    /// every attempt, otherwise only on attempts below `param`.
    pub fn fires_check_timeout(&self, key: &[u8], attempt: u32) -> bool {
        self.rules
            .iter()
            .filter(|r| r.site == ChaosSite::CheckTimeout)
            .any(|r| {
                (r.param == 0 || u64::from(attempt) < r.param)
                    && self
                        .hash(ChaosSite::CheckTimeout, key)
                        .is_multiple_of(r.denom)
            })
    }

    fn hash(&self, site: ChaosSite, key: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.seed.to_le_bytes() {
            mix(b);
        }
        mix(site.tag());
        for &b in key {
            mix(b);
        }
        h
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for r in self.rules.iter() {
            if !first {
                f.write_str(";")?;
            }
            first = false;
            if r.param != 0 {
                write!(f, "{}:{}%{}", r.site.name(), r.param, r.denom)?;
            } else {
                write!(f, "{}%{}", r.site.name(), r.denom)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_never_fires() {
        let spec = ChaosSpec::default();
        assert!(spec.is_empty());
        assert_eq!(spec.fires(ChaosSite::CheckPanic, b"anything"), None);
        assert!(!spec.fires_check_timeout(b"anything", 0));
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let spec =
            ChaosSpec::parse("check.panic%17;check.timeout:1%5;journal.torn:20%31", 7).unwrap();
        assert_eq!(
            spec.to_string(),
            "check.panic%17;check.timeout:1%5;journal.torn:20%31"
        );
        let again = ChaosSpec::parse(&spec.to_string(), 7).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "check.panic",       // no denominator
            "check.panic%0",     // zero denominator
            "check.panic%x",     // bad denominator
            "no.such.site%3",    // unknown site
            "check.delay%3",     // delay without ms
            "check.delay:abc%3", // bad param
        ] {
            assert!(ChaosSpec::parse(bad, 0).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn denom_one_always_fires() {
        let spec = ChaosSpec::parse("check.panic%1", 3).unwrap();
        for key in [&b"a"[..], b"b", b"completely different"] {
            assert_eq!(spec.fires(ChaosSite::CheckPanic, key), Some(0));
        }
        // ...but only at its own site.
        assert_eq!(spec.fires(ChaosSite::TaskPanic, b"a"), None);
    }

    #[test]
    fn firing_is_content_keyed_and_seed_sensitive() {
        let spec = ChaosSpec::parse("check.panic%3", 42).unwrap();
        let keys: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        let fired: Vec<bool> = keys
            .iter()
            .map(|k| spec.fires(ChaosSite::CheckPanic, k).is_some())
            .collect();
        // Same spec, same keys => identical decisions (pure function).
        let again: Vec<bool> = keys
            .iter()
            .map(|k| spec.fires(ChaosSite::CheckPanic, k).is_some())
            .collect();
        assert_eq!(fired, again);
        // Roughly 1/3 fire; certainly some and not all.
        let n = fired.iter().filter(|&&b| b).count();
        assert!(n > 40 && n < 260, "fired {n}/300");
        // A different seed flips some decisions.
        let other = ChaosSpec::parse("check.panic%3", 43).unwrap();
        assert!(keys
            .iter()
            .any(|k| other.fires(ChaosSite::CheckPanic, k).is_some()
                != spec.fires(ChaosSite::CheckPanic, k).is_some()));
    }

    #[test]
    fn attempt_ceiling_limits_timeout_injection() {
        // denom 1 => fires for every key; ceiling 1 => attempt 0 only.
        let heal = ChaosSpec::parse("check.timeout:1%1", 0).unwrap();
        assert!(heal.fires_check_timeout(b"k", 0));
        assert!(!heal.fires_check_timeout(b"k", 1));
        // ceiling 0 => persistent across attempts.
        let persist = ChaosSpec::parse("check.timeout%1", 0).unwrap();
        assert!(persist.fires_check_timeout(b"k", 0));
        assert!(persist.fires_check_timeout(b"k", 7));
    }
}
