//! A hand-rolled work-stealing thread pool and the deterministic reorder
//! buffer that turns its out-of-order results back into canonical order.
//!
//! The evaluation sweep ([`crate::sweep`]) flattens its scenario grid into
//! thousands of independent compile+simulate checks. This module executes
//! them on N workers without any external dependency (the build
//! environment has no crates.io access, so no `rayon`/`crossbeam`):
//!
//! * **Shared injector** — submitted tasks land in a global FIFO.
//! * **Per-worker deques** — each worker refills its local deque from the
//!   injector in batches (amortising injector-lock traffic) and pops work
//!   from the front of its own deque.
//! * **Stealing** — a worker whose deque and the injector are both empty
//!   steals from the *back* of a sibling's deque, so stragglers (one slow
//!   hostile completion) don't leave the rest of the pool idle.
//! * **Parking** — idle workers block on a condvar; submission and
//!   shutdown notify it. Waits use a timeout so a steal opportunity that
//!   arises without a submission (a sibling refilling its deque) is never
//!   missed for long.
//! * **Panic isolation** — each task runs under
//!   [`catch_harness_fault`](crate::guard::catch_harness_fault), the same
//!   machinery that guards individual checks, so a panicking task yields
//!   an `Err(message)` result instead of killing its worker (and silently
//!   losing every task still queued on that worker's deque).
//!
//! Results are delivered over a channel as `(index, Result<R, String>)`
//! pairs in *completion* order; [`ReorderBuffer`] restores submission
//! order so downstream consumers (journal writer, report aggregation) see
//! a byte-identical stream regardless of worker count or scheduling.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::guard::catch_harness_fault;

/// A unit of work: produces an `R`, tagged with its submission index.
type Task<R> = Box<dyn FnOnce() -> R + Send + 'static>;

/// A deque of indexed tasks, guarded for cross-thread access.
type TaskDeque<R> = Mutex<VecDeque<(usize, Task<R>)>>;

/// How many tasks a worker moves from the injector to its own deque per
/// refill (at most; the injector is split fairly when it holds fewer).
const REFILL_BATCH: usize = 8;

/// Idle-worker park timeout. A net under the condvar: steal opportunities
/// created *without* a submission (a sibling refilling its local deque)
/// are discovered at worst one timeout later even if a wakeup is missed.
const PARK_TIMEOUT: Duration = Duration::from_millis(20);

/// Locks a mutex, ignoring poisoning: pool state stays usable even if a
/// thread panicked while holding the lock (tasks themselves are run under
/// [`catch_harness_fault`], so this is belt and braces).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// State shared between the pool handle and its workers.
struct Shared<R> {
    /// Global FIFO of submitted tasks.
    injector: TaskDeque<R>,
    /// Per-worker deques. Owner pops the front; thieves pop the back.
    locals: Vec<TaskDeque<R>>,
    /// Parking lot for idle workers.
    park: Mutex<()>,
    /// Notified on submission, refill and shutdown.
    wake: Condvar,
    /// Set once by [`WorkerPool::shutdown`] (or drop); workers drain all
    /// remaining work and then exit.
    shutdown: AtomicBool,
}

impl<R> Shared<R> {
    /// Whether any queue (injector or local deque) still holds a task.
    fn has_work(&self) -> bool {
        if !lock_unpoisoned(&self.injector).is_empty() {
            return true;
        }
        self.locals.iter().any(|l| !lock_unpoisoned(l).is_empty())
    }
}

/// A fixed-size work-stealing pool producing `(index, Result<R, String>)`
/// results. `Err` carries the panic message of a task that faulted.
pub struct WorkerPool<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    workers: Vec<JoinHandle<()>>,
    results: Receiver<(usize, Result<R, String>)>,
}

impl<R: Send + 'static> WorkerPool<R> {
    /// Spawns a pool with `workers` worker threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let (tx, rx) = channel();
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let tx: Sender<(usize, Result<R, String>)> = tx.clone();
                std::thread::Builder::new()
                    .name(format!("vgen-pool-{id}"))
                    .spawn(move || worker_loop(id, &shared, &tx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            results: rx,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits a task tagged with `index`. Tasks may complete in any
    /// order; feed results through a [`ReorderBuffer`] keyed on `index`
    /// to restore submission order.
    pub fn submit(&self, index: usize, task: impl FnOnce() -> R + Send + 'static) {
        lock_unpoisoned(&self.shared.injector).push_back((index, Box::new(task)));
        // Notify under the park lock so a worker between its has_work
        // re-check and its wait can never miss this submission.
        let _guard = lock_unpoisoned(&self.shared.park);
        self.shared.wake.notify_all();
    }

    /// Receives the next completed result, waiting up to `timeout`.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<(usize, Result<R, String>), RecvTimeoutError> {
        self.results.recv_timeout(timeout)
    }

    /// Signals shutdown and joins every worker. Queued tasks are drained
    /// (and their results delivered) before workers exit; callers that
    /// only want completed work should receive all expected results
    /// first.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    /// Signals shutdown and *abandons* the workers: every join handle is
    /// dropped without joining. This is the sweep's stall-degradation
    /// escape hatch — when at least one worker is known to be wedged in a
    /// hard-hung check, joining (as [`WorkerPool::shutdown`] and `Drop`
    /// do) would block forever. Healthy workers still drain their queues
    /// and exit on their own; the wedged thread is leaked.
    pub fn detach(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = lock_unpoisoned(&self.shared.park);
            self.shared.wake.notify_all();
        }
        vgen_obs::counter_add("pool.detach", 1);
        // Dropping the handles detaches the threads; Drop then finds an
        // empty worker list and joins nothing.
        self.workers.drain(..).for_each(drop);
    }

    /// Cancellation teardown: discards every queued-but-unstarted task,
    /// signals shutdown, and abandons the workers without joining. Unlike
    /// [`WorkerPool::detach`] (which lets healthy workers drain their
    /// queues), this clears the injector and every local deque first, so
    /// a cancelled sweep stops burning CPU after at most the tasks
    /// already in flight. In-flight results sent after the handle is
    /// dropped land on a closed channel and are discarded by the workers.
    pub fn abort(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        lock_unpoisoned(&self.shared.injector).clear();
        for local in self.shared.locals.iter() {
            lock_unpoisoned(local).clear();
        }
        {
            let _guard = lock_unpoisoned(&self.shared.park);
            self.shared.wake.notify_all();
        }
        vgen_obs::counter_add("pool.abort", 1);
        self.workers.drain(..).for_each(drop);
    }

    fn shutdown_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            // Pairing the notify with the park lock closes the window
            // where a worker checks the flag and parks just before the
            // store becomes visible.
            let _guard = lock_unpoisoned(&self.shared.park);
            self.shared.wake.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<R: Send + 'static> Drop for WorkerPool<R> {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Finds the next task for worker `id`: own deque front, then an injector
/// refill, then a steal from a sibling's back.
fn find_task<R>(id: usize, shared: &Shared<R>) -> Option<(usize, Task<R>)> {
    if let Some(t) = lock_unpoisoned(&shared.locals[id]).pop_front() {
        return Some(t);
    }
    if let Some(t) = refill_from_injector(id, shared) {
        return Some(t);
    }
    steal(id, shared)
}

/// Moves up to [`REFILL_BATCH`] tasks from the injector into worker
/// `id`'s deque, returning the first. When more than one task was moved,
/// parked siblings are woken so they can steal the surplus.
fn refill_from_injector<R>(id: usize, shared: &Shared<R>) -> Option<(usize, Task<R>)> {
    let mut batch = {
        let mut injector = lock_unpoisoned(&shared.injector);
        let take = REFILL_BATCH.min(injector.len());
        injector.drain(..take).collect::<VecDeque<_>>()
    };
    let first = batch.pop_front()?;
    vgen_obs::counter_add("pool.refill", 1);
    if !batch.is_empty() {
        lock_unpoisoned(&shared.locals[id]).extend(batch);
        shared.wake.notify_all();
    }
    Some(first)
}

/// Steals one task from the back of another worker's deque, scanning
/// victims starting after `id` so contention spreads across the pool.
fn steal<R>(id: usize, shared: &Shared<R>) -> Option<(usize, Task<R>)> {
    let n = shared.locals.len();
    for off in 1..n {
        let victim = (id + off) % n;
        if let Some(t) = lock_unpoisoned(&shared.locals[victim]).pop_back() {
            vgen_obs::counter_add("pool.steal", 1);
            return Some(t);
        }
    }
    None
}

/// Worker main loop: run tasks until shutdown is signalled *and* every
/// queue is drained.
fn worker_loop<R: Send>(
    id: usize,
    shared: &Shared<R>,
    results: &Sender<(usize, Result<R, String>)>,
) {
    loop {
        if let Some((index, task)) = find_task(id, shared) {
            vgen_obs::counter_add("pool.task", 1);
            // catch_harness_fault keeps a panicking task from killing the
            // worker (which would strand everything left on its deque)
            // and suppresses the default panic report, exactly as for
            // guarded checks.
            let outcome = catch_harness_fault(task);
            // A closed channel means the pool handle is gone; keep
            // draining so sibling state stays consistent.
            let _ = results.send((index, outcome));
            continue;
        }
        let guard = lock_unpoisoned(&shared.park);
        // Re-check under the park lock: a submit/refill between our last
        // scan and taking the lock would otherwise have its notification
        // missed.
        if shared.has_work() {
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = shared.wake.wait_timeout(guard, PARK_TIMEOUT);
    }
}

/// Restores submission order over an out-of-order result stream.
///
/// Results tagged `start, start+1, start+2, …` are pushed as they arrive;
/// [`pop_ready`](ReorderBuffer::pop_ready) yields them strictly in index
/// order, holding back anything whose predecessors are still outstanding.
/// This is what makes a parallel sweep's journal lines and report bytes
/// independent of worker count and completion order.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    next: usize,
    pending: BTreeMap<usize, T>,
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer expecting `start` as the first index.
    pub fn new(start: usize) -> Self {
        ReorderBuffer {
            next: start,
            pending: BTreeMap::new(),
        }
    }

    /// Inserts a completed result.
    ///
    /// # Panics
    ///
    /// On an index that was already emitted or is already pending — a
    /// duplicated work item is a harness bug that must not silently skew
    /// aggregates.
    pub fn push(&mut self, index: usize, value: T) {
        assert!(
            index >= self.next,
            "reorder buffer: index {index} already emitted (next = {})",
            self.next
        );
        let clash = self.pending.insert(index, value).is_some();
        assert!(!clash, "reorder buffer: duplicate index {index}");
    }

    /// Removes and returns the next in-order result, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<T> {
        let value = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(value)
    }

    /// Index the next [`pop_ready`](ReorderBuffer::pop_ready) will yield.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Number of results held back waiting for predecessors.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Drains `expect` results from the pool, reordered to submission
    /// order.
    fn collect_ordered(pool: &WorkerPool<usize>, expect: usize) -> Vec<Result<usize, String>> {
        let mut rb = ReorderBuffer::new(0);
        let mut out = Vec::with_capacity(expect);
        while out.len() < expect {
            let (idx, res) = pool
                .recv_timeout(Duration::from_secs(30))
                .expect("pool result");
            rb.push(idx, res);
            while let Some(r) = rb.pop_ready() {
                out.push(r);
            }
        }
        assert_eq!(rb.pending_len(), 0);
        out
    }

    #[test]
    fn runs_all_tasks_once() {
        let pool = WorkerPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let hits = Arc::clone(&hits);
            pool.submit(i, move || {
                hits.fetch_add(1, Ordering::SeqCst);
                i * 3
            });
        }
        let out = collect_ordered(&pool, 200);
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 200);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().expect("task ok"), &(i * 3));
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        for i in 0..10 {
            pool.submit(i, move || i);
        }
        let out = collect_ordered(&pool, 10);
        assert_eq!(out.len(), 10);
        assert!(out.iter().enumerate().all(|(i, r)| r == &Ok(i)));
    }

    #[test]
    fn panicking_task_yields_error_not_dead_worker() {
        let pool = WorkerPool::new(2);
        pool.submit(0, || 1usize);
        pool.submit(1, || panic!("task exploded"));
        pool.submit(2, || 3usize);
        let out = collect_ordered(&pool, 3);
        pool.shutdown();
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Err("task exploded".to_string()));
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn uneven_task_costs_are_balanced() {
        // One long task plus many short ones: with stealing, the short
        // tasks finish on other workers while one worker is pinned.
        let pool = WorkerPool::new(4);
        pool.submit(0, || {
            std::thread::sleep(Duration::from_millis(50));
            0
        });
        for i in 1..64 {
            pool.submit(i, move || i);
        }
        let out = collect_ordered(&pool, 64);
        pool.shutdown();
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..50 {
            let hits = Arc::clone(&hits);
            pool.submit(i, move || {
                hits.fetch_add(1, Ordering::SeqCst);
                i
            });
        }
        pool.shutdown(); // drains before exiting
        assert_eq!(hits.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn reorder_buffer_restores_order() {
        let mut rb = ReorderBuffer::new(0);
        rb.push(2, "c");
        rb.push(0, "a");
        assert_eq!(rb.pop_ready(), Some("a"));
        assert_eq!(rb.pop_ready(), None); // 1 still missing
        rb.push(1, "b");
        assert_eq!(rb.pop_ready(), Some("b"));
        assert_eq!(rb.pop_ready(), Some("c"));
        assert_eq!(rb.pop_ready(), None);
        assert_eq!(rb.next_index(), 3);
    }

    #[test]
    fn reorder_buffer_honours_start_offset() {
        let mut rb = ReorderBuffer::new(5);
        rb.push(6, 60);
        assert_eq!(rb.pop_ready(), None);
        rb.push(5, 50);
        assert_eq!(rb.pop_ready(), Some(50));
        assert_eq!(rb.pop_ready(), Some(60));
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn reorder_buffer_rejects_duplicates() {
        let mut rb = ReorderBuffer::new(0);
        rb.push(1, ());
        rb.push(1, ());
    }

    #[test]
    #[should_panic(expected = "already emitted")]
    fn reorder_buffer_rejects_reemission() {
        let mut rb = ReorderBuffer::new(0);
        rb.push(0, ());
        let _ = rb.pop_ready();
        rb.push(0, ());
    }
}
