//! Rendering of the paper's tables and figures as aligned text and CSV.

use vgen_lm::latency::paper_mean_seconds;
use vgen_lm::registry::ModelId;
use vgen_problems::{problems, Difficulty, PromptLevel};

use crate::sweep::{EvalRun, SweepStats};

/// One evaluated model row: which model plus its measured run.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// The model identity (table row label).
    pub model: ModelId,
    /// The measured evaluation run.
    pub run: EvalRun,
}

/// Renders Table I — baseline LLM architectures.
pub fn render_table1() -> String {
    let mut out = String::from(
        "TABLE I: BASELINE LLM ARCHITECTURES\n\
         Model                Params(M)  Layers  Heads  Embed  Context  Data\n",
    );
    for family in vgen_lm::ModelFamily::ALL {
        let arch = family.architecture();
        let (layers, heads, embed, ctx) = match arch {
            Some(a) => (
                a.layers.to_string(),
                a.heads.to_string(),
                a.embed.to_string(),
                a.context_length.to_string(),
            ),
            None => ("NA".into(), "NA".into(), "NA".into(), "8000".into()),
        };
        let params = family
            .parameters_m()
            .map(|p| p.to_string())
            .unwrap_or_else(|| "NA".into());
        out.push_str(&format!(
            "{:<20} {:>9}  {:>6}  {:>5}  {:>5}  {:>7}  {}\n",
            family.name(),
            params,
            layers,
            heads,
            embed,
            ctx,
            family.pretraining_data()
        ));
    }
    out
}

/// Renders Table II — the problem set.
pub fn render_table2() -> String {
    let mut out = String::from("TABLE II: PROBLEM SET\nProb.#  Difficulty    Description\n");
    for p in problems() {
        out.push_str(&format!(
            "{:>6}  {:<12}  {}\n",
            p.id,
            p.difficulty.to_string(),
            p.name
        ));
    }
    out
}

/// Renders Table III — Pass@(scenario·n) at n = 10 for *compiled*
/// completions, best temperature per (model, difficulty).
pub fn render_table3(rows: &[ModelRun], n: usize) -> String {
    let mut out = format!(
        "TABLE III: PASS@(SCENARIO*{n}) FOR COMPILED COMPLETIONS (best t)\n\
         Model                  Type  Basic  Intermediate  Advanced\n"
    );
    for row in rows {
        let b = row.run.best_compile(Difficulty::Basic, n);
        let i = row.run.best_compile(Difficulty::Intermediate, n);
        let a = row.run.best_compile(Difficulty::Advanced, n);
        out.push_str(&format!(
            "{:<22} {:>4}  {:>5.3}  {:>12.3}  {:>8.3}\n",
            row.model.family.name(),
            row.model.tuning.tag(),
            b,
            i,
            a
        ));
    }
    out
}

/// Renders Table IV — Pass@(scenario·n) at n = 10 for completions passing
/// functional tests, per prompt level, plus inference time.
pub fn render_table4(rows: &[ModelRun], n: usize) -> String {
    let mut out = format!(
        "TABLE IV: PASS@(SCENARIO*{n}) FOR TEST-BENCH-PASSING COMPLETIONS (best t)\n\
         Model                  Type  Time(s)  | Basic  L/M/H        | Intermediate L/M/H | Advanced L/M/H\n"
    );
    for row in rows {
        let mut cells = Vec::new();
        for d in Difficulty::ALL {
            for l in PromptLevel::ALL {
                cells.push(row.run.best_functional(d, l, n));
            }
        }
        out.push_str(&format!(
            "{:<22} {:>4}  {:>7.3}  | {:.3} {:.3} {:.3}  | {:.3} {:.3} {:.3}  | {:.3} {:.3} {:.3}\n",
            row.model.family.name(),
            row.model.tuning.tag(),
            row.run.mean_latency(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5],
            cells[6],
            cells[7],
            cells[8],
        ));
    }
    out
}

/// Fig 6 (left): functional pass rate vs temperature per model.
pub fn render_fig6_temperature(rows: &[ModelRun], n: usize) -> String {
    let mut out =
        format!("FIG 6 (left): Pass@(scenario*{n}) passing test benches vs temperature\n");
    for row in rows {
        out.push_str(&format!("{:<24}", format!("{}", row.model)));
        for t in row.run.temperatures() {
            let rate = row
                .run
                .tally(|r| r.n == n && (r.temperature - t).abs() < 1e-12)
                .functional_rate();
            out.push_str(&format!("  t={t:.1}:{rate:.3}"));
        }
        out.push('\n');
    }
    out
}

/// Fig 6 (right): functional pass rate vs completions-per-prompt (at the
/// best temperature per model).
pub fn render_fig6_n(rows: &[ModelRun], ns: &[usize]) -> String {
    let mut out =
        String::from("FIG 6 (right): Pass@(scenario*n) passing test benches vs n (best t)\n");
    for row in rows {
        out.push_str(&format!("{:<24}", format!("{}", row.model)));
        for &n in ns {
            if row.run.tally(|r| r.n == n).total == 0 {
                // J1-Large does not support n = 25 (§IV-B).
                out.push_str(&format!("  n={n}:  n/a"));
                continue;
            }
            let best = row
                .run
                .temperatures()
                .into_iter()
                .map(|t| {
                    row.run
                        .tally(|r| r.n == n && (r.temperature - t).abs() < 1e-12)
                        .functional_rate()
                })
                .fold(0.0, f64::max);
            out.push_str(&format!("  n={n}:{best:.3}"));
        }
        out.push('\n');
    }
    out
}

/// Fig 7 (left): functional pass rate vs prompt description level.
pub fn render_fig7_levels(rows: &[ModelRun], n: usize) -> String {
    let mut out = format!("FIG 7 (left): Pass@(scenario*{n}) vs description level (best t)\n");
    for row in rows {
        out.push_str(&format!("{:<24}", format!("{}", row.model)));
        for l in PromptLevel::ALL {
            let best: f64 = Difficulty::ALL
                .iter()
                .map(|&d| row.run.best_functional(d, l, n))
                .sum::<f64>()
                / 3.0;
            out.push_str(&format!("  {l}:{best:.3}"));
        }
        out.push('\n');
    }
    out
}

/// Fig 7 (right): functional pass rate vs difficulty.
pub fn render_fig7_difficulty(rows: &[ModelRun], n: usize) -> String {
    let mut out = format!("FIG 7 (right): Pass@(scenario*{n}) vs difficulty (best t)\n");
    for row in rows {
        out.push_str(&format!("{:<24}", format!("{}", row.model)));
        for d in Difficulty::ALL {
            let best: f64 = PromptLevel::ALL
                .iter()
                .map(|&l| row.run.best_functional(d, l, n))
                .sum::<f64>()
                / 3.0;
            out.push_str(&format!("  {d}:{best:.3}"));
        }
        out.push('\n');
    }
    out
}

/// Headline aggregates from §VI/§VII.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Mean best compile rate over pre-trained models (§VI: 11.9%).
    pub pretrained_compile: f64,
    /// Mean best compile rate over fine-tuned models (§VI: 64.6%).
    pub finetuned_compile: f64,
    /// Mean best functional rate over pre-trained models (§VII: 1.09%).
    pub pretrained_functional: f64,
    /// Mean best functional rate over fine-tuned models (§VII: 27.0%).
    pub finetuned_functional: f64,
    /// Best fine-tuned model's overall functional rate (§VII: CodeGen-16B
    /// FT, 41.9%).
    pub best_finetuned_functional: f64,
    /// code-davinci-002's overall functional rate (§VII: 35.4%).
    pub davinci_functional: f64,
}

/// Computes the headline aggregates from a set of model runs.
pub fn headline_stats(rows: &[ModelRun], n: usize) -> Headline {
    let mean_over = |keep: &dyn Fn(&ModelRun) -> bool, compile: bool| -> f64 {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| keep(r))
            .map(|r| overall_best(r, n, compile))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let is_ft = |r: &ModelRun| r.model.tuning == vgen_lm::Tuning::FineTuned;
    // The paper's §VI/§VII pre-trained aggregates (11.9% compile, 1.09%
    // functional) cover the five fine-tunable checkpoints only — averaging
    // their Table III/IV PT rows *without* code-davinci-002 reproduces both
    // figures exactly, so the commercial model is excluded here too.
    let is_pt = |r: &ModelRun| {
        r.model.tuning == vgen_lm::Tuning::Pretrained
            && r.model.family != vgen_lm::ModelFamily::CodeDavinci002
    };
    let best_ft = rows
        .iter()
        .filter(|r| is_ft(r))
        .map(|r| overall_best(r, n, false))
        .fold(0.0, f64::max);
    let davinci = rows
        .iter()
        .find(|r| r.model.family == vgen_lm::ModelFamily::CodeDavinci002)
        .map(|r| overall_best(r, n, false))
        .unwrap_or(0.0);
    Headline {
        pretrained_compile: mean_over(&is_pt, true),
        finetuned_compile: mean_over(&is_ft, true),
        pretrained_functional: mean_over(&is_pt, false),
        finetuned_functional: mean_over(&is_ft, false),
        best_finetuned_functional: best_ft,
        davinci_functional: davinci,
    }
}

/// A model's overall best-temperature rate, averaged over the 9 scenarios
/// (difficulty × level), matching how the paper aggregates "overall".
fn overall_best(row: &ModelRun, n: usize, compile: bool) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for d in Difficulty::ALL {
        if compile {
            sum += row.run.best_compile(d, n);
            count += 1;
        } else {
            for l in PromptLevel::ALL {
                sum += row.run.best_functional(d, l, n);
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Renders the headline comparison (§VI/§VII) with the paper's values
/// alongside.
pub fn render_headline(h: &Headline) -> String {
    format!(
        "HEADLINE STATS (measured vs paper)\n\
         pre-trained compile rate:    {:.3}  (paper 0.119)\n\
         fine-tuned compile rate:     {:.3}  (paper 0.646)\n\
         pre-trained functional rate: {:.3}  (paper 0.0109)\n\
         fine-tuned functional rate:  {:.3}  (paper 0.270)\n\
         best FT functional overall:  {:.3}  (paper 0.419, CodeGen-16B FT)\n\
         code-davinci-002 overall:    {:.3}  (paper 0.354)\n",
        h.pretrained_compile,
        h.finetuned_compile,
        h.pretrained_functional,
        h.finetuned_functional,
        h.best_finetuned_functional,
        h.davinci_functional,
    )
}

/// CSV export of the per-record data (for external plotting).
pub fn records_csv(rows: &[ModelRun]) -> String {
    let mut out = String::from(
        "model,tuning,problem,difficulty,level,temperature,n,compiled,passed,fault,latency_s,\
         lint_errors,lint_warnings,lint_hazards\n",
    );
    for row in rows {
        for r in &row.run.records {
            // Unlinted records (unparsable or pre-lint journals) export
            // empty lint cells, distinct from a linted-and-clean 0.
            let (le, lw, lh) = match &r.lint {
                Some(l) => (
                    l.errors.to_string(),
                    l.warnings.to_string(),
                    l.hazard_count().to_string(),
                ),
                None => (String::new(), String::new(), String::new()),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{:.4},{},{},{}\n",
                row.model.family.name(),
                row.model.tuning.tag(),
                r.problem_id,
                r.difficulty,
                r.level,
                r.temperature,
                r.n,
                r.compiled as u8,
                r.passed as u8,
                r.fault as u8,
                r.latency_s,
                le,
                lw,
                lh
            ));
        }
    }
    out
}

/// Machine-readable JSON for one sweep's execution statistics — the dedup
/// cache tally that the stderr `[eval]` line renders for humans.
///
/// Execution statistics depend on the cache setting, so they live in a
/// sidecar file next to the journal rather than in the deterministic
/// stdout report (which CI diffs across `--jobs` and `--no-dedup`).
pub fn sweep_stats_json(stats: &SweepStats) -> String {
    format!(
        "{{\n  \"checks_run\": {},\n  \"cache_hits\": {},\n  \"hit_rate\": {:.4},\n  \
         \"resumed_records\": {},\n  \"repaired_lines\": {}\n}}\n",
        stats.checks_run,
        stats.cache_hits,
        stats.hit_rate(),
        stats.resumed_records,
        stats.repaired_lines,
    )
}

/// Renders harness-fault counts per model run. Faults are harness bugs or
/// exceeded check deadlines, not candidate failures, so they are reported
/// separately from the pass tables (which exclude fault records entirely).
/// Each row breaks the total down by kind: checker panics, soft timeouts
/// (the check observed its deadline and stopped cooperatively) and hard
/// timeouts (the check had to be abandoned by the watchdog).
pub fn render_fault_summary(rows: &[ModelRun]) -> String {
    let mut out = String::from("HARNESS FAULTS (panics and timeouts, excluded from rates)\n");
    let mut any = false;
    for row in rows {
        let faults = row.run.fault_count();
        if faults > 0 {
            any = true;
            out.push_str(&format!(
                "{:<24} {} of {} records (panic {}, soft timeout {}, hard timeout {})\n",
                format!("{}", row.model),
                faults,
                row.run.records.len(),
                row.run.fault_count_of(crate::check::FaultKind::Panic),
                row.run.fault_count_of(crate::check::FaultKind::SoftTimeout),
                row.run.fault_count_of(crate::check::FaultKind::HardTimeout),
            ));
        }
    }
    if !any {
        out.push_str("none\n");
    }
    out
}

/// Renders the summary block for one journaled sweep (the `vgen eval
/// --journal` report).
///
/// Deliberately contains nothing execution-dependent — no worker count,
/// no wall-clock — so the report is byte-identical across `--jobs`
/// settings; the CI determinism gate diffs this output directly.
/// Execution details (worker count, throughput) go to stderr instead.
pub fn render_eval_summary(run: &EvalRun, journal: &str) -> String {
    let t = run.tally(|_| true);
    let rules = run.lint_rule_totals();
    let by_rule = if rules.is_empty() {
        "none".to_string()
    } else {
        rules
            .iter()
            .map(|(r, n)| format!("{r}={n}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    format!(
        "engine:          {}\n\
         records:         {}\n\
         compile rate:    {:.3}\n\
         functional rate: {:.3}\n\
         lint errors:     {}\n\
         lint warnings:   {}\n\
         hazardous pass:  {} of {} passing\n\
         lint by rule:    {by_rule}\n\
         harness faults:  {}\n\
         check timeouts:  {}\n\
         journal:         {journal}\n",
        run.engine,
        run.records.len(),
        t.compile_rate(),
        t.functional_rate(),
        run.lint_error_total(),
        run.lint_warning_total(),
        run.hazardous_pass_count(),
        run.pass_count(),
        run.fault_count(),
        run.timeout_count(),
    )
}

/// Renders the expected latency column alone (validates the latency model
/// against Table IV's reported means).
pub fn render_latency_check(rows: &[ModelRun]) -> String {
    let mut out = String::from("Inference time (s): measured vs paper mean\n");
    for row in rows {
        out.push_str(&format!(
            "{:<24} {:.3} vs {:.3}\n",
            format!("{}", row.model),
            row.run.mean_latency(),
            paper_mean_seconds(row.model)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_engine, EvalConfig};
    use vgen_corpus::CorpusSource;
    use vgen_lm::{FamilyEngine, ModelFamily, Tuning};
    use vgen_sim::SimConfig;

    fn tiny_rows() -> Vec<ModelRun> {
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![5],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2],
            sim: SimConfig::default(),
        };
        [
            ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
            ModelId::new(ModelFamily::CodeGen16B, Tuning::Pretrained),
            ModelId::new(ModelFamily::CodeDavinci002, Tuning::Pretrained),
        ]
        .into_iter()
        .map(|m| {
            let mut e = FamilyEngine::new(m, CorpusSource::GithubOnly, 3);
            ModelRun {
                model: m,
                run: run_engine(&mut e, &cfg),
            }
        })
        .collect()
    }

    #[test]
    fn table1_contains_all_models() {
        let t = render_table1();
        for f in vgen_lm::ModelFamily::ALL {
            assert!(t.contains(f.name()), "missing {f}");
        }
        assert!(t.contains("NA"));
    }

    #[test]
    fn table2_lists_17_problems() {
        let t = render_table2();
        assert_eq!(t.lines().count(), 2 + 17);
        assert!(t.contains("ABRO FSM"));
    }

    #[test]
    fn table3_and_4_render() {
        let rows = tiny_rows();
        let t3 = render_table3(&rows, 5);
        assert!(t3.contains("CodeGen-16B"));
        assert!(t3.lines().count() >= 5);
        let t4 = render_table4(&rows, 5);
        assert!(t4.contains("Time(s)"));
    }

    #[test]
    fn figures_render() {
        let rows = tiny_rows();
        assert!(render_fig6_temperature(&rows, 5).contains("t=0.1"));
        assert!(render_fig6_n(&rows, &[5]).contains("n=5"));
        assert!(render_fig7_levels(&rows, 5).contains("L:"));
        assert!(render_fig7_difficulty(&rows, 5).contains("Basic:"));
    }

    #[test]
    fn headline_orders_ft_above_pt() {
        let rows = tiny_rows();
        let h = headline_stats(&rows, 5);
        assert!(h.finetuned_compile > h.pretrained_compile);
        assert!(h.best_finetuned_functional >= h.finetuned_functional);
        let rendered = render_headline(&h);
        assert!(rendered.contains("paper 0.646"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = tiny_rows();
        let csv = records_csv(&rows);
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("model,"));
        assert!(header.ends_with("lint_errors,lint_warnings,lint_hazards"));
        let cols = header.split(',').count();
        assert!(
            csv.lines().skip(1).all(|l| l.split(',').count() == cols),
            "every row matches the header's column count"
        );
        assert!(csv.lines().count() > 10);
    }

    #[test]
    fn latency_check_renders() {
        let rows = tiny_rows();
        let s = render_latency_check(&rows);
        assert!(s.contains("vs"));
    }

    #[test]
    fn eval_summary_is_execution_independent() {
        let rows = tiny_rows();
        let s = render_eval_summary(&rows[0].run, "sweep.log");
        assert!(s.starts_with("engine:"));
        assert!(s.contains("journal:         sweep.log"));
        assert!(s.contains("lint errors:"), "{s}");
        assert!(s.contains("lint warnings:"), "{s}");
        assert!(s.contains("hazardous pass:"), "{s}");
        assert!(s.contains("lint by rule:"), "{s}");
        assert!(s.contains("check timeouts:  0"), "{s}");
        // Nothing about workers/jobs/time may leak into the report: the
        // CI determinism gate byte-diffs it across --jobs settings.
        for banned in ["jobs", "worker", "elapsed", "checks/s"] {
            assert!(!s.contains(banned), "report leaked `{banned}`:\n{s}");
        }
    }

    #[test]
    fn fault_summary_renders() {
        let mut rows = tiny_rows();
        assert!(render_fault_summary(&rows).contains("none"));
        rows[0].run.records[0].fault = true;
        rows[0].run.records[0].fault_kind = Some(crate::check::FaultKind::HardTimeout);
        let s = render_fault_summary(&rows);
        assert!(s.contains("1 of"), "got: {s}");
        assert!(
            s.contains("panic 0, soft timeout 0, hard timeout 1"),
            "got: {s}"
        );
    }

    #[test]
    fn sweep_stats_json_carries_recovery_fields() {
        let stats = SweepStats {
            checks_run: 10,
            cache_hits: 2,
            resumed_records: 4,
            repaired_lines: 1,
        };
        let json = sweep_stats_json(&stats);
        assert!(json.contains("\"resumed_records\": 4"), "{json}");
        assert!(json.contains("\"repaired_lines\": 1"), "{json}");
    }
}
