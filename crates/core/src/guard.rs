//! Fault isolation and deadline supervision for the checking pipeline.
//!
//! The parser, elaborator and simulator are all exercised with arbitrary
//! model output. Two failure shapes threaten a sweep:
//!
//! * **Panics** — a bug anywhere in that stack (an unchecked index, an
//!   arithmetic overflow) would abort an entire evaluation on a single
//!   hostile completion. [`catch_harness_fault`] maps any panic to
//!   [`CheckOutcome::HarnessFault`], so one bad candidate costs one record.
//! * **Stalls** — a completion that is *legal under every budget* but
//!   merely slow (a zero-delay oscillator sized just under the step cap, a
//!   near-token-cap parse) wedges a worker for seconds to minutes.
//!   [`supervised_check_completion`] runs the check under a [`CheckPolicy`]
//!   with an optional wall-clock deadline, escalating through a state
//!   machine:
//!
//!   1. **budgets** — the step/size/token caps from PR 1 bound memory and
//!      classify genuinely infinite work; they never read a clock.
//!   2. **cancel** — a [`CancelToken`] armed with the deadline is threaded
//!      through parse/elaborate/simulate; when it trips, the stage unwinds
//!      cooperatively and the outcome is a *soft timeout*.
//!   3. **watchdog** — the guard waits `deadline + grace` for the checker
//!      thread's result. Cooperative exit lands here.
//!   4. **detach** — no result inside the grace period means the checker is
//!      hard-hung (stuck outside any poll site). The thread is detached —
//!      abandoned, never joined — and the outcome is a *hard timeout*. The
//!      calling worker continues immediately; the pool never loses a
//!      worker to a hang.
//!   5. **retry** — timeouts are transient by nature (machine load, cache
//!      state), so the policy may retry them with exponential backoff
//!      before the record is finalized. Panics are deterministic and are
//!      never retried.
//!
//! While a guarded check is running, the default "thread panicked at ..."
//! report is suppressed (per thread) so sweeps don't spray backtraces; the
//! panic message is preserved in the outcome instead.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

use vgen_obs::CancelToken;
use vgen_problems::{Problem, PromptLevel};
use vgen_sim::SimConfig;

use crate::chaos::{ChaosSite, ChaosSpec};
use crate::check::{check_completion_cancellable, CheckOutcome, CheckResult, TimeoutKind};

thread_local! {
    /// Set while a guarded closure runs on this thread.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent while a
/// guarded check is running on the panicking thread and defers to the
/// previous hook otherwise.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting any panic into `Err(message)`.
///
/// The default panic report is suppressed for the duration; the payload
/// (the `panic!` message, when it is a string) is returned instead.
pub fn catch_harness_fault<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Stack size for the dedicated checker thread. The parser's recursion
/// guard ([`vgen_verilog::parser::MAX_NEST_DEPTH`]) is sized so the worst
/// legal nesting fits in a fraction of this even in unoptimised builds.
const CHECK_STACK_BYTES: usize = 8 * 1024 * 1024;

/// How one check is supervised: deadline, grace period, retry budget and
/// fault injection. The [`Default`] policy has no deadline and no chaos —
/// behaviourally identical to the unsupervised guard, and what every
/// determinism-gated CI run uses (wall-clock timeouts are inherently
/// nondeterministic; see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckPolicy {
    /// Wall-clock deadline per check attempt. `None` disables supervision:
    /// the guard blocks until the check finishes, as before.
    pub timeout: Option<Duration>,
    /// Extra wait past the deadline for the cooperative cancel to unwind
    /// before the watchdog declares a hard hang and detaches the thread.
    pub grace: Duration,
    /// How many times a timed-out attempt is retried before the timeout is
    /// recorded. Panics are never retried.
    pub retries: u32,
    /// Base backoff between retries; doubles per attempt.
    pub backoff: Duration,
    /// Deterministic fault injection (see [`crate::chaos`]).
    pub chaos: ChaosSpec,
}

impl Default for CheckPolicy {
    fn default() -> Self {
        CheckPolicy {
            timeout: None,
            grace: Duration::from_millis(200),
            retries: 0,
            backoff: Duration::from_millis(25),
            chaos: ChaosSpec::default(),
        }
    }
}

impl CheckPolicy {
    /// Returns the policy with the per-attempt deadline replaced.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Returns the policy with the retry budget replaced.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Returns the policy with the chaos spec replaced.
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = chaos;
        self
    }
}

/// [`check_completion`](crate::check::check_completion) with fault
/// isolation and the default (deadline-less) [`CheckPolicy`]: the check
/// runs on a dedicated thread with a known [8 MiB
/// stack](CHECK_STACK_BYTES) — so classification never depends on how much
/// stack the *caller* happens to have left — and a panic anywhere in the
/// assemble/parse/elaborate/simulate stack yields
/// [`CheckOutcome::HarnessFault`] instead of unwinding into the caller.
///
/// ```
/// use vgen_core::guard::guarded_check_completion;
/// use vgen_problems::{problem, PromptLevel};
/// use vgen_sim::SimConfig;
///
/// let p = problem(2).expect("problem");
/// let r = guarded_check_completion(p, PromptLevel::Low, "endmodule", SimConfig::default());
/// assert!(!r.outcome.passed());
/// ```
pub fn guarded_check_completion(
    problem: &'static Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
) -> CheckResult {
    supervised_check_completion(problem, level, completion, config, &CheckPolicy::default())
}

/// [`guarded_check_completion`] under an explicit [`CheckPolicy`]: adds
/// wall-clock deadline supervision (soft/hard timeout classification, see
/// the module docs), bounded retry for timeouts, and deterministic fault
/// injection.
///
/// `problem` is `&'static` because on a hard hang the checker thread is
/// detached and may touch its inputs long after this call returns —
/// borrowed data must therefore live forever (problems do: they come from
/// the static problem table) or be owned by the thread (the completion is
/// copied in).
pub fn supervised_check_completion(
    problem: &'static Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
    policy: &CheckPolicy,
) -> CheckResult {
    let mut attempt: u32 = 0;
    loop {
        let result = attempt_check(problem, level, completion, config, policy, attempt);
        if matches!(result.outcome, CheckOutcome::Timeout(_)) {
            vgen_obs::counter_add("guard.timeout", 1);
            if attempt < policy.retries {
                vgen_obs::counter_add("guard.retry", 1);
                let backoff = policy.backoff.saturating_mul(1u32 << attempt.min(6));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
                continue;
            }
        }
        return result;
    }
}

/// One supervised attempt: spawn a detachable checker thread, wait for its
/// result up to deadline + grace, classify.
fn attempt_check(
    problem: &'static Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
    policy: &CheckPolicy,
    attempt: u32,
) -> CheckResult {
    // Injected soft timeout: synthesized before any work, without reading
    // a clock — deterministic in (seed, completion, attempt) so chaos runs
    // byte-compare across jobs counts and kill/resume.
    if policy
        .chaos
        .fires_check_timeout(completion.as_bytes(), attempt)
    {
        vgen_obs::counter_add("guard.chaos", 1);
        return no_verdict(CheckOutcome::Timeout(TimeoutKind::Soft));
    }

    let cancel = match policy.timeout {
        Some(t) => CancelToken::with_deadline(t),
        None => CancelToken::unlimited(),
    };

    // The ephemeral checker thread records onto the spawning worker's obs
    // lane, so a sweep's trace shows one timeline per worker rather than
    // one per check.
    let lane = vgen_obs::current_lane();
    let chaos = policy.chaos.clone();
    let owned = completion.to_string();
    let thread_cancel = cancel.clone();
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("vgen-check".into())
        .stack_size(CHECK_STACK_BYTES)
        .spawn(move || {
            vgen_obs::adopt_lane(lane);
            let caught = catch_harness_fault(|| {
                if chaos
                    .fires(ChaosSite::CheckPanic, owned.as_bytes())
                    .is_some()
                {
                    panic!("chaos: injected checker panic");
                }
                if let Some(ms) = chaos.fires(ChaosSite::CheckDelayMs, owned.as_bytes()) {
                    // A real, uncancellable stall — exercises the hard-
                    // timeout detach path.
                    std::thread::sleep(Duration::from_millis(ms));
                }
                check_completion_cancellable(problem, level, &owned, config, &thread_cancel)
            });
            // Flush this thread's obs buffers *now*, not at thread exit:
            // after a hard timeout the supervisor has already detached us,
            // and exit may come after the session's collect() — flushing
            // at the cancel point keeps the partial stage spans a
            // hard-timed-out check did complete.
            vgen_obs::flush();
            let _ = tx.send(caught);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => {
            vgen_obs::counter_add("guard.fault", 1);
            return no_verdict(CheckOutcome::HarnessFault(format!(
                "cannot spawn checker thread: {e}"
            )));
        }
    };

    let caught = match policy.timeout {
        // Unsupervised: block until the check finishes (as before PR 6).
        None => rx.recv().map_err(|_| "checker thread died".to_string()),
        Some(t) => match rx.recv_timeout(t + policy.grace) {
            Ok(c) => Ok(c),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Hard hang: the deadline armed the token at `t`, the
                // grace period passed, and the checker never reached a
                // poll site. Detach the thread (drop its handle without
                // joining) and abandon it; the worker moves on.
                cancel.cancel();
                vgen_obs::counter_add("guard.hard_timeout", 1);
                // Make the verdict visible to live snapshots before the
                // worker moves on — the detached thread may hold its lane
                // hostage for a long time.
                vgen_obs::flush();
                drop(handle);
                return no_verdict(CheckOutcome::Timeout(TimeoutKind::Hard));
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err("checker thread died".to_string()),
        },
    };
    // The result is in hand, so the thread is exiting; reap it.
    let _ = handle.join();
    match caught {
        Ok(Ok(r)) => r,
        Ok(Err(msg)) | Err(msg) => {
            vgen_obs::counter_add("guard.fault", 1);
            no_verdict(CheckOutcome::HarnessFault(msg))
        }
    }
}

/// A [`CheckResult`] for outcomes that never produced a candidate verdict
/// (faults and timeouts): no source, no lint.
fn no_verdict(outcome: CheckOutcome) -> CheckResult {
    CheckResult {
        outcome,
        source: String::new(),
        lint: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::FaultKind;
    use vgen_problems::problem;

    fn p() -> &'static Problem {
        problem(2).expect("problem")
    }

    #[test]
    fn passthrough_on_success() {
        assert_eq!(catch_harness_fault(|| 42), Ok(42));
    }

    #[test]
    fn panic_becomes_error_message() {
        let r = catch_harness_fault(|| -> u32 { panic!("boom {}", 7) });
        assert_eq!(r, Err("boom 7".to_string()));
    }

    #[test]
    fn str_payloads_are_captured() {
        let r = catch_harness_fault(|| -> u32 { panic!("static message") });
        assert_eq!(r, Err("static message".to_string()));
    }

    #[test]
    fn normal_checks_are_unaffected() {
        let r = guarded_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
        );
        assert!(r.outcome.passed());
    }

    #[test]
    fn guard_is_reentrant_across_calls() {
        for _ in 0..3 {
            assert!(catch_harness_fault(|| -> u32 { panic!("again") }).is_err());
            assert_eq!(catch_harness_fault(|| 1), Ok(1));
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let policy = CheckPolicy::default().with_timeout(Some(Duration::from_secs(60)));
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &policy,
        );
        assert!(r.outcome.passed(), "got {:?}", r.outcome);
    }

    #[test]
    fn injected_panic_is_a_panic_fault() {
        let chaos = ChaosSpec::parse("check.panic%1", 0).unwrap();
        let policy = CheckPolicy::default().with_chaos(chaos);
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &policy,
        );
        assert_eq!(
            r.outcome,
            CheckOutcome::HarnessFault("chaos: injected checker panic".into())
        );
        assert_eq!(r.outcome.fault_kind(), Some(FaultKind::Panic));
    }

    #[test]
    fn injected_timeout_is_clockless_and_soft() {
        let chaos = ChaosSpec::parse("check.timeout%1", 0).unwrap();
        let policy = CheckPolicy::default().with_chaos(chaos);
        // No policy.timeout: the injected timeout never arms a deadline.
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &policy,
        );
        assert_eq!(r.outcome, CheckOutcome::Timeout(TimeoutKind::Soft));
        assert_eq!(r.outcome.fault_kind(), Some(FaultKind::SoftTimeout));
    }

    #[test]
    fn attempt_limited_injection_heals_on_retry() {
        // Fires on attempt 0 only; one retry reaches the real outcome.
        let chaos = ChaosSpec::parse("check.timeout:1%1", 0).unwrap();
        let policy = CheckPolicy {
            backoff: Duration::ZERO,
            ..CheckPolicy::default()
        }
        .with_chaos(chaos.clone())
        .with_retries(1);
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &policy,
        );
        assert!(r.outcome.passed(), "retry must heal: {:?}", r.outcome);
        // Without the retry budget the injected timeout is recorded.
        let no_retry = CheckPolicy::default().with_chaos(chaos);
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &no_retry,
        );
        assert_eq!(r.outcome, CheckOutcome::Timeout(TimeoutKind::Soft));
    }

    #[test]
    fn detached_checker_flushes_stages_at_cancel_point() {
        // Regression: a hard-timed-out checker used to drain its obs
        // buffers only at thread exit — which could land after collect(),
        // silently losing every span of a `guard.hard_timeout` run. The
        // checker now flushes at its cancel point and the supervisor
        // flushes before detaching, so partial stage coverage survives.
        vgen_obs::enable();
        let chaos = ChaosSpec::parse("check.delay:400%1", 0).unwrap();
        let policy = CheckPolicy {
            timeout: Some(Duration::from_millis(50)),
            grace: Duration::from_millis(100),
            ..CheckPolicy::default()
        }
        .with_chaos(chaos);
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &policy,
        );
        assert_eq!(r.outcome, CheckOutcome::Timeout(TimeoutKind::Hard));
        // The supervisor flushed before detaching: the verdict counter is
        // visible to a live snapshot immediately, mid-hang.
        let snap = vgen_obs::snapshot();
        assert!(
            snap.counters
                .get("guard.hard_timeout")
                .copied()
                .unwrap_or(0)
                >= 1,
            "hard-timeout counter must be snapshot-visible: {:?}",
            snap.counters
        );
        // Wait out the injected stall so the detached checker wakes, runs
        // its cancelled check, and flushes at the cancel point.
        std::thread::sleep(Duration::from_millis(1200));
        let report = vgen_obs::collect();
        let stage_samples: u64 = report.hists.values().map(|h| h.count).sum();
        assert!(
            stage_samples > 0,
            "detached checker must flush partial stage spans, got hists {:?}",
            report.hists.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn hard_hang_is_detached_within_grace() {
        // An injected 2 s uncancellable sleep against a 50 ms deadline and
        // 100 ms grace: the watchdog must detach and return hard-timeout
        // long before the sleep finishes.
        let chaos = ChaosSpec::parse("check.delay:2000%1", 0).unwrap();
        let policy = CheckPolicy {
            timeout: Some(Duration::from_millis(50)),
            grace: Duration::from_millis(100),
            ..CheckPolicy::default()
        }
        .with_chaos(chaos);
        let start = std::time::Instant::now();
        let r = supervised_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
            &policy,
        );
        assert_eq!(r.outcome, CheckOutcome::Timeout(TimeoutKind::Hard));
        assert_eq!(r.outcome.fault_kind(), Some(FaultKind::HardTimeout));
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "watchdog must not wait out the hang"
        );
        // The caller's thread keeps working: a fresh check succeeds while
        // the abandoned one is still asleep.
        let r = guarded_check_completion(
            p(),
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
        );
        assert!(r.outcome.passed());
    }
}
