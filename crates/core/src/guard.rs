//! Fault isolation for the checking pipeline.
//!
//! The parser, elaborator and simulator are all exercised with arbitrary
//! model output. A bug anywhere in that stack — an unchecked index, an
//! arithmetic overflow — would otherwise abort an entire evaluation sweep
//! on a single hostile completion. This module runs
//! [`check_completion`](crate::check::check_completion) under
//! [`std::panic::catch_unwind`] and maps any panic to
//! [`CheckOutcome::HarnessFault`], so one bad candidate costs one record,
//! not the whole run.
//!
//! While a guarded check is running, the default "thread panicked at ..."
//! report is suppressed (per thread) so sweeps don't spray backtraces; the
//! panic message is preserved in the outcome instead.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use vgen_problems::{Problem, PromptLevel};
use vgen_sim::SimConfig;

use crate::check::{check_completion, CheckOutcome, CheckResult};

thread_local! {
    /// Set while a guarded closure runs on this thread.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent while a
/// guarded check is running on the panicking thread and defers to the
/// previous hook otherwise.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting any panic into `Err(message)`.
///
/// The default panic report is suppressed for the duration; the payload
/// (the `panic!` message, when it is a string) is returned instead.
pub fn catch_harness_fault<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Stack size for the dedicated checker thread. The parser's recursion
/// guard ([`vgen_verilog::parser::MAX_NEST_DEPTH`]) is sized so the worst
/// legal nesting fits in a fraction of this even in unoptimised builds.
const CHECK_STACK_BYTES: usize = 8 * 1024 * 1024;

/// [`check_completion`] with fault isolation: the check runs on a dedicated
/// thread with a known [8 MiB stack](CHECK_STACK_BYTES) — so classification
/// never depends on how much stack the *caller* happens to have left — and
/// a panic anywhere in the assemble/parse/elaborate/simulate stack yields
/// [`CheckOutcome::HarnessFault`] instead of unwinding into the caller.
///
/// ```
/// use vgen_core::guard::guarded_check_completion;
/// use vgen_problems::{problem, PromptLevel};
/// use vgen_sim::SimConfig;
///
/// let p = problem(2).expect("problem");
/// let r = guarded_check_completion(p, PromptLevel::Low, "endmodule", SimConfig::default());
/// assert!(!r.outcome.passed());
/// ```
pub fn guarded_check_completion(
    problem: &Problem,
    level: PromptLevel,
    completion: &str,
    config: SimConfig,
) -> CheckResult {
    // The ephemeral checker thread records onto the spawning worker's obs
    // lane, so a sweep's trace shows one timeline per worker rather than
    // one per check.
    let lane = vgen_obs::current_lane();
    let caught = std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name("vgen-check".into())
            .stack_size(CHECK_STACK_BYTES)
            .spawn_scoped(scope, move || {
                vgen_obs::adopt_lane(lane);
                catch_harness_fault(|| check_completion(problem, level, completion, config))
            });
        match handle {
            // Panics are caught *inside* the thread, so join only fails if
            // the runtime itself is wedged — treat that as a fault too.
            Ok(h) => h
                .join()
                .unwrap_or_else(|_| Err("checker thread died".to_string())),
            Err(e) => Err(format!("cannot spawn checker thread: {e}")),
        }
    });
    match caught {
        Ok(r) => r,
        Err(msg) => {
            vgen_obs::counter_add("guard.fault", 1);
            CheckResult {
                outcome: CheckOutcome::HarnessFault(msg),
                source: String::new(),
                lint: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_problems::problem;

    #[test]
    fn passthrough_on_success() {
        assert_eq!(catch_harness_fault(|| 42), Ok(42));
    }

    #[test]
    fn panic_becomes_error_message() {
        let r = catch_harness_fault(|| -> u32 { panic!("boom {}", 7) });
        assert_eq!(r, Err("boom 7".to_string()));
    }

    #[test]
    fn str_payloads_are_captured() {
        let r = catch_harness_fault(|| -> u32 { panic!("static message") });
        assert_eq!(r, Err("static message".to_string()));
    }

    #[test]
    fn normal_checks_are_unaffected() {
        let p = problem(2).expect("problem");
        let r = guarded_check_completion(
            p,
            PromptLevel::Low,
            "assign y = a & b;\nendmodule",
            SimConfig::default(),
        );
        assert!(r.outcome.passed());
    }

    #[test]
    fn guard_is_reentrant_across_calls() {
        for _ in 0..3 {
            assert!(catch_harness_fault(|| -> u32 { panic!("again") }).is_err());
            assert_eq!(catch_harness_fault(|| 1), Ok(1));
        }
    }
}
