//! The experiment runner: queries an engine over the full parameter grid
//! (prompt level × temperature × completions-per-prompt, §IV-B) and checks
//! every completion through the compile/simulate pipeline.

use vgen_lm::engine::CompletionEngine;
use vgen_problems::{problem, Difficulty, PromptLevel};
use vgen_sim::SimConfig;

use crate::check::{check_completion, CheckOutcome};
use crate::metrics::Tally;

/// The paper's temperature grid (§IV-B).
pub const PAPER_TEMPERATURES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 1.0];

/// The paper's completions-per-prompt grid (§IV-B).
pub const PAPER_NS: [usize; 3] = [1, 10, 25];

/// Grid configuration for one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Sampling temperatures to sweep.
    pub temperatures: Vec<f64>,
    /// Completions-per-prompt values to sweep.
    pub ns: Vec<usize>,
    /// Prompt detail levels to sweep.
    pub levels: Vec<PromptLevel>,
    /// Problems to include (1-based ids).
    pub problem_ids: Vec<u8>,
    /// Simulator limits per functional check.
    pub sim: SimConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            temperatures: PAPER_TEMPERATURES.to_vec(),
            ns: PAPER_NS.to_vec(),
            levels: PromptLevel::ALL.to_vec(),
            problem_ids: (1..=17).collect(),
            sim: SimConfig::default(),
        }
    }
}

impl EvalConfig {
    /// The paper's headline setting: all problems/levels, n = 10 only.
    pub fn paper_n10() -> Self {
        EvalConfig {
            ns: vec![10],
            ..Self::default()
        }
    }

    /// A reduced grid for quick tests: one temperature, small n.
    pub fn quick() -> Self {
        EvalConfig {
            temperatures: vec![0.1],
            ns: vec![4],
            ..Self::default()
        }
    }
}

/// One checked completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Problem id (1-based).
    pub problem_id: u8,
    /// Problem difficulty.
    pub difficulty: Difficulty,
    /// Prompt detail level.
    pub level: PromptLevel,
    /// Sampling temperature used.
    pub temperature: f64,
    /// The n this record was generated under.
    pub n: usize,
    /// Whether the candidate compiled.
    pub compiled: bool,
    /// Whether it passed the testbench.
    pub passed: bool,
    /// Simulated inference latency.
    pub latency_s: f64,
}

/// All records from evaluating one engine over a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRun {
    /// Engine display name.
    pub engine: String,
    /// Per-completion records.
    pub records: Vec<Record>,
}

/// Runs an engine over the grid, checking every completion.
///
/// J1-Large skips n = 25 upstream (the engine name containing "J1" is not
/// inspected here — pass a config without 25 for that model, as the bench
/// binaries do, mirroring §IV-B).
pub fn run_engine(engine: &mut dyn CompletionEngine, config: &EvalConfig) -> EvalRun {
    let mut records = Vec::new();
    for &pid in &config.problem_ids {
        let prob = problem(pid).unwrap_or_else(|| panic!("unknown problem id {pid}"));
        for &level in &config.levels {
            for &t in &config.temperatures {
                for &n in &config.ns {
                    let completions = engine.generate(prob, level, t, n);
                    for c in completions {
                        let result = check_completion(prob, level, &c.text, config.sim);
                        records.push(Record {
                            problem_id: pid,
                            difficulty: prob.difficulty,
                            level,
                            temperature: t,
                            n,
                            compiled: result.outcome.compiled(),
                            passed: matches!(result.outcome, CheckOutcome::Pass),
                            latency_s: c.latency_s,
                        });
                    }
                }
            }
        }
    }
    EvalRun {
        engine: engine.name(),
        records,
    }
}

impl EvalRun {
    /// Tallies records matching a predicate.
    pub fn tally(&self, keep: impl Fn(&Record) -> bool) -> Tally {
        let mut t = Tally::default();
        for r in self.records.iter().filter(|r| keep(r)) {
            t.record(r.compiled, r.passed);
        }
        t
    }

    /// Temperatures present in the run.
    pub fn temperatures(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = Vec::new();
        for r in &self.records {
            if !ts.iter().any(|t| (*t - r.temperature).abs() < 1e-12) {
                ts.push(r.temperature);
            }
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN temps"));
        ts
    }

    /// Best-temperature *compile* rate for a difficulty at a given n —
    /// a Table III cell ("the t for each model for which their completions
    /// were most successful").
    pub fn best_compile(&self, difficulty: Difficulty, n: usize) -> f64 {
        self.temperatures()
            .into_iter()
            .map(|t| {
                self.tally(|r| {
                    r.difficulty == difficulty
                        && r.n == n
                        && (r.temperature - t).abs() < 1e-12
                })
                .compile_rate()
            })
            .fold(0.0, f64::max)
    }

    /// Best-temperature *functional* rate for (difficulty, level) at n —
    /// a Table IV cell.
    pub fn best_functional(
        &self,
        difficulty: Difficulty,
        level: PromptLevel,
        n: usize,
    ) -> f64 {
        self.temperatures()
            .into_iter()
            .map(|t| {
                self.tally(|r| {
                    r.difficulty == difficulty
                        && r.level == level
                        && r.n == n
                        && (r.temperature - t).abs() < 1e-12
                })
                .functional_rate()
            })
            .fold(0.0, f64::max)
    }

    /// Mean inference latency in seconds (Table IV time column).
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.latency_s).sum::<f64>() / self.records.len() as f64
    }

    /// Functional pass rate per problem id (the §VI per-problem analysis).
    pub fn per_problem_functional(&self, n: usize) -> Vec<(u8, Tally)> {
        let mut ids: Vec<u8> = self.records.iter().map(|r| r.problem_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|pid| (pid, self.tally(|r| r.problem_id == pid && r.n == n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_corpus::CorpusSource;
    use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};

    fn small_cfg() -> EvalConfig {
        EvalConfig {
            temperatures: vec![0.1, 0.7],
            ns: vec![5],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2, 6],
            sim: SimConfig::default(),
        }
    }

    fn cg16_ft_engine() -> FamilyEngine {
        FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
            CorpusSource::GithubOnly,
            42,
        )
    }

    #[test]
    fn run_produces_full_grid() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        // 3 problems × 1 level × 2 temps × 5 completions.
        assert_eq!(run.records.len(), 30);
        assert_eq!(run.temperatures(), vec![0.1, 0.7]);
    }

    #[test]
    fn best_temperature_is_cold() {
        let mut engine = cg16_ft_engine();
        let cfg = EvalConfig {
            ns: vec![20],
            problem_ids: vec![1, 2, 3, 4],
            levels: vec![PromptLevel::Medium],
            temperatures: vec![0.1, 1.0],
            sim: SimConfig::default(),
        };
        let run = run_engine(&mut engine, &cfg);
        let cold = run
            .tally(|r| (r.temperature - 0.1).abs() < 1e-9)
            .functional_rate();
        let hot = run
            .tally(|r| (r.temperature - 1.0).abs() < 1e-9)
            .functional_rate();
        assert!(
            cold > hot,
            "cold sampling should beat hot: {cold} vs {hot}"
        );
        assert!(run.best_functional(Difficulty::Basic, PromptLevel::Medium, 20) >= cold);
    }

    #[test]
    fn fine_tuned_beats_pretrained() {
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![10],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2, 3, 4],
            sim: SimConfig::default(),
        };
        let mut ft = cg16_ft_engine();
        let mut pt = FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::Pretrained),
            CorpusSource::GithubOnly,
            42,
        );
        let ft_run = run_engine(&mut ft, &cfg);
        let pt_run = run_engine(&mut pt, &cfg);
        assert!(
            ft_run.tally(|_| true).compile_rate() > pt_run.tally(|_| true).compile_rate()
        );
    }

    #[test]
    fn per_problem_breakdown_covers_ids() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        let per = run.per_problem_functional(5);
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].0, 1);
        assert!(per.iter().all(|(_, t)| t.total > 0));
    }

    #[test]
    fn latency_is_positive() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        assert!(run.mean_latency() > 0.0);
    }
}
