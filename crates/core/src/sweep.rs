//! The experiment runner: queries an engine over the full parameter grid
//! (prompt level × temperature × completions-per-prompt, §IV-B) and checks
//! every completion through the compile/simulate pipeline.
//!
//! Every check runs under the panic guard ([`crate::guard`]), so a harness
//! bug on one hostile completion costs one [`Record`] (marked `fault`),
//! not the sweep. Long sweeps can additionally journal each record to disk
//! as it is produced ([`run_engine_journaled`]) and resume after a crash or
//! kill without repeating completed checks.
//!
//! ## Execution model
//!
//! A sweep runs in two phases (see DESIGN.md, "Parallel execution
//! model"):
//!
//! 1. **Generate** (always serial, on the calling thread): the grid is
//!    walked in canonical order and the engine is queried for every cell,
//!    flattening the scenario×temperature×completion grid into a vector
//!    of independent work items. Serial generation keeps the engine's RNG
//!    stream identical across worker counts and across fresh vs resumed
//!    runs.
//! 2. **Check** (serial or parallel): each work item is one
//!    compile+simulate check. With `jobs > 1`
//!    ([`SweepOptions::jobs`]) items are dispatched to a
//!    [`WorkerPool`](crate::pool::WorkerPool) and results flow through a
//!    [`ReorderBuffer`](crate::pool::ReorderBuffer) back into canonical
//!    order, so journal lines, reports and Pass@k aggregates are
//!    byte-identical to the serial path regardless of worker count or
//!    completion order. Journal lines are written by a single dedicated
//!    writer thread, in order, one flush per record — a killed parallel
//!    run therefore leaves the same contiguous-prefix journal a killed
//!    serial run would, and `--resume` composes unchanged.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, IsTerminal, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use vgen_lm::engine::{Completion, CompletionEngine};
use vgen_problems::{problem, Difficulty, Problem, PromptLevel};
use vgen_sim::SimConfig;

use vgen_lint::Rule;

use crate::chaos::{ChaosSite, ChaosSpec};
use crate::check::{FaultKind, LintCounts};
use crate::guard::{supervised_check_completion, CheckPolicy};
use crate::metrics::Tally;
use crate::pool::{ReorderBuffer, WorkerPool};

/// The paper's temperature grid (§IV-B).
pub const PAPER_TEMPERATURES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 1.0];

/// The paper's completions-per-prompt grid (§IV-B).
pub const PAPER_NS: [usize; 3] = [1, 10, 25];

/// Grid configuration for one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Sampling temperatures to sweep.
    pub temperatures: Vec<f64>,
    /// Completions-per-prompt values to sweep.
    pub ns: Vec<usize>,
    /// Prompt detail levels to sweep.
    pub levels: Vec<PromptLevel>,
    /// Problems to include (1-based ids).
    pub problem_ids: Vec<u8>,
    /// Simulator limits per functional check.
    pub sim: SimConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            temperatures: PAPER_TEMPERATURES.to_vec(),
            ns: PAPER_NS.to_vec(),
            levels: PromptLevel::ALL.to_vec(),
            problem_ids: (1..=17).collect(),
            sim: SimConfig::default(),
        }
    }
}

impl EvalConfig {
    /// The paper's headline setting: all problems/levels, n = 10 only.
    pub fn paper_n10() -> Self {
        EvalConfig {
            ns: vec![10],
            ..Self::default()
        }
    }

    /// A reduced grid for quick tests: one temperature, small n.
    pub fn quick() -> Self {
        EvalConfig {
            temperatures: vec![0.1],
            ns: vec![4],
            ..Self::default()
        }
    }
}

/// One checked completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Problem id (1-based).
    pub problem_id: u8,
    /// Problem difficulty.
    pub difficulty: Difficulty,
    /// Prompt detail level.
    pub level: PromptLevel,
    /// Sampling temperature used.
    pub temperature: f64,
    /// The n this record was generated under.
    pub n: usize,
    /// Whether the candidate compiled.
    pub compiled: bool,
    /// Whether it passed the testbench.
    pub passed: bool,
    /// Whether the check failed to produce a verdict on this candidate —
    /// a harness panic or a check deadline; [`Record::fault_kind`] says
    /// which. Fault records count against neither compile nor functional
    /// rates.
    pub fault: bool,
    /// Classification of the no-verdict cause when `fault` is set, `None`
    /// for ordinary records. Records resumed from pre-v3 journals carry
    /// [`FaultKind::Panic`] for their fault records — panics were the only
    /// fault those formats could represent.
    pub fault_kind: Option<FaultKind>,
    /// Simulated inference latency.
    pub latency_s: f64,
    /// Lint tallies for the candidate ([`crate::check::CheckResult::lint`]).
    /// `None` when the candidate never parsed, when the harness faulted, or
    /// when the record was resumed from a pre-lint (v1) journal.
    pub lint: Option<LintCounts>,
}

impl Record {
    /// Serialises the record as one v3 journal line: the ten v2 fields
    /// (nine legacy fields plus lint, `-` when absent), the fault-kind tag
    /// (`-` for records carrying a real verdict), and a lowercase-hex
    /// FNV-1a checksum of everything before it. The checksum is what lets
    /// recovery distinguish "line the dead process wrote whole" from "line
    /// torn or bit-rotted after the fact" without trusting field counts.
    pub fn to_journal_line(&self) -> String {
        let prefix = format!(
            "{},{},{},{},{},{},{},{},{},{},{}",
            self.problem_id,
            difficulty_tag(self.difficulty),
            self.level.tag(),
            self.temperature,
            self.n,
            self.compiled as u8,
            self.passed as u8,
            self.fault as u8,
            self.latency_s,
            match &self.lint {
                Some(l) => l.to_journal_field(),
                None => "-".to_string(),
            },
            match self.fault_kind {
                Some(k) => k.journal_tag(),
                None => "-",
            },
        );
        format!("{prefix},{:08x}", fnv1a(prefix.as_bytes()) & 0xffff_ffff)
    }

    /// Parses a journal line produced by [`Record::to_journal_line`], in
    /// any supported format: a 12-field v3 line (checksum-verified), a
    /// 10-field v2 line, or a 9-field legacy v1 line (both yielding
    /// `lint: None` / best-effort `fault_kind`). Returns `None` on any
    /// malformed field, a checksum mismatch, or a line truncated by a kill
    /// mid-write.
    pub fn from_journal_line(line: &str) -> Option<Record> {
        parse_journal_line(line).map(|(rec, _)| rec)
    }
}

/// The journal format a record line was written under, decided by its
/// field count (and, for v3, its checksum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineVersion {
    /// Nine fields, pre-lint.
    V1,
    /// Ten fields: v1 plus the lint tallies.
    V2,
    /// Twelve fields: v2 plus the fault-kind tag and a checksum.
    V3,
}

impl LineVersion {
    fn number(self) -> u8 {
        match self {
            LineVersion::V1 => 1,
            LineVersion::V2 => 2,
            LineVersion::V3 => 3,
        }
    }
}

/// Parses a journal record line, reporting which format version it was.
/// [`read_journal`] rejects lines whose version disagrees with the header:
/// a v3 line torn after its tenth comma masquerades as well-formed v2 (and
/// after its ninth as v1), and only the version check stops it from
/// resurfacing as a record with fields silently dropped.
fn parse_journal_line(line: &str) -> Option<(Record, LineVersion)> {
    let line = line.trim_end();
    let mut it = line.split(',');
    let mut rec = Record {
        problem_id: it.next()?.parse().ok()?,
        difficulty: parse_difficulty_tag(it.next()?)?,
        level: parse_level_tag(it.next()?)?,
        temperature: it.next()?.parse().ok()?,
        n: it.next()?.parse().ok()?,
        compiled: parse_flag(it.next()?)?,
        passed: parse_flag(it.next()?)?,
        fault: parse_flag(it.next()?)?,
        latency_s: it.next()?.parse().ok()?,
        fault_kind: None,
        lint: None,
    };
    let version = match it.next() {
        None => LineVersion::V1, // legacy 9-field line
        Some(lint_field) => {
            if lint_field != "-" {
                rec.lint = Some(LintCounts::from_journal_field(lint_field)?);
            }
            match it.next() {
                None => LineVersion::V2,
                Some(kind_field) => {
                    rec.fault_kind = FaultKind::from_journal_tag(kind_field)?;
                    let sum = it.next()?;
                    if it.next().is_some() {
                        return None; // trailing fields: not ours
                    }
                    // The checksum covers every byte before its own comma.
                    let prefix = &line[..line.len() - sum.len() - 1];
                    if sum != format!("{:08x}", fnv1a(prefix.as_bytes()) & 0xffff_ffff) {
                        return None;
                    }
                    if rec.fault != rec.fault_kind.is_some() {
                        return None; // flag and kind must agree
                    }
                    LineVersion::V3
                }
            }
        }
    };
    if version != LineVersion::V3 && rec.fault {
        // Pre-v3 journals could only record panic faults; resumed fault
        // records keep that classification rather than an unknowable one.
        rec.fault_kind = Some(FaultKind::Panic);
    }
    Some((rec, version))
}

fn difficulty_tag(d: Difficulty) -> &'static str {
    match d {
        Difficulty::Basic => "B",
        Difficulty::Intermediate => "I",
        Difficulty::Advanced => "A",
    }
}

fn parse_difficulty_tag(s: &str) -> Option<Difficulty> {
    match s {
        "B" => Some(Difficulty::Basic),
        "I" => Some(Difficulty::Intermediate),
        "A" => Some(Difficulty::Advanced),
        _ => None,
    }
}

fn parse_level_tag(s: &str) -> Option<PromptLevel> {
    PromptLevel::ALL.into_iter().find(|l| l.tag() == s)
}

fn parse_flag(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// All records from evaluating one engine over a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRun {
    /// Engine display name.
    pub engine: String,
    /// Per-completion records.
    pub records: Vec<Record>,
}

/// When the journal writer calls fsync (`File::sync_data`) on the journal
/// file. Independent of the per-record *flush*, which always happens: a
/// flushed-but-unsynced journal survives a process kill (the contiguous-
/// prefix invariant holds), while fsync is about surviving power loss or a
/// host crash, where the page cache dies with the kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync — the historical behaviour and the default. A `kill -9`
    /// loses nothing; an OS crash may lose the unsynced tail (which
    /// recovery then truncates away).
    #[default]
    Never,
    /// fsync after every record: maximal durability, one device round-trip
    /// per check.
    EveryRecord,
    /// fsync every `n` records, and once more when the run finishes.
    Interval(u32),
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `never`, `every`, or `interval:N` (N ≥ 1).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed spec.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "never" => Ok(FsyncPolicy::Never),
            "every" => Ok(FsyncPolicy::EveryRecord),
            _ => match s.strip_prefix("interval:").map(str::parse) {
                Some(Ok(n)) if n >= 1 => Ok(FsyncPolicy::Interval(n)),
                _ => Err(format!(
                    "bad fsync policy `{s}` (expected never, every, or interval:N)"
                )),
            },
        }
    }
}

/// Execution options for a sweep: worker count, progress reporting, dedup,
/// per-check supervision and journal durability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Checker worker threads. `1` runs every check inline on the calling
    /// thread (the serial path); `0` means "use
    /// [`SweepOptions::auto_jobs`]". Results are merged through a
    /// deterministic reorder buffer, so any value produces byte-identical
    /// reports and journals.
    pub jobs: usize,
    /// Emit a periodic one-line progress/throughput counter to stderr
    /// from the merge loop. Callers should gate this on stdout being a
    /// TTY ([`SweepOptions::progress_auto`]) so CI logs stay clean.
    pub progress: bool,
    /// Completion-dedup cache (on by default): identical completion texts
    /// for the same (problem, prompt level) are compiled and simulated
    /// once, and every duplicate replays the cached outcome. Checks are
    /// deterministic in those inputs, so reports and journals are
    /// byte-identical with the cache on or off.
    pub dedup: bool,
    /// Per-check supervision: wall-clock deadline, retry budget and chaos
    /// injection ([`CheckPolicy`]). The default has no deadline and no
    /// chaos — bit-exact historical behaviour, and what determinism-gated
    /// CI uses (wall-clock timeouts are inherently nondeterministic).
    pub policy: CheckPolicy,
    /// When the journal writer fsyncs the journal file
    /// ([`FsyncPolicy`]); ignored for unjournaled runs.
    pub fsync: FsyncPolicy,
    /// How long the parallel merge loop waits for any single pool result
    /// before declaring the pool stalled and degrading: every outstanding
    /// item is recorded as a hard-timeout fault and the pool's threads are
    /// abandoned, so a wedged worker costs records, not the sweep. `None`
    /// uses a 300 s backstop — per-check supervision (`policy.timeout`)
    /// is the intended first line of defence; this field mostly exists so
    /// tests can exercise the stall path quickly.
    pub stall_timeout: Option<Duration>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 1,
            progress: false,
            dedup: true,
            policy: CheckPolicy::default(),
            fsync: FsyncPolicy::Never,
            stall_timeout: None,
        }
    }
}

impl SweepOptions {
    /// Serial execution, no progress output (the historical behaviour).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Parallel execution with `jobs` workers (`0` = auto), no progress.
    pub fn parallel(jobs: usize) -> Self {
        SweepOptions {
            jobs,
            ..Self::default()
        }
    }

    /// The default worker count: the machine's available parallelism.
    pub fn auto_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Whether progress output should be enabled by default: only when
    /// stdout is a terminal (an interactive run), never into CI logs or
    /// redirected reports.
    pub fn progress_auto() -> bool {
        io::stdout().is_terminal()
    }

    /// The worker count this configuration resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            Self::auto_jobs()
        } else {
            self.jobs
        }
    }
}

/// Which slice of a sweep's check phase this executor instance owns.
///
/// Sharding is by canonical grid position, round-robin: shard `k` of `n`
/// owns positions `{k, k+n, k+2n, …}`. The generate phase still walks the
/// *full* grid on every shard (serial generation is what pins the engine's
/// RNG stream), so the records a shard produces are byte-identical to the
/// corresponding subsequence of a single-shard run — which is what makes
/// the per-shard journals mergeable back into the exact single-journal
/// byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards. `0` or `1` both mean "unsharded".
    pub count: u32,
}

impl ShardSpec {
    /// The unsharded spec: one shard owning every position.
    pub fn single() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Whether this spec is effectively unsharded.
    pub fn is_single(&self) -> bool {
        self.count <= 1
    }

    /// Whether this shard owns canonical grid position `pos`.
    pub fn owns(&self, pos: usize) -> bool {
        self.is_single() || pos % self.count as usize == self.index as usize
    }

    /// Rejects out-of-range specs (`index >= count` when sharded).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] with a message naming the bad spec.
    pub fn validate(&self) -> io::Result<()> {
        if !self.is_single() && self.index >= self.count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard index {} out of range for {} shards",
                    self.index, self.count
                ),
            ));
        }
        Ok(())
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::single()
    }
}

/// Shared callback invoked for each fresh [`Record`] with
/// `(record, done, total)`; see [`SweepHooks::observer`].
pub type RecordObserver = std::sync::Arc<dyn Fn(&Record, usize, usize) + Send + Sync>;

/// Per-run hooks a caller (the eval service) can attach to a sweep without
/// perturbing its byte-determinism: a record observer for streaming
/// progress, and a cancellation token checked between checks.
#[derive(Clone, Default)]
pub struct SweepHooks {
    /// Called once per freshly produced record, in canonical order, with
    /// `(record, done, total)` where `done`/`total` count this shard's
    /// records. Not called for records replayed from a resumed journal.
    pub observer: Option<RecordObserver>,
    /// Cooperative cancellation: polled before each serial check and on
    /// every merge-loop wakeup. When it fires, the sweep stops issuing
    /// work, finishes the journal cleanly (a valid resumable prefix) and
    /// returns [`io::ErrorKind::Interrupted`].
    pub cancel: Option<vgen_obs::CancelToken>,
}

impl SweepHooks {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(vgen_obs::CancelToken::poll)
    }

    fn observe(&self, rec: &Record, done: usize, total: usize) {
        // Live-progress counters for the metrics plane. Write-only from
        // the sweep's perspective: recording cannot change a byte of
        // report or journal output.
        vgen_obs::counter_add("sweep.items_done", 1);
        if rec.fault {
            vgen_obs::counter_add("sweep.items_fault", 1);
        } else if rec.passed {
            vgen_obs::counter_add("sweep.items_pass", 1);
        } else {
            vgen_obs::counter_add("sweep.items_fail", 1);
        }
        // The observing thread (a shard supervisor draining the reorder
        // buffer) records no spans, so its periodic self-flush never arms;
        // drain per record so live snapshots track progress. No-op when
        // recording is off, one uncontended lock otherwise.
        vgen_obs::flush();
        if let Some(obs) = &self.observer {
            obs(rec, done, total);
        }
    }
}

impl std::fmt::Debug for SweepHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepHooks")
            .field("observer", &self.observer.as_ref().map(|_| "Fn"))
            .field("cancel", &self.cancel)
            .finish()
    }
}

/// One flattened unit of work: a single completion to check, tagged with
/// its canonical position in the grid walk.
struct WorkItem {
    pos: usize,
    problem: &'static Problem,
    level: PromptLevel,
    temperature: f64,
    n: usize,
    completion: Completion,
}

/// The slice of a work item needed to synthesise a fault record if the
/// pool reports that its task panicked outside the per-check guard.
#[derive(Clone, Copy)]
struct ItemMeta {
    problem_id: u8,
    difficulty: Difficulty,
    level: PromptLevel,
    temperature: f64,
    n: usize,
    latency_s: f64,
}

impl WorkItem {
    fn meta(&self) -> ItemMeta {
        ItemMeta {
            problem_id: self.problem.id,
            difficulty: self.problem.difficulty,
            level: self.level,
            temperature: self.temperature,
            n: self.n,
            latency_s: self.completion.latency_s,
        }
    }
}

impl ItemMeta {
    fn fault_record(&self, kind: FaultKind) -> Record {
        Record {
            problem_id: self.problem_id,
            difficulty: self.difficulty,
            level: self.level,
            temperature: self.temperature,
            n: self.n,
            compiled: false,
            passed: false,
            fault: true,
            fault_kind: Some(kind),
            latency_s: self.latency_s,
            lint: None,
        }
    }
}

/// Checks one completion (under the supervision policy's guard, deadline
/// and retry budget) and builds its record.
fn check_to_record(
    prob: &'static Problem,
    level: PromptLevel,
    temperature: f64,
    n: usize,
    c: &Completion,
    sim: SimConfig,
    policy: &CheckPolicy,
) -> Record {
    let result = supervised_check_completion(prob, level, &c.text, sim, policy);
    let fault_kind = result.outcome.fault_kind();
    Record {
        problem_id: prob.id,
        difficulty: prob.difficulty,
        level,
        temperature,
        n,
        compiled: result.outcome.compiled(),
        passed: result.outcome.passed(),
        fault: fault_kind.is_some(),
        fault_kind,
        latency_s: c.latency_s,
        lint: result.lint,
    }
}

fn check_item(item: &WorkItem, sim: SimConfig, policy: &CheckPolicy) -> Record {
    let _span = vgen_obs::span("check");
    check_to_record(
        item.problem,
        item.level,
        item.temperature,
        item.n,
        &item.completion,
        sim,
        policy,
    )
}

/// Whether the injected pool-task panic ([`ChaosSite::TaskPanic`]) fires
/// for the item at canonical position `pos`. Consulted on the serial path
/// too — synthesizing the same fault record the parallel pool-plumbing
/// path produces — so chaos runs stay byte-identical across `--jobs`.
fn task_panic_fires(chaos: &ChaosSpec, pos: usize) -> bool {
    !chaos.is_empty()
        && chaos
            .fires(ChaosSite::TaskPanic, &(pos as u64).to_le_bytes())
            .is_some()
}

/// Cache key for the completion-dedup cache: a fingerprint of the
/// (problem, prompt level) pair and the FNV-1a hash of the completion
/// text. `config.sim` is fixed for the duration of a sweep, so these are
/// the only check inputs that can change an outcome.
fn dedup_key(item: &WorkItem) -> (u64, u64) {
    let fp = fnv1a(format!("{}:{}", item.problem.id, item.level.tag()).as_bytes());
    (fp, fnv1a(item.completion.text.as_bytes()))
}

/// The outcome fields of one checked completion as stored in the dedup
/// cache. Per-sample fields (grid coordinates, latency) come from the
/// duplicate's own [`ItemMeta`] at replay time, so a replayed [`Record`] is
/// identical to what a fresh check of the same text would have produced.
/// Harness faults are cached too: the guard makes them deterministic per
/// completion text, and skipping them would make hit counts differ between
/// the serial and parallel paths.
#[derive(Clone)]
struct CachedCheck {
    compiled: bool,
    passed: bool,
    fault: bool,
    fault_kind: Option<FaultKind>,
    lint: Option<LintCounts>,
}

impl CachedCheck {
    fn of(rec: &Record) -> CachedCheck {
        CachedCheck {
            compiled: rec.compiled,
            passed: rec.passed,
            fault: rec.fault,
            fault_kind: rec.fault_kind,
            lint: rec.lint.clone(),
        }
    }

    fn replay(&self, meta: ItemMeta) -> Record {
        Record {
            problem_id: meta.problem_id,
            difficulty: meta.difficulty,
            level: meta.level,
            temperature: meta.temperature,
            n: meta.n,
            compiled: self.compiled,
            passed: self.passed,
            fault: self.fault,
            fault_kind: self.fault_kind,
            latency_s: meta.latency_s,
            lint: self.lint.clone(),
        }
    }
}

/// Execution statistics from one sweep. Deliberately *not* part of
/// [`EvalRun`]: reports and determinism comparisons are over records only,
/// which is what keeps output byte-identical across cache and job settings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Completions actually compiled and simulated this run.
    pub checks_run: usize,
    /// Completions replayed from the dedup cache.
    pub cache_hits: usize,
    /// Records reused from a resumed journal (the resume cursor).
    pub resumed_records: usize,
    /// Journal lines dropped by recovery on resume: the first torn or
    /// corrupt line and everything after it.
    pub repaired_lines: usize,
}

impl SweepStats {
    /// Fraction of this run's checks served from the cache (0 when the
    /// run was empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.checks_run + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The generate phase: walks the grid in its (deterministic) canonical
/// order, querying the engine for every cell and flattening every
/// completion into a [`WorkItem`]. The engine is always queried for every
/// cell — even cells whose records will be reused from a journal — so the
/// engine's RNG stream is identical across a fresh run and a resumed one,
/// and across worker counts.
fn generate_items(engine: &mut dyn CompletionEngine, config: &EvalConfig) -> Vec<WorkItem> {
    let mut items = Vec::new();
    let mut pos = 0usize;
    for &pid in &config.problem_ids {
        let prob = problem(pid).unwrap_or_else(|| panic!("unknown problem id {pid}"));
        for &level in &config.levels {
            for &t in &config.temperatures {
                for &n in &config.ns {
                    for completion in engine.generate(prob, level, t, n) {
                        items.push(WorkItem {
                            pos,
                            problem: prob,
                            level,
                            temperature: t,
                            n,
                            completion,
                        });
                        pos += 1;
                    }
                }
            }
        }
    }
    items
}

/// Runs an engine over the grid, checking every completion serially.
///
/// J1-Large skips n = 25 upstream (the engine name containing "J1" is not
/// inspected here — pass a config without 25 for that model, as the bench
/// binaries do, mirroring §IV-B).
pub fn run_engine(engine: &mut dyn CompletionEngine, config: &EvalConfig) -> EvalRun {
    run_engine_sweep(engine, config, None, &SweepOptions::serial())
        .expect("in-memory serial sweep cannot fail")
}

/// [`run_engine`] with `jobs` checker workers (`0` = auto). Produces
/// records identical to the serial path.
///
/// # Errors
///
/// None in practice for in-memory runs: a stalled worker pool degrades to
/// hard-timeout stall records rather than failing the sweep (see
/// [`SweepOptions::stall_timeout`]).
pub fn run_engine_parallel(
    engine: &mut dyn CompletionEngine,
    config: &EvalConfig,
    jobs: usize,
) -> io::Result<EvalRun> {
    run_engine_sweep(engine, config, None, &SweepOptions::parallel(jobs))
}

/// Journal format marker (first token of the header line) for journals
/// written by this version: record lines carry twelve fields — the ten v2
/// fields plus a fault-kind tag and a per-record checksum.
const JOURNAL_MAGIC: &str = "vgen-journal-v3";

/// The pre-fault-kind journal format: ten-field record lines, no checksum.
/// Still accepted on read/resume; a resumed journal is rewritten in v3
/// form.
const JOURNAL_MAGIC_V2: &str = "vgen-journal-v2";

/// The pre-lint journal format: nine-field record lines. Still accepted on
/// read/resume (records come back with `lint: None`); a resumed journal is
/// rewritten in v3 form.
const JOURNAL_MAGIC_V1: &str = "vgen-journal-v1";

/// FNV-1a, used for the config fingerprint in journal headers.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of the evaluation grid (and sim limits) a journal
/// was produced under. A resume against a journal whose fingerprint does
/// not match the current config is rejected rather than silently mixing
/// records from different grids.
pub fn config_fingerprint(config: &EvalConfig) -> u64 {
    let mut s = String::new();
    for t in &config.temperatures {
        s.push_str(&format!("t{t};"));
    }
    for n in &config.ns {
        s.push_str(&format!("n{n};"));
    }
    for l in &config.levels {
        s.push_str(&format!("l{};", l.tag()));
    }
    for p in &config.problem_ids {
        s.push_str(&format!("p{p};"));
    }
    s.push_str(&format!(
        "sim{}:{}:{}",
        config.sim.max_time, config.sim.max_steps, config.sim.max_output_bytes
    ));
    fnv1a(s.as_bytes())
}

/// Renders the header line a current-format (v3) journal starts with,
/// optionally shard-tagged. Shared with the eval service, which writes
/// seeded shard journals and merged journals that must be byte-identical
/// to what the executor itself writes.
pub fn journal_header(fp: u64, engine: &str, shard: Option<(u32, u32)>) -> String {
    match shard {
        Some((i, n)) => {
            format!("# {JOURNAL_MAGIC} fingerprint={fp:016x} shard={i}/{n} engine={engine}")
        }
        None => format!("# {JOURNAL_MAGIC} fingerprint={fp:016x} engine={engine}"),
    }
}

/// What [`read_journal_recovering`] had to do to make sense of a journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal format version the header declared (1, 2 or 3).
    pub version: u8,
    /// Well-formed records kept — the longest valid prefix.
    pub kept: usize,
    /// Lines dropped after the valid prefix: the first torn/corrupt line
    /// and everything after it. `0` for a clean journal.
    pub dropped_lines: usize,
    /// `(index, count)` when the header declares this a shard journal
    /// (`shard=index/count`), `None` for an ordinary single journal.
    pub shard: Option<(u32, u32)>,
}

/// Reads a journal file: header validation plus all well-formed record
/// lines. Returns `(engine_name, config_fingerprint, records)`.
///
/// # Errors
///
/// As for [`read_journal_recovering`], which this wraps (discarding the
/// [`RecoveryReport`]).
pub fn read_journal(path: &Path) -> io::Result<(String, u64, Vec<Record>)> {
    read_journal_recovering(path).map(|(name, fp, recs, _)| (name, fp, recs))
}

/// [`read_journal`] that also reports what recovery did: how many records
/// form the longest valid prefix and how many trailing lines were dropped
/// as torn or corrupt. Recovery never trusts anything after the first bad
/// line — a checksum mismatch means the tail can no longer be attributed
/// to the canonical record stream, so resuming re-checks it instead.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] if the header is missing,
/// malformed, or declares a journal format version this build does not
/// read (the error message says which version and what to do).
pub fn read_journal_recovering(
    path: &Path,
) -> io::Result<(String, u64, Vec<Record>, RecoveryReport)> {
    // Read raw bytes, not lines-of-String: a crash (or bit rot) can leave
    // arbitrary garbage in the tail, and a non-UTF-8 line must be treated
    // as the first corrupt line — truncating the journal there — rather
    // than failing the whole read.
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty journal"));
    }
    let mut segments: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    // A well-formed journal ends in a newline; the split's trailing empty
    // segment is not a line.
    if segments.last().is_some_and(|s| s.is_empty()) {
        segments.pop();
    }
    let mut lines = segments.into_iter();
    let header = lines
        .next()
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "not a vgen journal"))?;
    let (rest, version) =
        if let Some(r) = header.strip_prefix(&format!("# {JOURNAL_MAGIC} fingerprint=")) {
            (r, LineVersion::V3)
        } else if let Some(r) = header.strip_prefix(&format!("# {JOURNAL_MAGIC_V2} fingerprint=")) {
            (r, LineVersion::V2)
        } else if let Some(r) = header.strip_prefix(&format!("# {JOURNAL_MAGIC_V1} fingerprint=")) {
            (r, LineVersion::V1)
        } else if let Some(r) = header.strip_prefix("# vgen-journal-v") {
            // A well-formed header from a future format: refuse loudly rather
            // than misparse its records as torn lines and silently re-run the
            // whole grid over them.
            let ver: String = r.chars().take_while(char::is_ascii_digit).collect();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal declares unsupported format v{ver} (this build reads v1-v3); \
                 use a vgen build that writes v{ver}, or start fresh by deleting the \
                 journal file or dropping --resume"
                ),
            ));
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a vgen journal",
            ));
        };
    let (fp_and_shard, engine) = rest
        .split_once(" engine=")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed journal header"))?;
    // The shard tag sits *between* fingerprint and engine so that a
    // pre-shard build handed a shard journal fails loudly ("malformed
    // journal fingerprint") instead of silently resuming a fraction of the
    // grid as if it were the whole run.
    let (fp_hex, shard) = match fp_and_shard.split_once(" shard=") {
        Some((f, s)) => {
            let parsed = s.split_once('/').and_then(|(i, n)| {
                let i: u32 = i.parse().ok()?;
                let n: u32 = n.parse().ok()?;
                (n > 1 && i < n).then_some((i, n))
            });
            let Some(pair) = parsed else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed journal shard tag `{s}`"),
                ));
            };
            (f, Some(pair))
        }
        None => (fp_and_shard, None),
    };
    if shard.is_some() && version != LineVersion::V3 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "shard journals require the v3 journal format",
        ));
    }
    let fp = u64::from_str_radix(fp_hex, 16)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "malformed journal fingerprint"))?;
    let mut records = Vec::new();
    let mut dropped = 0usize;
    let mut valid_prefix = true;
    for raw in lines {
        if valid_prefix {
            // A line that is not UTF-8 is corrupt by definition; one that
            // is gets the full field/checksum validation.
            match std::str::from_utf8(raw).ok().and_then(parse_journal_line) {
                // The line's version must match the header's: in a v3
                // journal a ten-field line is a torn write (a v3 line cut
                // after its tenth comma masquerades as well-formed v2),
                // and in a v1 journal a longer line is foreign.
                Some((r, v)) if v == version => {
                    records.push(r);
                    continue;
                }
                // A torn final line is expected after a kill; everything
                // from here on is untrusted and only counted.
                _ => valid_prefix = false,
            }
        }
        dropped += 1;
    }
    let report = RecoveryReport {
        version: version.number(),
        kept: records.len(),
        dropped_lines: dropped,
        shard,
    };
    Ok((engine.to_string(), fp, records, report))
}

/// Like [`run_engine`], but appends every record to a line-oriented journal
/// at `path` as it is produced, and — when `resume` is true and `path`
/// already holds a journal for the same engine and config — skips the
/// checks for records already journaled, reusing them verbatim.
///
/// The engine is still queried for every grid cell on resume, so a resumed
/// run produces byte-identical records to an uninterrupted one.
///
/// # Errors
///
/// I/O errors reading/writing the journal, or
/// [`io::ErrorKind::InvalidData`] when resuming against a journal whose
/// engine name or config fingerprint does not match.
pub fn run_engine_journaled(
    engine: &mut dyn CompletionEngine,
    config: &EvalConfig,
    path: &Path,
    resume: bool,
) -> io::Result<EvalRun> {
    run_engine_sweep(
        engine,
        config,
        Some((path, resume)),
        &SweepOptions::serial(),
    )
}

/// Default for [`SweepOptions::stall_timeout`]: how long the merge loop
/// waits for a single pool result before declaring the pool stalled and
/// degrading to stall records. Every check is bounded by the parser,
/// elaborator and simulator resource budgets, so a healthy pool delivers
/// results orders of magnitude faster than this even in debug builds.
const RESULT_TIMEOUT: Duration = Duration::from_secs(300);

/// The dedicated journal writer: all journal lines — from every worker —
/// funnel through this one thread, in canonical order, one flush per
/// record. Serialising writes here (rather than locking the file in each
/// worker) keeps the on-disk journal a torn-line-free, contiguous prefix
/// of the canonical record stream, which is exactly the invariant
/// `--resume` relies on.
struct JournalWriter {
    tx: Option<std::sync::mpsc::Sender<String>>,
    handle: std::thread::JoinHandle<io::Result<()>>,
}

impl JournalWriter {
    fn spawn(mut file: std::fs::File, fsync: FsyncPolicy, chaos: ChaosSpec) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        let handle = std::thread::Builder::new()
            .name("vgen-journal".into())
            .spawn(move || {
                let mut since_sync = 0u32;
                for line in rx {
                    if let Some(prefix) = chaos.fires(ChaosSite::JournalTorn, line.as_bytes()) {
                        // Injected torn write followed by a crash: persist
                        // only a prefix of the line (synced, so it is
                        // really on disk) and fail the writer the way a
                        // dying process would.
                        let cut = (prefix as usize).min(line.len());
                        file.write_all(&line.as_bytes()[..cut])?;
                        file.flush()?;
                        let _ = file.sync_data();
                        vgen_obs::counter_add("journal.torn", 1);
                        return Err(io::Error::other("chaos: injected torn journal write"));
                    }
                    writeln!(file, "{line}")?;
                    file.flush()?;
                    vgen_obs::counter_add("journal.write", 1);
                    match fsync {
                        FsyncPolicy::Never => {}
                        FsyncPolicy::EveryRecord => {
                            file.sync_data()?;
                            vgen_obs::counter_add("journal.fsync", 1);
                        }
                        FsyncPolicy::Interval(n) => {
                            since_sync += 1;
                            if since_sync >= n.max(1) {
                                since_sync = 0;
                                file.sync_data()?;
                                vgen_obs::counter_add("journal.fsync", 1);
                            }
                        }
                    }
                }
                if matches!(fsync, FsyncPolicy::Interval(_)) {
                    // Sync the tail the interval hasn't covered yet.
                    file.sync_data()?;
                    vgen_obs::counter_add("journal.fsync", 1);
                }
                Ok(())
            })
            .expect("spawn journal writer");
        JournalWriter {
            tx: Some(tx),
            handle,
        }
    }

    /// Queues one record line. Errors surface in [`JournalWriter::finish`].
    fn write(&self, line: String) {
        if let Some(tx) = &self.tx {
            // A send error means the writer already failed; the I/O error
            // itself is reported by finish().
            let _ = tx.send(line);
        }
    }

    /// Closes the stream and joins the writer, propagating any I/O error.
    fn finish(mut self) -> io::Result<()> {
        drop(self.tx.take());
        self.handle
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("journal writer panicked")))
    }
}

/// Periodic progress/throughput line, emitted from the merge loop.
struct Progress {
    enabled: bool,
    total: usize,
    done: usize,
    completed_this_run: usize,
    started: Instant,
    last_print: Instant,
}

impl Progress {
    const PRINT_EVERY: Duration = Duration::from_millis(250);

    fn new(enabled: bool, total: usize, already_done: usize) -> Self {
        let now = Instant::now();
        Progress {
            enabled,
            total,
            done: already_done,
            completed_this_run: 0,
            started: now,
            // Backdate so the first completed check prints immediately.
            last_print: now - Self::PRINT_EVERY,
        }
    }

    fn tick(&mut self) {
        self.done += 1;
        self.completed_this_run += 1;
        if !self.enabled {
            return;
        }
        if self.last_print.elapsed() >= Self::PRINT_EVERY || self.done == self.total {
            let rate =
                self.completed_this_run as f64 / self.started.elapsed().as_secs_f64().max(1e-9);
            eprint!(
                "\r[eval] {}/{} checks  {:.1} checks/s   ",
                self.done, self.total, rate
            );
            self.last_print = Instant::now();
        }
    }

    fn finish(&self) {
        if self.enabled && self.completed_this_run > 0 {
            eprintln!();
        }
    }
}

/// The unified sweep executor behind [`run_engine`],
/// [`run_engine_parallel`] and [`run_engine_journaled`]: generate phase,
/// optional journal (with resume), and a serial or pooled check phase
/// merged deterministically. See the module docs for the execution model.
///
/// # Errors
///
/// I/O errors reading/writing the journal, or
/// [`io::ErrorKind::InvalidData`] when resuming against a mismatched or
/// unsupported journal. A stalled worker pool is *not* an error: the
/// outstanding items are recorded as hard-timeout faults and the sweep
/// completes.
pub fn run_engine_sweep(
    engine: &mut dyn CompletionEngine,
    config: &EvalConfig,
    journal: Option<(&Path, bool)>,
    opts: &SweepOptions,
) -> io::Result<EvalRun> {
    run_engine_sweep_stats(engine, config, journal, opts).map(|(run, _)| run)
}

/// [`run_engine_sweep`] that additionally reports [`SweepStats`] (checks
/// executed vs dedup-cache hits). The returned [`EvalRun`] is identical to
/// [`run_engine_sweep`]'s for the same inputs.
///
/// # Errors
///
/// As for [`run_engine_sweep`].
pub fn run_engine_sweep_stats(
    engine: &mut dyn CompletionEngine,
    config: &EvalConfig,
    journal: Option<(&Path, bool)>,
    opts: &SweepOptions,
) -> io::Result<(EvalRun, SweepStats)> {
    run_engine_sweep_sharded(
        engine,
        config,
        journal,
        opts,
        ShardSpec::single(),
        &SweepHooks::default(),
    )
}

/// [`run_engine_sweep_stats`] generalised over sharding and per-run hooks
/// — the substrate the eval service (`vgen-serve`) builds on.
///
/// With a non-single [`ShardSpec`] the generate phase still walks the full
/// grid (pinning the engine RNG stream), but only positions the shard owns
/// are checked and journaled; the journal header gains a `shard=k/n` tag
/// and the returned [`EvalRun`] holds only the shard's records, in
/// canonical order. Merging the shard journals round-robin reconstructs
/// the exact byte stream a single-shard run writes.
///
/// [`SweepHooks::observer`] streams each fresh record; [`SweepHooks::cancel`]
/// stops the sweep between checks, leaving the journal a valid resumable
/// prefix.
///
/// # Errors
///
/// As for [`run_engine_sweep_stats`], plus [`io::ErrorKind::InvalidInput`]
/// for an out-of-range shard spec, [`io::ErrorKind::InvalidData`] when
/// resuming a journal whose shard tag does not match, and
/// [`io::ErrorKind::Interrupted`] when the cancel token fires (the journal
/// is finished cleanly first).
pub fn run_engine_sweep_sharded(
    engine: &mut dyn CompletionEngine,
    config: &EvalConfig,
    journal: Option<(&Path, bool)>,
    opts: &SweepOptions,
    shard: ShardSpec,
    hooks: &SweepHooks,
) -> io::Result<(EvalRun, SweepStats)> {
    shard.validate()?;
    let shard_tag = (!shard.is_single()).then_some((shard.index, shard.count));
    let name = engine.name();
    let fp = config_fingerprint(config);
    let mut prior: Vec<Record> = Vec::new();
    let mut writer: Option<JournalWriter> = None;
    let mut stats = SweepStats::default();
    if let Some((path, resume)) = journal {
        if resume && path.exists() {
            let (jname, jfp, recs, recovery) = read_journal_recovering(path)?;
            if jname != name {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal is for engine `{jname}`, not `{name}`"),
                ));
            }
            if jfp != fp {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal config fingerprint {jfp:016x} != {fp:016x}"),
                ));
            }
            if recovery.shard != shard_tag {
                let found = match recovery.shard {
                    Some((i, n)) => format!("shard {i}/{n}"),
                    None => "unsharded".to_string(),
                };
                let want = match shard_tag {
                    Some((i, n)) => format!("shard {i}/{n}"),
                    None => "unsharded".to_string(),
                };
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal is {found}, this run is {want}"),
                ));
            }
            stats.repaired_lines = recovery.dropped_lines;
            if recovery.dropped_lines > 0 {
                vgen_obs::counter_add("journal.repair", recovery.dropped_lines as u64);
            }
            prior = recs;
        }
        // (Re)write header + surviving records; on resume this also
        // truncates any torn trailing suffix left by a kill (and upgrades
        // pre-v3 records to the current line format).
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", journal_header(fp, &name, shard_tag))?;
        for r in &prior {
            writeln!(f, "{}", r.to_journal_line())?;
        }
        f.flush()?;
        writer = Some(JournalWriter::spawn(
            f,
            opts.fsync,
            opts.policy.chaos.clone(),
        ));
    }

    let mut items = generate_items(engine, config);
    if !shard.is_single() {
        // The full grid was generated (above) to keep the engine RNG
        // stream shard-independent; this shard only checks what it owns.
        items.retain(|it| shard.owns(it.pos));
    }
    let total = items.len();
    // Advertise this shard's slice of the grid to the metrics plane: the
    // per-shard contributions sum to the full grid, and resumed records
    // count as done without re-observation.
    vgen_obs::counter_add("sweep.items_total", total as u64);
    // The fingerprint pins the grid, so a well-formed journal never holds
    // more than `total` records; clamp anyway so a hand-edited journal
    // cannot push the resume cursor past the grid.
    prior.truncate(total);
    let done_prior = prior.len();
    vgen_obs::counter_add("sweep.items_done", done_prior as u64);
    // This thread may push no spans of its own (shard supervisors mostly
    // wait on the pool), so drain the totals to the accumulator now
    // rather than at thread exit — live snapshots need them up front.
    vgen_obs::flush();
    stats.resumed_records = done_prior;
    let mut progress = Progress::new(opts.progress, total, done_prior);
    let mut records = prior;
    let jobs = opts.effective_jobs();
    // The dedup cache is never seeded from resumed (prior) records: v1
    // journals carry no lint field, and replaying their `lint: None` into
    // fresh duplicates would make a resumed run differ from a fresh one.
    // Duplicates of prior completions simply get checked again.
    let use_cache = opts.dedup;
    let mut interrupted = false;

    if jobs <= 1 {
        // Serial path: check inline, in canonical order, consulting the
        // cache before each check.
        let mut cache: HashMap<(u64, u64), CachedCheck> = HashMap::new();
        for item in items.into_iter().skip(done_prior) {
            if hooks.cancelled() {
                interrupted = true;
                break;
            }
            let key = dedup_key(&item);
            let cached = if use_cache {
                cache.get(&key).cloned()
            } else {
                None
            };
            let rec = match cached {
                Some(hit) => {
                    stats.cache_hits += 1;
                    vgen_obs::counter_add("dedup.hit", 1);
                    hit.replay(item.meta())
                }
                None => {
                    let rec = if task_panic_fires(&opts.policy.chaos, item.pos) {
                        item.meta().fault_record(FaultKind::Panic)
                    } else {
                        check_item(&item, config.sim, &opts.policy)
                    };
                    stats.checks_run += 1;
                    if use_cache {
                        cache.insert(key, CachedCheck::of(&rec));
                    }
                    rec
                }
            };
            if let Some(w) = &writer {
                w.write(rec.to_journal_line());
            }
            hooks.observe(&rec, records.len() + 1, total);
            records.push(rec);
            progress.tick();
        }
    } else {
        // Parallel path: dispatch to the work-stealing pool, merge back
        // into canonical order through the reorder buffer.
        let metas: Vec<ItemMeta> = items.iter().skip(done_prior).map(WorkItem::meta).collect();
        let pool: WorkerPool<Record> = WorkerPool::new(jobs);
        let sim = config.sim;
        // Leader/follower dedup: the first item (in canonical order) for
        // each key is submitted as its leader; later duplicates are parked
        // under the leader's position and replayed when its result
        // arrives. Leaders are picked in the same order the serial path
        // consults its cache, so hit counts — and every record — are
        // identical across `--jobs` values.
        let mut leader_of: HashMap<(u64, u64), usize> = HashMap::new();
        let mut followers: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut outstanding: BTreeSet<usize> = BTreeSet::new();
        let mut submitted = 0usize;
        for (dense, item) in items.into_iter().enumerate().skip(done_prior) {
            if use_cache {
                match leader_of.entry(dedup_key(&item)) {
                    Entry::Occupied(leader) => {
                        followers.entry(*leader.get()).or_default().push(dense);
                        stats.cache_hits += 1;
                        vgen_obs::counter_add("dedup.hit", 1);
                        continue;
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(dense);
                    }
                }
            }
            let policy = opts.policy.clone();
            outstanding.insert(dense);
            // Pool and reorder-buffer indices are the *dense* per-shard
            // positions (the reorder buffer requires contiguity); chaos
            // stays keyed by the canonical grid position (`item.pos`) so
            // injected faults land on the same records at any shard
            // count. Unsharded, the two coincide.
            pool.submit(dense, move || {
                if task_panic_fires(&policy.chaos, item.pos) {
                    panic!("chaos: injected pool-task panic");
                }
                check_item(&item, sim, &policy)
            });
            submitted += 1;
        }
        stats.checks_run = submitted;
        let stall_timeout = opts.stall_timeout.unwrap_or(RESULT_TIMEOUT);
        // With a cancel token attached, wait in short slices so
        // cancellation latency is bounded by the slice, not the stall
        // window; without one, a single long wait per result as before.
        let slice = if hooks.cancel.is_some() {
            Duration::from_millis(50).min(stall_timeout)
        } else {
            stall_timeout
        };
        let mut reorder = ReorderBuffer::new(done_prior);
        let mut stalled = false;
        'recv: for _received in 0..submitted {
            let waited = Instant::now();
            let (pos, result) = loop {
                if hooks.cancelled() {
                    interrupted = true;
                    break 'recv;
                }
                match pool.recv_timeout(slice) {
                    Ok(r) => break r,
                    Err(_) if waited.elapsed() >= stall_timeout => {
                        stalled = true;
                        break 'recv;
                    }
                    Err(_) => {}
                }
            };
            outstanding.remove(&pos);
            let rec = match result {
                Ok(r) => r,
                // The per-check guard already converts checker panics into
                // fault records, so this arm only fires if the task
                // panicked in pool plumbing around the check. It still
                // costs exactly one fault record, like any harness fault.
                Err(_panic_msg) => metas[pos - done_prior].fault_record(FaultKind::Panic),
            };
            // Replay the leader's outcome into its parked duplicates.
            // Duplicate positions are always greater than the leader's, so
            // pushing them here keeps the reorder buffer contiguous.
            if let Some(dups) = followers.remove(&pos) {
                let cached = CachedCheck::of(&rec);
                for dup in dups {
                    reorder.push(dup, cached.replay(metas[dup - done_prior]));
                }
            }
            reorder.push(pos, rec);
            while let Some(rec) = reorder.pop_ready() {
                if let Some(w) = &writer {
                    w.write(rec.to_journal_line());
                }
                hooks.observe(&rec, records.len() + 1, total);
                records.push(rec);
                progress.tick();
            }
        }
        if interrupted {
            // Keep everything contiguously completed (journal stays a
            // valid resumable prefix), then abandon the pool with its
            // remaining queue discarded — a cancelled request must not
            // keep burning CPU on checks nobody will read.
            while let Some(rec) = reorder.pop_ready() {
                if let Some(w) = &writer {
                    w.write(rec.to_journal_line());
                }
                hooks.observe(&rec, records.len() + 1, total);
                records.push(rec);
                progress.tick();
            }
            pool.abort();
        } else {
            if stalled {
                // No result arrived within the stall window: at least one
                // worker is wedged in a check that escaped per-check
                // supervision. Degrade instead of aborting — every item still
                // owed a result becomes a hard-timeout stall *record*, so the
                // sweep completes and `--resume` sees a coherent journal.
                vgen_obs::counter_add("pool.stall", outstanding.len() as u64);
                eprintln!(
                "[eval] worker pool stalled; recording {} outstanding check(s) as hard timeouts",
                outstanding.len()
            );
                for pos in std::mem::take(&mut outstanding) {
                    let rec = metas[pos - done_prior].fault_record(FaultKind::HardTimeout);
                    if let Some(dups) = followers.remove(&pos) {
                        let cached = CachedCheck::of(&rec);
                        for dup in dups {
                            reorder.push(dup, cached.replay(metas[dup - done_prior]));
                        }
                    }
                    reorder.push(pos, rec);
                }
                while let Some(rec) = reorder.pop_ready() {
                    if let Some(w) = &writer {
                        w.write(rec.to_journal_line());
                    }
                    hooks.observe(&rec, records.len() + 1, total);
                    records.push(rec);
                    progress.tick();
                }
            }
            debug_assert_eq!(reorder.pending_len(), 0, "reorder buffer drained");
            debug_assert!(followers.is_empty(), "every follower replayed");
            if stalled {
                // Joining a wedged worker would hang the sweep right back;
                // abandon the pool's threads instead of shutting down
                // cleanly.
                pool.detach();
            } else {
                pool.shutdown();
            }
        }
    }

    progress.finish();
    if interrupted {
        // Finish the journal writer cleanly first: everything already
        // recorded stays a valid contiguous prefix for --resume.
        if let Some(w) = writer {
            w.finish()?;
        }
        vgen_obs::counter_add("sweep.cancelled", 1);
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!(
                "sweep cancelled after {} of {} record(s)",
                records.len(),
                total
            ),
        ));
    }
    debug_assert_eq!(records.len(), total, "every work item produced a record");
    if let Some(w) = writer {
        w.finish()?;
    }
    Ok((
        EvalRun {
            engine: name,
            records,
        },
        stats,
    ))
}

impl EvalRun {
    /// Tallies records matching a predicate. Harness-fault records are
    /// excluded: they say nothing about the candidate, so counting them
    /// would skew compile/functional rates.
    pub fn tally(&self, keep: impl Fn(&Record) -> bool) -> Tally {
        let mut t = Tally::default();
        for r in self.records.iter().filter(|r| !r.fault && keep(r)) {
            t.record(r.compiled, r.passed);
        }
        t
    }

    /// Number of records where the harness itself faulted.
    pub fn fault_count(&self) -> usize {
        self.records.iter().filter(|r| r.fault).count()
    }

    /// Number of fault records of one [`FaultKind`].
    pub fn fault_count_of(&self, kind: FaultKind) -> usize {
        self.records
            .iter()
            .filter(|r| r.fault_kind == Some(kind))
            .count()
    }

    /// Fault records that were timeouts (soft or hard) rather than panics.
    pub fn timeout_count(&self) -> usize {
        self.fault_count_of(FaultKind::SoftTimeout) + self.fault_count_of(FaultKind::HardTimeout)
    }

    /// Temperatures present in the run.
    pub fn temperatures(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = Vec::new();
        for r in &self.records {
            if !ts.iter().any(|t| (*t - r.temperature).abs() < 1e-12) {
                ts.push(r.temperature);
            }
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN temps"));
        ts
    }

    /// Best-temperature *compile* rate for a difficulty at a given n —
    /// a Table III cell ("the t for each model for which their completions
    /// were most successful").
    pub fn best_compile(&self, difficulty: Difficulty, n: usize) -> f64 {
        self.temperatures()
            .into_iter()
            .map(|t| {
                self.tally(|r| {
                    r.difficulty == difficulty && r.n == n && (r.temperature - t).abs() < 1e-12
                })
                .compile_rate()
            })
            .fold(0.0, f64::max)
    }

    /// Best-temperature *functional* rate for (difficulty, level) at n —
    /// a Table IV cell.
    pub fn best_functional(&self, difficulty: Difficulty, level: PromptLevel, n: usize) -> f64 {
        self.temperatures()
            .into_iter()
            .map(|t| {
                self.tally(|r| {
                    r.difficulty == difficulty
                        && r.level == level
                        && r.n == n
                        && (r.temperature - t).abs() < 1e-12
                })
                .functional_rate()
            })
            .fold(0.0, f64::max)
    }

    /// Mean inference latency in seconds (Table IV time column).
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.latency_s).sum::<f64>() / self.records.len() as f64
    }

    /// Total error-severity lint diagnostics across all records.
    pub fn lint_error_total(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| r.lint.as_ref())
            .map(|l| l.errors as u64)
            .sum()
    }

    /// Total warning-severity lint diagnostics across all records.
    pub fn lint_warning_total(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| r.lint.as_ref())
            .map(|l| l.warnings as u64)
            .sum()
    }

    /// Per-rule lint totals in [`Rule::ALL`] order, zero-count rules
    /// omitted.
    pub fn lint_rule_totals(&self) -> Vec<(Rule, u64)> {
        Rule::ALL
            .into_iter()
            .filter_map(|rule| {
                let n: u64 = self
                    .records
                    .iter()
                    .filter_map(|r| r.lint.as_ref())
                    .flat_map(|l| &l.per_rule)
                    .filter(|(r, _)| *r == rule)
                    .map(|(_, n)| *n as u64)
                    .sum();
                (n > 0).then_some((rule, n))
            })
            .collect()
    }

    /// Records that passed the testbench *and* tripped a behavioural-hazard
    /// lint rule ([`crate::check::LintCounts::hazard_count`]) — the paper's
    /// pass/fail split hides these; functionally "correct" RTL carrying a
    /// race, latch, loop or truncation.
    pub fn hazardous_pass_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.passed && r.lint.as_ref().is_some_and(|l| l.hazard_count() > 0))
            .count()
    }

    /// Records that passed the testbench (regardless of lint findings).
    pub fn pass_count(&self) -> usize {
        self.records.iter().filter(|r| r.passed).count()
    }

    /// Functional pass rate per problem id (the §VI per-problem analysis).
    pub fn per_problem_functional(&self, n: usize) -> Vec<(u8, Tally)> {
        let mut ids: Vec<u8> = self.records.iter().map(|r| r.problem_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|pid| (pid, self.tally(|r| r.problem_id == pid && r.n == n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_corpus::CorpusSource;
    use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};

    fn small_cfg() -> EvalConfig {
        EvalConfig {
            temperatures: vec![0.1, 0.7],
            ns: vec![5],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2, 6],
            sim: SimConfig::default(),
        }
    }

    fn cg16_ft_engine() -> FamilyEngine {
        FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
            CorpusSource::GithubOnly,
            42,
        )
    }

    #[test]
    fn run_produces_full_grid() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        // 3 problems × 1 level × 2 temps × 5 completions.
        assert_eq!(run.records.len(), 30);
        assert_eq!(run.temperatures(), vec![0.1, 0.7]);
    }

    #[test]
    fn best_temperature_is_cold() {
        let mut engine = cg16_ft_engine();
        let cfg = EvalConfig {
            ns: vec![20],
            problem_ids: vec![1, 2, 3, 4],
            levels: vec![PromptLevel::Medium],
            temperatures: vec![0.1, 1.0],
            sim: SimConfig::default(),
        };
        let run = run_engine(&mut engine, &cfg);
        let cold = run
            .tally(|r| (r.temperature - 0.1).abs() < 1e-9)
            .functional_rate();
        let hot = run
            .tally(|r| (r.temperature - 1.0).abs() < 1e-9)
            .functional_rate();
        assert!(cold > hot, "cold sampling should beat hot: {cold} vs {hot}");
        assert!(run.best_functional(Difficulty::Basic, PromptLevel::Medium, 20) >= cold);
    }

    #[test]
    fn fine_tuned_beats_pretrained() {
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![10],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2, 3, 4],
            sim: SimConfig::default(),
        };
        let mut ft = cg16_ft_engine();
        let mut pt = FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::Pretrained),
            CorpusSource::GithubOnly,
            42,
        );
        let ft_run = run_engine(&mut ft, &cfg);
        let pt_run = run_engine(&mut pt, &cfg);
        assert!(ft_run.tally(|_| true).compile_rate() > pt_run.tally(|_| true).compile_rate());
    }

    #[test]
    fn per_problem_breakdown_covers_ids() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        let per = run.per_problem_functional(5);
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].0, 1);
        assert!(per.iter().all(|(_, t)| t.total > 0));
    }

    #[test]
    fn latency_is_positive() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        assert!(run.mean_latency() > 0.0);
    }

    #[test]
    fn record_journal_roundtrip() {
        let mut rec = Record {
            problem_id: 7,
            difficulty: Difficulty::Intermediate,
            level: PromptLevel::High,
            temperature: 0.3,
            n: 25,
            compiled: true,
            passed: false,
            fault: false,
            fault_kind: None,
            latency_s: 1.625,
            lint: None,
        };
        let line = rec.to_journal_line();
        assert!(
            line.contains(",-,-,"),
            "absent lint and fault kind serialise as `-`: {line}"
        );
        assert_eq!(Record::from_journal_line(&line), Some(rec.clone()));
        rec.lint = Some(LintCounts {
            errors: 1,
            warnings: 2,
            per_rule: vec![(Rule::CombLoop, 1), (Rule::InferredLatch, 2)],
        });
        let line = rec.to_journal_line();
        assert_eq!(Record::from_journal_line(&line), Some(rec.clone()));
        // Fault records carry their kind through the journal.
        rec.compiled = false;
        rec.passed = false;
        rec.lint = None;
        rec.fault = true;
        for kind in [
            FaultKind::Panic,
            FaultKind::SoftTimeout,
            FaultKind::HardTimeout,
        ] {
            rec.fault_kind = Some(kind);
            let line = rec.to_journal_line();
            assert!(line.contains(kind.journal_tag()), "{line}");
            assert_eq!(Record::from_journal_line(&line), Some(rec.clone()));
        }
        assert_eq!(Record::from_journal_line("garbage"), None);
        assert_eq!(Record::from_journal_line("7,I,H,0.3"), None);
        assert_eq!(Record::from_journal_line(""), None);
    }

    #[test]
    fn corrupt_v3_line_fails_its_checksum() {
        let rec = Record {
            problem_id: 7,
            difficulty: Difficulty::Intermediate,
            level: PromptLevel::High,
            temperature: 0.3,
            n: 25,
            compiled: true,
            passed: true,
            fault: false,
            fault_kind: None,
            latency_s: 1.625,
            lint: Some(LintCounts::default()),
        };
        let line = rec.to_journal_line();
        assert_eq!(Record::from_journal_line(&line), Some(rec));
        // Flip any single byte of the payload: the checksum must catch it.
        let checksum_start = line.len() - 8;
        for i in 0..checksum_start {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x01;
            if let Ok(corrupt) = String::from_utf8(bytes) {
                assert_ne!(
                    Record::from_journal_line(&corrupt),
                    Record::from_journal_line(&line),
                    "flipping byte {i} went unnoticed: {corrupt}"
                );
            }
        }
        // A fault flag that disagrees with the kind field is rejected even
        // if someone recomputes the checksum over the inconsistent line.
        let forged_prefix = "7,I,H,0.3,25,0,0,1,1.625,-,-";
        let forged = format!(
            "{forged_prefix},{:08x}",
            fnv1a(forged_prefix.as_bytes()) & 0xffff_ffff
        );
        assert_eq!(Record::from_journal_line(&forged), None);
    }

    #[test]
    fn legacy_nine_field_line_parses_with_no_lint() {
        let line = "7,I,H,0.3,25,1,0,0,1.625";
        let rec = Record::from_journal_line(line).expect("v1 line parses");
        assert_eq!(rec.lint, None);
        assert_eq!(rec.fault_kind, None);
        assert_eq!(rec.problem_id, 7);
        // Re-serialising upgrades it to the twelve-field v3 form.
        let upgraded = rec.to_journal_line();
        assert!(upgraded.starts_with(&format!("{line},-,-,")), "{upgraded}");
        assert_eq!(Record::from_journal_line(&upgraded), Some(rec));
        // A v1 *fault* line resumes as a panic fault (the only kind v1
        // could record).
        let fault_line = "7,I,H,0.3,25,0,0,1,1.625";
        let fault = Record::from_journal_line(fault_line).expect("v1 fault line parses");
        assert!(fault.fault);
        assert_eq!(fault.fault_kind, Some(FaultKind::Panic));
    }

    #[test]
    fn fingerprint_depends_on_grid() {
        let a = config_fingerprint(&small_cfg());
        let mut other = small_cfg();
        other.problem_ids.push(9);
        assert_ne!(a, config_fingerprint(&other));
        assert_eq!(a, config_fingerprint(&small_cfg()));
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "vgen-journal-test-{}-{tag}.log",
            std::process::id()
        ))
    }

    #[test]
    fn journaled_run_matches_plain_run() {
        let path = temp_journal("plain");
        let cfg = small_cfg();
        let plain = run_engine(&mut cg16_ft_engine(), &cfg);
        let journaled =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("journaled run");
        assert_eq!(plain, journaled);
        // And the journal itself replays to the same records.
        let (name, fp, recs) = read_journal(&path).expect("read back");
        assert_eq!(name, plain.engine);
        assert_eq!(fp, config_fingerprint(&cfg));
        assert_eq!(recs, plain.records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_journal_resumes_to_identical_totals() {
        let path = temp_journal("resume");
        let cfg = small_cfg();
        let full =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("full run");
        // Simulate a kill partway through: keep the header, the first 11
        // records, and a torn 12th line.
        let text = std::fs::read_to_string(&path).expect("journal text");
        let mut kept: Vec<&str> = text.lines().take(12).collect();
        kept.push("2,B,L,0.1"); // torn final write
        std::fs::write(&path, kept.join("\n")).expect("truncate");
        let resumed =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true).expect("resumed run");
        assert_eq!(resumed, full);
        assert_eq!(
            resumed.tally(|_| true).functional_rate(),
            full.tally(|_| true).functional_rate()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let path = temp_journal("mismatch");
        let cfg = small_cfg();
        run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("seed journal");
        let mut other = cfg.clone();
        other.temperatures = vec![0.5];
        let err = run_engine_journaled(&mut cg16_ft_engine(), &other, &path, true)
            .expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_records_match_serial_records() {
        let cfg = small_cfg();
        let serial = run_engine(&mut cg16_ft_engine(), &cfg);
        for jobs in [2, 4, 7] {
            let par =
                run_engine_parallel(&mut cg16_ft_engine(), &cfg, jobs).expect("parallel sweep");
            assert_eq!(serial, par, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn parallel_journal_is_byte_identical_to_serial_journal() {
        let cfg = small_cfg();
        let p1 = temp_journal("bytes-serial");
        let p4 = temp_journal("bytes-parallel");
        let serial = run_engine_sweep(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&p1, false)),
            &SweepOptions::serial(),
        )
        .expect("serial journaled");
        let par = run_engine_sweep(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&p4, false)),
            &SweepOptions::parallel(4),
        )
        .expect("parallel journaled");
        assert_eq!(serial, par);
        let b1 = std::fs::read(&p1).expect("serial journal bytes");
        let b4 = std::fs::read(&p4).expect("parallel journal bytes");
        assert_eq!(b1, b4, "journals must be byte-identical across jobs");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p4);
    }

    #[test]
    fn killed_parallel_journal_resumes_to_identical_totals() {
        let path = temp_journal("parallel-resume");
        let cfg = small_cfg();
        let full = run_engine_sweep(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&path, false)),
            &SweepOptions::parallel(4),
        )
        .expect("full parallel run");
        // Simulate a kill partway through: header, 9 records, torn line.
        let text = std::fs::read_to_string(&path).expect("journal text");
        let mut kept: Vec<&str> = text.lines().take(10).collect();
        kept.push("1,B,L,0.7"); // torn final write
        std::fs::write(&path, kept.join("\n")).expect("truncate");
        let resumed = run_engine_sweep(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&path, true)),
            &SweepOptions::parallel(3),
        )
        .expect("resumed parallel run");
        assert_eq!(resumed, full);
        // The resumed journal replays to the full record set.
        let (_, _, recs) = read_journal(&path).expect("read back");
        assert_eq!(recs, full.records);
        let _ = std::fs::remove_file(&path);
    }

    /// Strips the last `n` comma-separated fields off a journal line.
    fn strip_fields(line: &str, n: usize) -> String {
        let mut s = line.to_string();
        for _ in 0..n {
            s.truncate(s.rfind(',').expect("enough fields"));
        }
        s
    }

    #[test]
    fn pre_lint_v1_journal_resumes_cleanly() {
        let path = temp_journal("v1-compat");
        let cfg = small_cfg();
        let full =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("full run");
        // Downgrade the on-disk journal to the pre-lint v1 format: v1 magic
        // in the header, the first 11 records with the lint, fault-kind and
        // checksum fields stripped, everything after dropped (as if the
        // run was also killed).
        let text = std::fs::read_to_string(&path).expect("journal text");
        let mut lines = text.lines();
        let header = lines
            .next()
            .expect("header")
            .replace("vgen-journal-v3", "vgen-journal-v1");
        let mut kept = vec![header];
        for line in lines.take(11) {
            kept.push(strip_fields(line, 3));
        }
        std::fs::write(&path, kept.join("\n")).expect("rewrite as v1");
        // The v1 journal reads back: 11 records, no lint tallies.
        let (name, fp, recs) = read_journal(&path).expect("read v1 journal");
        assert_eq!(name, full.engine);
        assert_eq!(fp, config_fingerprint(&cfg));
        assert_eq!(recs.len(), 11);
        assert!(recs.iter().all(|r| r.lint.is_none()));
        // Resume against it: reused records keep `lint: None`, freshly
        // checked ones carry tallies, and the pass/compile aggregates match
        // the uninterrupted run exactly.
        let resumed =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true).expect("resume from v1");
        assert_eq!(resumed.records.len(), full.records.len());
        assert!(resumed.records[..11].iter().all(|r| r.lint.is_none()));
        assert_eq!(&resumed.records[11..], &full.records[11..]);
        assert_eq!(
            resumed.tally(|_| true).functional_rate(),
            full.tally(|_| true).functional_rate()
        );
        assert_eq!(
            resumed.tally(|_| true).compile_rate(),
            full.tally(|_| true).compile_rate()
        );
        // The resumed journal is rewritten in v3 form.
        let text = std::fs::read_to_string(&path).expect("rewritten journal");
        assert!(text.starts_with("# vgen-journal-v3 "), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_checksum_v2_journal_resumes_cleanly() {
        let path = temp_journal("v2-compat");
        let cfg = small_cfg();
        let full =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("full run");
        // Downgrade to v2: strip the fault-kind and checksum fields.
        let text = std::fs::read_to_string(&path).expect("journal text");
        let mut lines = text.lines();
        let header = lines
            .next()
            .expect("header")
            .replace("vgen-journal-v3", "vgen-journal-v2");
        let mut kept = vec![header];
        for line in lines.take(11) {
            kept.push(strip_fields(line, 2));
        }
        std::fs::write(&path, kept.join("\n")).expect("rewrite as v2");
        // v2 lines keep their lint tallies, unlike v1.
        let (name, _, recs) = read_journal(&path).expect("read v2 journal");
        assert_eq!(name, full.engine);
        assert_eq!(recs.len(), 11);
        assert_eq!(&recs[..], &full.records[..11]);
        let resumed =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true).expect("resume from v2");
        assert_eq!(resumed, full);
        let text = std::fs::read_to_string(&path).expect("rewritten journal");
        assert!(text.starts_with("# vgen-journal-v3 "), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_v3_line_is_not_mistaken_for_an_older_record() {
        let path = temp_journal("torn-v3");
        let cfg = small_cfg();
        let full =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("full run");
        let text = std::fs::read_to_string(&path).expect("journal text");
        let lines: Vec<&str> = text.lines().collect();
        // Tear a record line before its last two fields: the surviving
        // prefix is a well-formed *v2* line, so only the header-version
        // check keeps it from resurfacing as a record with its fault kind
        // silently dropped.
        let torn = strip_fields(lines[5], 2);
        assert!(
            Record::from_journal_line(&torn).is_some(),
            "the torn prefix must look like a valid v2 line for this test"
        );
        let mut kept: Vec<String> = lines[..5].iter().map(|s| s.to_string()).collect();
        kept.push(torn);
        std::fs::write(&path, kept.join("\n")).expect("truncate");
        let (_, _, recs, report) = read_journal_recovering(&path).expect("read torn journal");
        assert_eq!(recs.len(), 4, "torn line and everything after dropped");
        assert_eq!(report.version, 3);
        assert_eq!(report.kept, 4);
        assert_eq!(report.dropped_lines, 1);
        let resumed =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true).expect("resumed run");
        assert_eq!(resumed, full);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_truncates_to_longest_valid_prefix() {
        let path = temp_journal("bitrot");
        let cfg = small_cfg();
        let full =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("full run");
        let text = std::fs::read_to_string(&path).expect("journal text");
        let mut lines: Vec<String> = text.lines().map(|s| s.to_string()).collect();
        let total_records = lines.len() - 1;
        // Corrupt one byte in the middle of record 7 (line 8): recovery
        // must keep records 1-6 and drop everything from the corrupt line
        // on, even though the lines after it are intact.
        let mut bytes = lines[7].clone().into_bytes();
        bytes[3] ^= 0x01;
        lines[7] = String::from_utf8(bytes).expect("still utf-8");
        std::fs::write(&path, lines.join("\n")).expect("rewrite");
        let (_, _, recs, report) = read_journal_recovering(&path).expect("recovering read");
        assert_eq!(recs.len(), 6);
        assert_eq!(report.kept, 6);
        assert_eq!(report.dropped_lines, total_records - 6);
        assert_eq!(&recs[..], &full.records[..6]);
        // And a resume from the repaired prefix completes correctly.
        let resumed =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true).expect("resumed run");
        assert_eq!(resumed, full);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_journal_version_is_a_clear_error() {
        let path = temp_journal("future-version");
        std::fs::write(
            &path,
            "# vgen-journal-v9 fingerprint=0000000000000000 engine=x\n",
        )
        .expect("write future journal");
        let err = read_journal(&path).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("v9") && msg.contains("--resume"),
            "error must name the version and a way out: {msg}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every"), Ok(FsyncPolicy::EveryRecord));
        assert_eq!(
            FsyncPolicy::parse("interval:64"),
            Ok(FsyncPolicy::Interval(64))
        );
        for bad in ["", "sometimes", "interval:0", "interval:x", "interval:"] {
            assert!(FsyncPolicy::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn sweep_produces_lint_tallies() {
        let mut engine = cg16_ft_engine();
        let run = run_engine(&mut engine, &small_cfg());
        // Every parsed candidate carries tallies; the family engine's
        // compile rate is well below 1.0, so both kinds must appear.
        assert!(run.records.iter().any(|r| r.lint.is_some()));
        assert!(run.records.iter().any(|r| r.lint.is_none()));
        assert!(
            run.records.iter().all(|r| !r.compiled || r.lint.is_some()),
            "every compiled candidate must have been linted"
        );
        assert!(run.hazardous_pass_count() <= run.pass_count());
        let per_rule_total: u64 = run.lint_rule_totals().iter().map(|(_, n)| n).sum();
        assert_eq!(
            per_rule_total,
            run.lint_error_total() + run.lint_warning_total()
        );
    }

    #[test]
    fn jobs_zero_resolves_to_available_parallelism() {
        assert!(SweepOptions::auto_jobs() >= 1);
        assert_eq!(
            SweepOptions::parallel(0).effective_jobs(),
            SweepOptions::auto_jobs()
        );
        assert_eq!(SweepOptions::parallel(3).effective_jobs(), 3);
        assert_eq!(SweepOptions::serial().effective_jobs(), 1);
    }

    #[test]
    fn resume_rejects_mismatched_engine() {
        let path = temp_journal("engine");
        let cfg = small_cfg();
        run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("seed journal");
        let mut other = FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::Pretrained),
            CorpusSource::GithubOnly,
            42,
        );
        let err = run_engine_journaled(&mut other, &cfg, &path, true).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_runs_partition_the_record_stream() {
        let cfg = small_cfg();
        let whole = run_engine(&mut cg16_ft_engine(), &cfg);
        for count in [2u32, 4] {
            let mut merged: Vec<Option<Record>> = vec![None; whole.records.len()];
            for index in 0..count {
                let (part, _) = run_engine_sweep_sharded(
                    &mut cg16_ft_engine(),
                    &cfg,
                    None,
                    &SweepOptions::serial(),
                    ShardSpec { index, count },
                    &SweepHooks::default(),
                )
                .expect("sharded run");
                for (i, rec) in part.records.into_iter().enumerate() {
                    merged[index as usize + i * count as usize] = Some(rec);
                }
            }
            let merged: Vec<Record> = merged.into_iter().map(|r| r.expect("covered")).collect();
            assert_eq!(merged, whole.records, "shard count {count}");
        }
    }

    #[test]
    fn sharded_parallel_matches_serial_shard() {
        let cfg = small_cfg();
        let shard = ShardSpec { index: 1, count: 2 };
        let (serial, _) = run_engine_sweep_sharded(
            &mut cg16_ft_engine(),
            &cfg,
            None,
            &SweepOptions::serial(),
            shard,
            &SweepHooks::default(),
        )
        .expect("serial shard");
        let (par, _) = run_engine_sweep_sharded(
            &mut cg16_ft_engine(),
            &cfg,
            None,
            &SweepOptions::parallel(3),
            shard,
            &SweepHooks::default(),
        )
        .expect("parallel shard");
        assert_eq!(serial, par);
    }

    #[test]
    fn shard_journal_header_tags_and_validates() {
        let path = temp_journal("shardtag");
        let cfg = small_cfg();
        let shard = ShardSpec { index: 1, count: 3 };
        run_engine_sweep_sharded(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&path, false)),
            &SweepOptions::serial(),
            shard,
            &SweepHooks::default(),
        )
        .expect("sharded journaled run");
        let (_, fp, recs, recovery) = read_journal_recovering(&path).expect("read shard journal");
        assert_eq!(fp, config_fingerprint(&cfg));
        assert_eq!(recovery.shard, Some((1, 3)));
        assert_eq!(recs.len(), 10, "shard 1/3 of a 30-position grid");
        // Resuming under a different shard spec is refused...
        let err = run_engine_sweep_sharded(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&path, true)),
            &SweepOptions::serial(),
            ShardSpec { index: 0, count: 3 },
            &SweepHooks::default(),
        )
        .expect_err("shard mismatch");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // ...and so is resuming a shard journal as an unsharded one.
        let err = run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true)
            .expect_err("unsharded resume of shard journal");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observer_streams_every_fresh_record_in_order() {
        let cfg = small_cfg();
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        let hooks = SweepHooks {
            observer: Some(std::sync::Arc::new(move |rec: &Record, done, total| {
                sink.lock()
                    .expect("observer lock")
                    .push((rec.clone(), done, total));
            })),
            cancel: None,
        };
        for jobs in [1, 3] {
            seen.lock().expect("observer lock").clear();
            let (run, _) = run_engine_sweep_sharded(
                &mut cg16_ft_engine(),
                &cfg,
                None,
                &SweepOptions::parallel(jobs),
                ShardSpec::single(),
                &hooks,
            )
            .expect("observed run");
            let events = seen.lock().expect("observer lock");
            assert_eq!(events.len(), run.records.len(), "jobs {jobs}");
            for (i, (rec, done, total)) in events.iter().enumerate() {
                assert_eq!(rec, &run.records[i]);
                assert_eq!(*done, i + 1);
                assert_eq!(*total, run.records.len());
            }
        }
    }

    #[test]
    fn cancelled_sweep_leaves_resumable_prefix() {
        let path = temp_journal("cancel");
        let cfg = small_cfg();
        let full = run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, false).expect("full");
        let _ = std::fs::remove_file(&path);
        let token = vgen_obs::CancelToken::unlimited();
        let trip = token.clone();
        let hooks = SweepHooks {
            observer: Some(std::sync::Arc::new(move |_: &Record, done, _| {
                if done >= 7 {
                    trip.cancel();
                }
            })),
            cancel: Some(token),
        };
        let err = run_engine_sweep_sharded(
            &mut cg16_ft_engine(),
            &cfg,
            Some((&path, false)),
            &SweepOptions::serial(),
            ShardSpec::single(),
            &hooks,
        )
        .expect_err("cancelled sweep");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let (_, _, recs, _) = read_journal_recovering(&path).expect("read cancelled journal");
        assert!(
            !recs.is_empty() && recs.len() < full.records.len(),
            "partial prefix, got {} of {}",
            recs.len(),
            full.records.len()
        );
        assert_eq!(recs[..], full.records[..recs.len()]);
        // Resume completes the cancelled run to byte-identical records.
        let resumed =
            run_engine_journaled(&mut cg16_ft_engine(), &cfg, &path, true).expect("resume");
        assert_eq!(resumed, full);
        let _ = std::fs::remove_file(&path);
    }
}
