//! # vgen-bench
//!
//! The benchmark harness regenerating every table and figure of the paper:
//! one binary per artifact (see DESIGN.md's per-experiment index) plus
//! Criterion micro-benchmarks for the substrates.
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — baseline LLM architectures |
//! | `table2` | Table II — problem set |
//! | `table3` | Table III — compile Pass@(scenario·10) |
//! | `table4` | Table IV — functional Pass@(scenario·10) + inference time |
//! | `fig6` | Fig 6 — pass rate vs temperature and vs n |
//! | `fig7` | Fig 7 — pass rate vs prompt detail and difficulty |
//! | `headline` | §VI/§VII aggregate percentages |
//! | `ablation` | §VI corpus ablation (GitHub vs GitHub+books) |
//! | `per_problem` | §VI per-problem failure analysis (problems 7/9/12) |
//!
//! All binaries honour `VGEN_QUICK=1` to shrink the grid for smoke runs and
//! write CSVs next to their stdout report under `target/experiments/`.

use std::fs;
use std::path::PathBuf;

/// Directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes an artifact file under [`experiments_dir`], logging the path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = experiments_dir().join(name);
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Whether the quick (reduced-grid) mode is requested.
pub fn quick_mode() -> bool {
    std::env::var("VGEN_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The standard full-table configuration (paper grid at n = 10), reduced
/// under [`quick_mode`].
pub fn table_config() -> vgen_core::EvalConfig {
    use vgen_core::EvalConfig;
    if quick_mode() {
        EvalConfig {
            temperatures: vec![0.1, 0.5],
            ns: vec![4],
            ..EvalConfig::default()
        }
    } else {
        EvalConfig::paper_n10()
    }
}

/// The n used for table cells in the current mode.
pub fn table_n() -> usize {
    if quick_mode() {
        4
    } else {
        10
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn experiments_dir_is_creatable() {
        let d = super::experiments_dir();
        assert!(d.ends_with("experiments"));
    }

    #[test]
    fn table_config_modes() {
        // Default mode mirrors the paper's n = 10 grid.
        if !super::quick_mode() {
            let cfg = super::table_config();
            assert_eq!(cfg.ns, vec![10]);
            assert_eq!(cfg.temperatures.len(), 5);
        }
    }
}
