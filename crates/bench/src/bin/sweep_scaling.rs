//! `sweep_scaling` — serial vs N-worker sweep throughput.
//!
//! Runs the same evaluation sweep at worker counts 1, 2 and 4 (plus the
//! machine's available parallelism when that is higher), measures
//! checks/second for the check phase, verifies that every parallel run
//! produced records identical to the serial baseline, and writes the
//! trajectory to `BENCH_sweep.json` under `target/experiments/` (and, for
//! CI artifact pickup, to a `--out` path if given).
//!
//! ```text
//! cargo run --release -p vgen-bench --bin sweep_scaling            # full grid
//! cargo run --release -p vgen-bench --bin sweep_scaling -- --quick # CI smoke
//! ```

use std::time::Instant;

use vgen_bench::write_artifact;
use vgen_core::{run_engine_parallel, EvalConfig, EvalRun, SweepOptions};
use vgen_corpus::CorpusSource;
use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};
use vgen_problems::PromptLevel;
use vgen_sim::SimConfig;

/// One measured point of the scaling curve.
struct Sample {
    jobs: usize,
    seconds: f64,
    checks_per_sec: f64,
    speedup: f64,
}

fn engine() -> FamilyEngine {
    FamilyEngine::new(
        ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
        CorpusSource::GithubOnly,
        42,
    )
}

fn config(quick: bool) -> EvalConfig {
    if quick {
        EvalConfig {
            temperatures: vec![0.1],
            ns: vec![4],
            levels: vec![PromptLevel::Low],
            problem_ids: (1..=17).collect(),
            sim: SimConfig::default(),
        }
    } else {
        EvalConfig {
            temperatures: vec![0.1, 0.5],
            ns: vec![10],
            levels: PromptLevel::ALL.to_vec(),
            problem_ids: (1..=17).collect(),
            sim: SimConfig::default(),
        }
    }
}

/// Times one sweep at `jobs` workers, returning the run and its wall time
/// (best of `reps`, so a stray scheduling hiccup doesn't skew a point).
fn measure(cfg: &EvalConfig, jobs: usize, reps: usize) -> (EvalRun, f64) {
    let mut best = f64::INFINITY;
    let mut run = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = run_engine_parallel(&mut engine(), cfg, jobs).expect("sweep");
        best = best.min(start.elapsed().as_secs_f64());
        run = Some(r);
    }
    (run.expect("at least one rep"), best)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if quick { 1 } else { 3 };
    let cfg = config(quick);
    let avail = SweepOptions::auto_jobs();
    let mut job_counts = vec![1usize, 2, 4];
    if avail > 4 {
        job_counts.push(avail);
    }

    println!("sweep_scaling: {} available core(s), reps={reps}", avail);
    let (baseline_run, baseline_secs) = measure(&cfg, 1, reps);
    let total_checks = baseline_run.records.len();
    let mut samples = Vec::new();
    for &jobs in &job_counts {
        let (run, secs) = if jobs == 1 {
            (baseline_run.clone(), baseline_secs)
        } else {
            measure(&cfg, jobs, reps)
        };
        assert_eq!(
            run, baseline_run,
            "jobs={jobs} produced different records than serial — determinism broken"
        );
        let sample = Sample {
            jobs,
            seconds: secs,
            checks_per_sec: total_checks as f64 / secs,
            speedup: baseline_secs / secs,
        };
        println!(
            "  jobs={:<2}  {:>8.3}s  {:>8.1} checks/s  speedup {:.2}x",
            sample.jobs, sample.seconds, sample.checks_per_sec, sample.speedup
        );
        samples.push(sample);
    }

    let json = render_json(quick, avail, total_checks, &samples);
    write_artifact("BENCH_sweep.json", &json);
    if let Some(path) = out_path {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Hand-rolled JSON (no serde in this environment): a stable, diffable
/// shape for the perf trajectory.
fn render_json(quick: bool, avail: usize, total_checks: usize, samples: &[Sample]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"sweep_scaling\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    out.push_str(&format!("  \"total_checks\": {total_checks},\n"));
    let max_speedup = samples.iter().map(|s| s.speedup).fold(0.0, f64::max);
    out.push_str(&format!("  \"max_parallel_speedup\": {max_speedup:.3},\n"));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"jobs\": {}, \"seconds\": {:.6}, \"checks_per_sec\": {:.2}, \"speedup_vs_serial\": {:.3}}}{}\n",
            s.jobs,
            s.seconds,
            s.checks_per_sec,
            s.speedup,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
