//! Regenerates paper Fig 7: functional Pass@(scenario·10) across prompt
//! description levels (left) and problem difficulties (right).

use vgen_bench::{table_config, table_n, write_artifact};
use vgen_core::experiments::evaluate_all_models;
use vgen_core::report::{render_fig7_difficulty, render_fig7_levels};
use vgen_corpus::CorpusSource;

fn main() {
    let cfg = table_config();
    let rows = evaluate_all_models(&cfg, CorpusSource::GithubOnly, 0xF177);
    let left = render_fig7_levels(&rows, table_n());
    let right = render_fig7_difficulty(&rows, table_n());
    println!("{left}\n{right}");
    write_artifact("fig7.txt", &format!("{left}\n{right}"));
}
