//! `lint_throughput` — how fast the semantic lint pass chews through
//! realistic and adversarial Verilog.
//!
//! The lint stage runs on every compiled candidate in the eval sweep, so
//! its cost lands on the sweep's critical path. This bench lints two
//! corpora — the golden set (all 17 reference solutions and testbenches)
//! and the hostile mutation corpus assembled into full candidates — and
//! reports files/second and diagnostics/second for each, writing the
//! numbers to `BENCH_lint.json` under `target/experiments/` (and to a
//! `--out` path for CI artifact pickup).
//!
//! ```text
//! cargo run --release -p vgen-bench --bin lint_throughput            # full
//! cargo run --release -p vgen-bench --bin lint_throughput -- --quick # CI smoke
//! ```

use std::time::Instant;

use vgen_bench::write_artifact;
use vgen_core::check::assemble;
use vgen_lint::lint_source;
use vgen_lm::mutate::hostile_corpus;
use vgen_problems::{problem, PromptLevel};

/// One measured corpus of sources to lint.
struct Corpus {
    name: &'static str,
    sources: Vec<String>,
}

/// Throughput over one corpus.
struct Sample {
    name: &'static str,
    files: usize,
    bytes: usize,
    diagnostics: usize,
    seconds: f64,
}

fn corpora() -> Vec<Corpus> {
    let mut golden = Vec::new();
    for id in 1..=17u8 {
        let p = problem(id).expect("problem id in range");
        golden.push(p.reference_source());
        golden.push(p.testbench.to_string());
    }
    let anchor = problem(2).expect("problem 2 exists");
    let hostile = hostile_corpus()
        .into_iter()
        .map(|(_, completion)| assemble(anchor, PromptLevel::Low, &completion))
        .collect();
    vec![
        Corpus {
            name: "golden",
            sources: golden,
        },
        Corpus {
            name: "hostile",
            sources: hostile,
        },
    ]
}

/// Lints every source in the corpus once and returns the diagnostic count
/// (unparsable sources lint to zero diagnostics — they never reach the
/// rules in production either).
fn lint_pass(corpus: &Corpus) -> usize {
    corpus
        .sources
        .iter()
        .map(|src| lint_source(src).map_or(0, |r| r.diagnostics.len()))
        .sum()
}

/// Best-of-`reps` timing of a full pass over `corpus`.
fn measure(corpus: &Corpus, reps: usize) -> Sample {
    let diagnostics = lint_pass(corpus); // warm-up, and the count itself
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let n = lint_pass(corpus);
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(n, diagnostics, "lint must be deterministic across passes");
    }
    Sample {
        name: corpus.name,
        files: corpus.sources.len(),
        bytes: corpus.sources.iter().map(String::len).sum(),
        diagnostics,
        seconds: best,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if quick { 2 } else { 10 };

    println!("lint_throughput: reps={reps}");
    let mut samples = Vec::new();
    for corpus in corpora() {
        let s = measure(&corpus, reps);
        println!(
            "  {:<8}  {:>3} files  {:>8} bytes  {:>4} diagnostics  {:>8.4}s  {:>9.1} files/s",
            s.name,
            s.files,
            s.bytes,
            s.diagnostics,
            s.seconds,
            s.files as f64 / s.seconds
        );
        samples.push(s);
    }

    let json = render_json(quick, &samples);
    write_artifact("BENCH_lint.json", &json);
    if let Some(path) = out_path {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Hand-rolled JSON (no serde in this environment): a stable, diffable
/// shape for the lint perf trajectory.
fn render_json(quick: bool, samples: &[Sample]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"lint_throughput\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"files\": {}, \"bytes\": {}, \"diagnostics\": {}, \
             \"seconds\": {:.6}, \"files_per_sec\": {:.2}, \"diagnostics_per_sec\": {:.2}}}{}\n",
            s.name,
            s.files,
            s.bytes,
            s.diagnostics,
            s.seconds,
            s.files as f64 / s.seconds,
            s.diagnostics as f64 / s.seconds,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
