//! `sim_throughput` — simulation hot-path throughput after the word-packed
//! `LogicVec` rewrite.
//!
//! Three measurements, written to `BENCH_sim.json` under
//! `target/experiments/` (and to a `--out` path for CI artifact pickup):
//!
//! 1. **Vector ops** — 64-, 128- and 256-bit and/or/xor/add/eq/lt throughput
//!    of the packed representation against an embedded per-bit baseline
//!    (the pre-rewrite one-`Logic`-per-bit loop). The 64-bit packed ops
//!    must be at least 3× the per-bit baseline or the binary exits
//!    non-zero; the wide (>64-bit, boxed-slice) floor is reported as
//!    `min_speedup_wide` for the regression tracker but is not a hard
//!    gate (wide words are where the word-parallel fast paths land).
//! 2. **Cycle-heavy simulation** — a clocked counter-bank testbench (eight
//!    processes, each chaining eight 64-bit accumulators per posedge) run
//!    through the full event loop on both the interpreter and the bytecode
//!    VM, reported as simulated cycles and steps per second; the bytecode
//!    backend must clear 5× the interpreter's cycles/s.
//! 3. **Dedup cache** — a quick evaluation sweep with the completion-dedup
//!    cache on vs off: hit rate and wall-clock both ways, with the runs
//!    compared for equality (the cache must never change results).
//!
//! ```text
//! cargo run --release -p vgen-bench --bin sim_throughput            # full
//! cargo run --release -p vgen-bench --bin sim_throughput -- --quick # CI smoke
//! ```

use std::hint::black_box;
use std::time::Instant;

use vgen_bench::write_artifact;
use vgen_core::{run_engine_sweep_stats, EvalConfig, SweepOptions, SweepStats};
use vgen_corpus::CorpusSource;
use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};
use vgen_problems::PromptLevel;
use vgen_sim::{SimBackend, SimConfig};
use vgen_verilog::value::LogicVec;

/// The pre-rewrite representation, kept here as the baseline under test:
/// one `Logic` per bit, operators as per-bit loops, arithmetic through
/// `to_u64`. Only the benchmarked subset is ported.
mod perbit {
    use vgen_verilog::value::Logic;

    pub struct PbVec {
        bits: Vec<Logic>,
    }

    impl PbVec {
        pub fn from_u64(v: u64, width: usize) -> Self {
            PbVec {
                bits: (0..width)
                    .map(|i| {
                        if i < 64 {
                            Logic::from_bool((v >> i) & 1 == 1)
                        } else {
                            Logic::Zero
                        }
                    })
                    .collect(),
            }
        }

        fn bit(&self, i: usize) -> Logic {
            self.bits.get(i).copied().unwrap_or(Logic::X)
        }

        fn has_unknown(&self) -> bool {
            self.bits.iter().any(|b| b.is_unknown())
        }

        fn to_u64(&self) -> Option<u64> {
            let mut v = 0u64;
            for (i, b) in self.bits.iter().enumerate() {
                match b.to_bool() {
                    Some(true) if i >= 64 => return None,
                    Some(true) => v |= 1 << i,
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(v)
        }

        fn resize(&self, width: usize) -> PbVec {
            let mut bits = self.bits.clone();
            if width < bits.len() {
                bits.truncate(width);
            } else {
                let top = *bits.last().expect("non-empty");
                let ext = match top {
                    Logic::X => Logic::X,
                    Logic::Z => Logic::Z,
                    _ => Logic::Zero,
                };
                bits.resize(width, ext);
            }
            PbVec { bits }
        }

        fn bitwise2(&self, rhs: &PbVec, f: impl Fn(Logic, Logic) -> Logic) -> PbVec {
            let w = self.bits.len().max(rhs.bits.len());
            let a = self.resize(w);
            let b = rhs.resize(w);
            PbVec {
                bits: (0..w).map(|i| f(a.bit(i), b.bit(i))).collect(),
            }
        }

        pub fn bit_and(&self, rhs: &PbVec) -> PbVec {
            self.bitwise2(rhs, Logic::and)
        }

        pub fn bit_or(&self, rhs: &PbVec) -> PbVec {
            self.bitwise2(rhs, Logic::or)
        }

        pub fn bit_xor(&self, rhs: &PbVec) -> PbVec {
            self.bitwise2(rhs, Logic::xor)
        }

        pub fn add(&self, rhs: &PbVec) -> PbVec {
            let w = self.bits.len().max(rhs.bits.len());
            match (self.resize(w).to_u64(), rhs.resize(w).to_u64()) {
                (Some(a), Some(b)) => PbVec::from_u64(a.wrapping_add(b), w),
                _ => PbVec {
                    bits: vec![Logic::X; w],
                },
            }
        }

        pub fn eq_logic(&self, rhs: &PbVec) -> PbVec {
            let w = self.bits.len().max(rhs.bits.len());
            let a = self.resize(w);
            let b = rhs.resize(w);
            if a.has_unknown() || b.has_unknown() {
                return PbVec {
                    bits: vec![Logic::X],
                };
            }
            PbVec::from_u64((a.bits == b.bits) as u64, 1)
        }

        pub fn lt(&self, rhs: &PbVec) -> PbVec {
            let w = self.bits.len().max(rhs.bits.len());
            match (self.resize(w).to_u64(), rhs.resize(w).to_u64()) {
                (Some(a), Some(b)) => PbVec::from_u64((a < b) as u64, 1),
                _ => PbVec {
                    bits: vec![Logic::X],
                },
            }
        }
    }
}

/// One vector-op measurement: packed vs per-bit Mops/s and the ratio.
struct OpSample {
    op: &'static str,
    width: usize,
    packed_mops: f64,
    perbit_mops: f64,
    speedup: f64,
}

/// Times `iters` calls of `f`, returning ops/second.
fn ops_per_sec(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn measure_vector_ops(quick: bool) -> Vec<OpSample> {
    let packed_iters: u64 = if quick { 200_000 } else { 2_000_000 };
    let perbit_iters: u64 = if quick { 20_000 } else { 200_000 };
    let mut samples = Vec::new();
    for &width in &[64usize, 128, 256] {
        let pa = LogicVec::from_u64(0xDEAD_BEEF_CAFE_F00D, width);
        let pb = LogicVec::from_u64(0x0123_4567_89AB_CDEF, width);
        let ba = perbit::PbVec::from_u64(0xDEAD_BEEF_CAFE_F00D, width);
        let bb = perbit::PbVec::from_u64(0x0123_4567_89AB_CDEF, width);
        type PackedOp = fn(&LogicVec, &LogicVec) -> LogicVec;
        type PerbitOp = fn(&perbit::PbVec, &perbit::PbVec) -> perbit::PbVec;
        let ops: [(&'static str, PackedOp, PerbitOp); 6] = [
            ("and", LogicVec::bit_and, perbit::PbVec::bit_and),
            ("or", LogicVec::bit_or, perbit::PbVec::bit_or),
            ("xor", LogicVec::bit_xor, perbit::PbVec::bit_xor),
            ("add", LogicVec::add, perbit::PbVec::add),
            ("eq", LogicVec::eq_logic, perbit::PbVec::eq_logic),
            ("lt", LogicVec::lt, perbit::PbVec::lt),
        ];
        for (op, packed_f, perbit_f) in ops {
            let packed = ops_per_sec(packed_iters, || {
                black_box(packed_f(black_box(&pa), black_box(&pb)));
            });
            let perbit = ops_per_sec(perbit_iters, || {
                black_box(perbit_f(black_box(&ba), black_box(&bb)));
            });
            samples.push(OpSample {
                op,
                width,
                packed_mops: packed / 1e6,
                perbit_mops: perbit / 1e6,
                speedup: packed / perbit,
            });
        }
    }
    samples
}

/// Clocked processes sharing one clock, each owning a chain of 64-bit
/// accumulators (`PROCS` × `BANK` signals updated per posedge).
const PROCS: usize = 8;
const BANK: usize = 8;

/// The counter-bank testbench: exercises edge detection, the future-event
/// queue, and — at `PROCS * BANK` writes per cycle — the per-write wake
/// machinery, which is where the backends differ architecturally (the
/// interpreter re-scans every parked process per write; the bytecode VM
/// consults compiled watch tables). `acc0_0` counts clock cycles, so the
/// result is still checkable as a counter.
fn counter_testbench(cycles: u64) -> String {
    let mut src = String::from("module tb;\nreg clk;\n");
    for p in 0..PROCS {
        for i in 0..BANK {
            src.push_str(&format!("reg [63:0] acc{p}_{i};\n"));
        }
    }
    src.push_str("initial begin clk = 0; ");
    for p in 0..PROCS {
        for i in 0..BANK {
            src.push_str(&format!("acc{p}_{i} = 0; "));
        }
    }
    src.push_str("end\n");
    src.push_str("always #5 clk = ~clk;\n");
    for p in 0..PROCS {
        src.push_str("always @(posedge clk) begin\n");
        src.push_str(&format!("  acc{p}_0 = acc{p}_0 + 1;\n"));
        for i in 1..BANK {
            src.push_str(&format!("  acc{p}_{i} = acc{p}_{i} + acc{p}_{};\n", i - 1));
        }
        src.push_str("end\n");
    }
    src.push_str(&format!(
        "initial begin #{} $display(\"count=%d\", acc0_0); $finish; end\nendmodule\n",
        cycles * 10
    ));
    src
}

struct SimSample {
    backend: SimBackend,
    cycles: u64,
    seconds: f64,
    steps: u64,
    cycles_per_sec: f64,
    steps_per_sec: f64,
}

fn run_counter(quick: bool, backend: SimBackend) -> SimSample {
    let cycles: u64 = if quick { 10_000 } else { 100_000 };
    let src = counter_testbench(cycles);
    let config = SimConfig::default()
        .with_max_time(cycles * 10 + 100)
        .with_max_steps(u64::MAX)
        .with_backend(backend);
    let start = Instant::now();
    let out = vgen_sim::simulate(&src, Some("tb"), config).expect("counter testbench simulates");
    let seconds = start.elapsed().as_secs_f64();
    let expected = format!("count={:>20}", cycles);
    assert!(
        out.stdout.trim_end().ends_with(expected.trim()),
        "counter miscounted on {}: {:?}",
        backend.as_str(),
        out.stdout
    );
    SimSample {
        backend,
        cycles,
        seconds,
        steps: out.steps,
        cycles_per_sec: cycles as f64 / seconds,
        steps_per_sec: out.steps as f64 / seconds,
    }
}

/// Runs the counter testbench through the interpreter, the bytecode VM and
/// the netlist backend, asserting all three agree on output and step count
/// before comparing speed.
fn measure_sim(quick: bool) -> (SimSample, SimSample, SimSample) {
    let interp = run_counter(quick, SimBackend::Interp);
    let bytecode = run_counter(quick, SimBackend::Bytecode);
    let netlist = run_counter(quick, SimBackend::Netlist);
    assert_eq!(
        interp.steps, bytecode.steps,
        "backends disagree on step count"
    );
    assert_eq!(
        interp.steps, netlist.steps,
        "netlist backend disagrees on step count"
    );
    (interp, bytecode, netlist)
}

struct DedupSample {
    stats: SweepStats,
    seconds_cache_on: f64,
    seconds_cache_off: f64,
}

fn sweep_engine() -> FamilyEngine {
    FamilyEngine::new(
        ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
        CorpusSource::GithubOnly,
        42,
    )
}

fn measure_dedup(quick: bool) -> DedupSample {
    let cfg = EvalConfig {
        temperatures: vec![0.1],
        ns: vec![if quick { 4 } else { 10 }],
        levels: vec![PromptLevel::Low],
        problem_ids: (1..=17).collect(),
        sim: SimConfig::default(),
    };
    let on = SweepOptions::default();
    let off = SweepOptions {
        dedup: false,
        ..SweepOptions::default()
    };
    let start = Instant::now();
    let (run_on, stats) =
        run_engine_sweep_stats(&mut sweep_engine(), &cfg, None, &on).expect("cached sweep");
    let seconds_cache_on = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (run_off, _) =
        run_engine_sweep_stats(&mut sweep_engine(), &cfg, None, &off).expect("uncached sweep");
    let seconds_cache_off = start.elapsed().as_secs_f64();
    assert_eq!(run_on, run_off, "dedup cache changed sweep results");
    DedupSample {
        stats,
        seconds_cache_on,
        seconds_cache_off,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "sim_throughput: mode={}",
        if quick { "quick" } else { "full" }
    );

    let ops = measure_vector_ops(quick);
    println!("  vector ops (packed vs per-bit):");
    for s in &ops {
        println!(
            "    {:>3}/{:<3}  packed {:>9.1} Mops/s   per-bit {:>7.2} Mops/s   {:>6.1}x",
            s.op, s.width, s.packed_mops, s.perbit_mops, s.speedup
        );
    }
    let min_speedup_64 = ops
        .iter()
        .filter(|s| s.width == 64)
        .map(|s| s.speedup)
        .fold(f64::INFINITY, f64::min);
    let min_speedup_wide = ops
        .iter()
        .filter(|s| s.width > 64)
        .map(|s| s.speedup)
        .fold(f64::INFINITY, f64::min);

    let (sim_interp, sim_bc, sim_net) = measure_sim(quick);
    for sim in [&sim_interp, &sim_bc, &sim_net] {
        println!(
            "  simulation[{}]: {} cycles in {:.3}s = {:.0} cycles/s ({:.2} Msteps/s)",
            sim.backend.as_str(),
            sim.cycles,
            sim.seconds,
            sim.cycles_per_sec,
            sim.steps_per_sec / 1e6
        );
    }
    let sim_speedup = sim_bc.cycles_per_sec / sim_interp.cycles_per_sec;
    println!("  bytecode vs interpreter: {sim_speedup:.2}x cycles/s");
    let netlist_speedup = sim_net.cycles_per_sec / sim_bc.cycles_per_sec;
    println!("  netlist vs bytecode: {netlist_speedup:.2}x cycles/s");

    let dedup = measure_dedup(quick);
    println!(
        "  dedup cache: {} checks run, {} hits ({:.0}% hit rate), {:.3}s on vs {:.3}s off",
        dedup.stats.checks_run,
        dedup.stats.cache_hits,
        dedup.stats.hit_rate() * 100.0,
        dedup.seconds_cache_on,
        dedup.seconds_cache_off
    );

    let json = render_json(
        quick,
        &ops,
        min_speedup_64,
        min_speedup_wide,
        &sim_interp,
        &sim_bc,
        &sim_net,
        sim_speedup,
        netlist_speedup,
        &dedup,
    );
    write_artifact("BENCH_sim.json", &json);
    if let Some(path) = out_path {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if min_speedup_64 < 3.0 {
        eprintln!(
            "FAIL: 64-bit packed ops only {min_speedup_64:.2}x the per-bit baseline (need 3x)"
        );
        std::process::exit(1);
    }
    println!("  64-bit packed speedup floor: {min_speedup_64:.1}x (>= 3x required)");
    println!(
        "  wide (>64-bit) packed speedup floor: {min_speedup_wide:.1}x (tracked, no hard gate)"
    );
    if sim_speedup < 5.0 {
        eprintln!(
            "FAIL: bytecode backend only {sim_speedup:.2}x the interpreter on cycles/s (need 5x)"
        );
        std::process::exit(1);
    }
    println!("  bytecode speedup floor: {sim_speedup:.1}x (>= 5x required)");
    if netlist_speedup < 3.0 {
        eprintln!(
            "FAIL: netlist backend only {netlist_speedup:.2}x the bytecode VM on cycles/s (need 3x)"
        );
        std::process::exit(1);
    }
    println!("  netlist speedup floor: {netlist_speedup:.1}x (>= 3x required)");
}

/// Hand-rolled JSON (no serde in this environment): a stable, diffable
/// shape for the throughput trajectory.
#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    ops: &[OpSample],
    min_speedup_64: f64,
    min_speedup_wide: f64,
    sim_interp: &SimSample,
    sim_bc: &SimSample,
    sim_net: &SimSample,
    sim_speedup: f64,
    netlist_speedup: f64,
    dedup: &DedupSample,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"sim_throughput\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"vector_ops\": [\n");
    for (i, s) in ops.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"width\": {}, \"packed_mops\": {:.2}, \"perbit_mops\": {:.3}, \"speedup\": {:.2}}}{}\n",
            s.op,
            s.width,
            s.packed_mops,
            s.perbit_mops,
            s.speedup,
            if i + 1 < ops.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"min_speedup_64b\": {min_speedup_64:.2},\n"));
    out.push_str(&format!("  \"min_speedup_wide\": {min_speedup_wide:.2},\n"));
    let sim_obj = |s: &SimSample| {
        format!(
            "{{\"cycles\": {}, \"seconds\": {:.6}, \"steps\": {}, \"cycles_per_sec\": {:.1}, \"steps_per_sec\": {:.1}}}",
            s.cycles, s.seconds, s.steps, s.cycles_per_sec, s.steps_per_sec
        )
    };
    out.push_str(&format!("  \"simulation\": {},\n", sim_obj(sim_interp)));
    out.push_str(&format!(
        "  \"simulation_bytecode\": {},\n",
        sim_obj(sim_bc)
    ));
    out.push_str(&format!(
        "  \"simulation_netlist\": {},\n",
        sim_obj(sim_net)
    ));
    out.push_str(&format!("  \"sim_speedup\": {sim_speedup:.2},\n"));
    out.push_str(&format!("  \"netlist_speedup\": {netlist_speedup:.2},\n"));
    out.push_str(&format!(
        "  \"dedup_cache\": {{\"checks_run\": {}, \"cache_hits\": {}, \"hit_rate\": {:.4}, \"seconds_cache_on\": {:.6}, \"seconds_cache_off\": {:.6}}}\n",
        dedup.stats.checks_run,
        dedup.stats.cache_hits,
        dedup.stats.hit_rate(),
        dedup.seconds_cache_on,
        dedup.seconds_cache_off
    ));
    out.push_str("}\n");
    out
}
