//! Ablation of the corpus de-duplication stage (DESIGN.md knob #2):
//! MinHash permutation count, LSH band count, and Jaccard threshold vs
//! dedup quality against known ground truth.
//!
//! The synthetic GitHub corpus plants exact clones and near-duplicate forks
//! on purpose, so precision/recall are measurable: recall = fraction of
//! planted duplicates removed; a false positive is a removed file whose
//! cluster representative is not its true source.

use std::collections::HashSet;

use vgen_bench::write_artifact;
use vgen_corpus::minhash::{dedup_clusters, MinHasher};
use vgen_corpus::shingle::{jaccard, shingles};
use vgen_corpus::synth::{generate_github_corpus, SynthConfig};

fn main() {
    let cfg = SynthConfig {
        base_files: 150,
        clone_fraction: 0.2,
        near_dup_fraction: 0.15,
        junk_fraction: 0.0,
        oversized_fraction: 0.0,
    };
    let files = generate_github_corpus(&cfg, 0xDED0);
    // Ground truth: two files are duplicates when their exact Jaccard at
    // k=3 exceeds 0.8 (the pipeline's production threshold).
    let sets: Vec<HashSet<u64>> = files.iter().map(|f| shingles(&f.content, 3)).collect();
    let mut truth_pairs = 0usize;
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            if jaccard(&sets[i], &sets[j]) >= 0.8 {
                truth_pairs += 1;
            }
        }
    }

    let mut report = String::from(
        "ABLATION: MinHash/LSH configuration vs dedup quality\n\
         (ground truth: exact-Jaccard >= 0.8 pairs in a planted corpus)\n\n\
         perms  bands  removed  truth_dups  note\n",
    );
    let truth_removed = {
        // With exact Jaccard the number of removable files equals files
        // whose cluster representative is not themselves.
        let hasher = MinHasher::new(256, 1);
        let reps = dedup_clusters(&sets, &hasher, 256, 0.8);
        reps.iter().enumerate().filter(|(i, r)| *i != **r).count()
    };
    for &(perms, bands) in &[(16usize, 4usize), (32, 8), (64, 16), (128, 32), (256, 64)] {
        let hasher = MinHasher::new(perms, 1);
        let reps = dedup_clusters(&sets, &hasher, bands, 0.8);
        let removed = reps.iter().enumerate().filter(|(i, r)| *i != **r).count();
        let note = if removed == truth_removed {
            "exact"
        } else if removed < truth_removed {
            "missed some (few LSH candidates)"
        } else {
            "over-merged"
        };
        report.push_str(&format!(
            "{perms:>5}  {bands:>5}  {removed:>7}  {truth_removed:>10}  {note}\n"
        ));
    }
    report.push_str(&format!(
        "\n{truth_pairs} ground-truth duplicate pairs in {} files.\n\
         Expected shape: recall saturates once the signature is long enough\n\
         (>= 64 permutations); tiny signatures miss near-duplicate forks\n\
         because no band collides. Candidate pairs are always verified with\n\
         exact Jaccard, so precision never degrades.\n",
        files.len()
    ));
    println!("{report}");
    write_artifact("dedup_ablation.txt", &report);
}
