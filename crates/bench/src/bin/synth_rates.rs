//! Extension experiment (not in the paper): the three-tier
//! compile / synthesize / function rates per model — the "synthesis check"
//! the paper's introduction motivates but its evaluation omits.
//!
//! Expected shape: synthesizable sits between compiled and functional,
//! because latch bugs and timing-control misuse survive the compiler but
//! not the synthesizer.

use vgen_bench::write_artifact;
use vgen_core::sweep::EvalConfig;
use vgen_core::synthcheck::synth_sweep;
use vgen_corpus::CorpusSource;
use vgen_lm::{FamilyEngine, ModelId};
use vgen_problems::PromptLevel;
use vgen_sim::SimConfig;

fn main() {
    let cfg = EvalConfig {
        temperatures: vec![0.1],
        ns: vec![10],
        levels: PromptLevel::ALL.to_vec(),
        problem_ids: (1..=17).collect(),
        sim: SimConfig::default(),
    };
    let mut report = String::from(
        "EXTENSION: compile / synthesize / functional rates (t=0.1, n=10)\n\
         Model                    compile  synth  functional\n",
    );
    for model in ModelId::all_evaluated() {
        let mut engine = FamilyEngine::new(model, CorpusSource::GithubOnly, 0x51A7);
        let t = synth_sweep(&mut engine, &cfg);
        report.push_str(&format!(
            "{:<24} {:>7.3}  {:>5.3}  {:>10.3}\n",
            format!("{model}"),
            t.compile_rate(),
            t.synth_rate(),
            t.functional_rate()
        ));
    }
    println!("{report}");
    write_artifact("synth_rates.txt", &report);
}
