//! `sim_differential` — the compiled backends' differential oracle gate.
//!
//! Runs every design we can get our hands on through all three simulation
//! backends — the tree-walking interpreter as the reference, the bytecode
//! VM and the levelized netlist backend as candidates — and demands
//! *byte-identical* observable behaviour:
//!
//! 1. **Problem catalog** — the reference body and every alternate body of
//!    every problem (core + extended), assembled exactly like the eval
//!    harness does and simulated against the problem's testbench. The full
//!    [`SimOutput`] must match: stdout, stop reason, final time, step
//!    count, and VCD text.
//! 2. **Hostile corpus** — adversarial completions (parser bombs,
//!    elaboration bombs, infinite loops, display floods) run through the
//!    full checker. Resource budgets must trip at the same point and the
//!    [`CheckOutcome`] classification must be identical.
//! 3. **Slow corpus** — legal-but-expensive completions; both backends
//!    must reach the same verdict within the same budgets.
//!
//! Prints a deterministic per-case report and exits non-zero on any
//! divergence, so CI can gate merges on three-way backend parity.

use std::process::ExitCode;

use vgen_core::check::{assemble, check_source};
use vgen_lm::mutate::{hostile_corpus, slow_corpus};
use vgen_problems::{extended_problems, problem, problems, PromptLevel};
use vgen_sim::{SimBackend, SimConfig, SimOutput};

fn config(backend: SimBackend) -> SimConfig {
    SimConfig {
        backend,
        ..SimConfig::default()
    }
}

/// One-line description of where two otherwise-equal outputs differ.
fn describe_divergence(a: &SimOutput, b: &SimOutput) -> String {
    if a.stdout != b.stdout {
        format!(
            "stdout diverged ({} vs {} bytes)",
            a.stdout.len(),
            b.stdout.len()
        )
    } else if a.reason != b.reason {
        format!("stop reason diverged ({:?} vs {:?})", a.reason, b.reason)
    } else if a.time != b.time {
        format!("final time diverged ({} vs {})", a.time, b.time)
    } else if a.steps != b.steps {
        format!("step count diverged ({} vs {})", a.steps, b.steps)
    } else if a.vcd != b.vcd {
        "VCD text diverged".to_string()
    } else {
        "outputs diverged".to_string()
    }
}

/// Simulates `full` (candidate + testbench) on one backend; errors become
/// their display text so parse/elaborate failures also get compared.
fn run(full: &str, backend: SimBackend) -> Result<SimOutput, String> {
    vgen_sim::simulate(full, Some("tb"), config(backend)).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let mut cases = 0usize;
    let mut failures = 0usize;
    let fail = |name: &str, detail: String| {
        println!("FAIL {name}: {detail}");
    };

    // Phase 1: problem catalog, reference + alternate bodies, full SimOutput.
    for prob in problems().iter().chain(extended_problems()) {
        let bodies =
            std::iter::once(prob.reference_body).chain(prob.alternate_bodies.iter().copied());
        for (bi, body) in bodies.enumerate() {
            let name = format!("problem-{}-body-{}", prob.id, bi);
            let source = assemble(prob, PromptLevel::Low, body);
            let full = format!("{source}\n{}", prob.testbench);
            cases += 1;
            let reference = run(&full, SimBackend::Interp);
            for backend in [SimBackend::Bytecode, SimBackend::Netlist] {
                match (&reference, run(&full, backend)) {
                    (Ok(a), Ok(b)) if *a == b => {}
                    (Ok(a), Ok(b)) => {
                        failures += 1;
                        fail(
                            &name,
                            format!("[{}] {}", backend.as_str(), describe_divergence(a, &b)),
                        );
                    }
                    (Err(a), Err(b)) if *a == b => {}
                    (a, b) => {
                        failures += 1;
                        fail(
                            &name,
                            format!(
                                "front-end/verdict split: interp={:?} {}={:?}",
                                a.as_ref().map(|o| &o.reason),
                                backend.as_str(),
                                b.as_ref().map(|o| &o.reason)
                            ),
                        );
                    }
                }
            }
        }
    }
    println!(
        "catalog: {} reference/alternate runs byte-identical across backends",
        cases
    );

    // Phases 2 & 3: adversarial and slow corpora through the full checker.
    // These target problem 2's harness shape (inputs `a`, `b`, output `y`).
    let p2 = problem(2).expect("problem 2 exists");
    let corpora: Vec<(String, String)> = hostile_corpus()
        .into_iter()
        .map(|(op, c)| (format!("hostile-{op:?}"), c))
        .chain(
            slow_corpus()
                .into_iter()
                .map(|(op, c)| (format!("slow-{op:?}"), c)),
        )
        .collect();
    let mut corpus_cases = 0usize;
    for (i, (tag, completion)) in corpora.iter().enumerate() {
        let name = format!("{tag}-{i}");
        let source = assemble(p2, PromptLevel::Low, completion);
        cases += 1;
        corpus_cases += 1;
        let a = check_source(p2, &source, config(SimBackend::Interp));
        for backend in [SimBackend::Bytecode, SimBackend::Netlist] {
            let b = check_source(p2, &source, config(backend));
            if a != b {
                failures += 1;
                fail(
                    &name,
                    format!(
                        "checker verdict diverged [{}]: {a:?} vs {b:?}",
                        backend.as_str()
                    ),
                );
            }
        }
    }
    println!("corpora: {corpus_cases} hostile/slow completions classified identically");

    if failures == 0 {
        println!("sim_differential: {cases} cases, zero divergences");
        ExitCode::SUCCESS
    } else {
        println!("sim_differential: {failures}/{cases} cases diverged");
        ExitCode::FAILURE
    }
}
