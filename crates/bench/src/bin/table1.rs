//! Regenerates paper Table I: baseline LLM architectures.

fn main() {
    let table = vgen_core::report::render_table1();
    println!("{table}");
    vgen_bench::write_artifact("table1.txt", &table);
}
