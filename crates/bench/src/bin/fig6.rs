//! Regenerates paper Fig 6: functional Pass@(scenario·n) across sampling
//! temperature (left) and completions-per-prompt n ∈ {1, 10, 25} (right).
//!
//! This is the largest sweep; set `VGEN_QUICK=1` to shrink it.

use vgen_bench::{quick_mode, write_artifact};
use vgen_core::experiments::evaluate_all_models;
use vgen_core::report::{records_csv, render_fig6_n, render_fig6_temperature};
use vgen_core::sweep::{EvalConfig, PAPER_NS, PAPER_TEMPERATURES};
use vgen_corpus::CorpusSource;

fn main() {
    let (cfg, n_for_left) = if quick_mode() {
        (
            EvalConfig {
                temperatures: vec![0.1, 0.5, 1.0],
                ns: vec![1, 4],
                ..EvalConfig::default()
            },
            4,
        )
    } else {
        (
            EvalConfig {
                temperatures: PAPER_TEMPERATURES.to_vec(),
                ns: PAPER_NS.to_vec(),
                ..EvalConfig::default()
            },
            10,
        )
    };
    let ns = cfg.ns.clone();
    let rows = evaluate_all_models(&cfg, CorpusSource::GithubOnly, 0xF166);
    let left = render_fig6_temperature(&rows, n_for_left);
    let right = render_fig6_n(&rows, &ns);
    println!("{left}\n{right}");
    write_artifact("fig6.txt", &format!("{left}\n{right}"));
    write_artifact("fig6_records.csv", &records_csv(&rows));
}
