//! Regenerates the §VI corpus ablation: CodeGen-16B fine-tuned on (a)
//! GitHub only vs (b) GitHub + textbooks. The paper reports (b) marginally
//! better, by 1.4%.
//!
//! Also runs the *actual* corpus pipeline for both configurations so the
//! report shows what the extra textbook data contributes.

use vgen_bench::{table_config, table_n, write_artifact};
use vgen_core::experiments::evaluate_model;
use vgen_core::report::ModelRun;
use vgen_corpus::pipeline::{build_corpus, PipelineConfig};
use vgen_corpus::CorpusSource;
use vgen_lm::{ModelFamily, ModelId, Tuning};
use vgen_problems::{Difficulty, PromptLevel};

fn overall_functional(row: &ModelRun, n: usize) -> f64 {
    let mut sum = 0.0;
    for d in Difficulty::ALL {
        for l in PromptLevel::ALL {
            sum += row.run.best_functional(d, l, n);
        }
    }
    sum / 9.0
}

fn main() {
    let cfg = table_config();
    let model = ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned);

    let mut report = String::from("ABLATION: fine-tuning corpus (CodeGen-16B FT)\n\n");
    for source in [CorpusSource::GithubOnly, CorpusSource::GithubAndBooks] {
        let corpus = build_corpus(source, &PipelineConfig::default());
        report.push_str(&format!(
            "{source:?}: {} examples, {} bytes ({} book snippets)\n",
            corpus.stats.examples, corpus.stats.bytes, corpus.stats.book_snippets
        ));
    }
    report.push('\n');

    let a = evaluate_model(model, &cfg, CorpusSource::GithubOnly, 0xAB1A);
    let b = evaluate_model(model, &cfg, CorpusSource::GithubAndBooks, 0xAB1A);
    let ra = overall_functional(&a, table_n());
    let rb = overall_functional(&b, table_n());
    report.push_str(&format!(
        "(a) GitHub only:    Pass@(scenario*{n}) = {ra:.4}\n\
         (b) GitHub + books: Pass@(scenario*{n}) = {rb:.4}\n\
         relative improvement: {imp:+.2}%  (paper: +1.4%)\n",
        n = table_n(),
        imp = if ra > 0.0 {
            (rb / ra - 1.0) * 100.0
        } else {
            0.0
        },
    ));
    println!("{report}");
    write_artifact("ablation.txt", &report);
}
