//! Regenerates the §VI/§VII headline aggregates: pre-trained vs fine-tuned
//! compile rates (11.9% vs 64.6%), functional rates (1.09% vs 27.0%), and
//! CodeGen-16B FT vs code-davinci-002 (41.9% vs 35.4%).

use vgen_bench::{table_config, table_n, write_artifact};
use vgen_core::experiments::evaluate_all_models;
use vgen_core::report::{headline_stats, render_headline};
use vgen_corpus::CorpusSource;

fn main() {
    let cfg = table_config();
    let rows = evaluate_all_models(&cfg, CorpusSource::GithubOnly, 0xDA7E2023);
    let h = headline_stats(&rows, table_n());
    let report = render_headline(&h);
    println!("{report}");
    write_artifact("headline.txt", &report);
}
