//! Regenerates paper Table IV: Pass@(scenario·10) for test-bench-passing
//! completions per prompt level, plus the inference-time column.
//!
//! Full grid by default; set `VGEN_QUICK=1` for a smoke run.

use vgen_bench::{table_config, table_n, write_artifact};
use vgen_core::experiments::evaluate_all_models;
use vgen_core::report::{records_csv, render_latency_check, render_table4};
use vgen_corpus::CorpusSource;

fn main() {
    let cfg = table_config();
    let rows = evaluate_all_models(&cfg, CorpusSource::GithubOnly, 0xDA7E2023);
    let table = render_table4(&rows, table_n());
    println!("{table}");
    let latency = render_latency_check(&rows);
    println!("{latency}");
    write_artifact("table4.txt", &format!("{table}\n{latency}"));
    write_artifact("table4_records.csv", &records_csv(&rows));
}
