//! Extension experiment (the paper's §VI future work): prompt engineering
//! for the three problems CodeGen-16B FT failed — LFSR (7), shift/rotate
//! (9) and truth table (12).
//!
//! The engineered prompt texts live in `vgen_problems::engineered_prompt`
//! (they spell out the exact construct the §VI failure analysis found the
//! models fumbling); their modelled effect follows the paper's own
//! prognosis — problems 7 and 9 are prompt-fixable, problem 12's failure is
//! a training-diversity problem no prompt can fix.

use vgen_bench::write_artifact;
use vgen_core::sweep::{run_engine, EvalConfig, PAPER_TEMPERATURES};
use vgen_corpus::CorpusSource;
use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};
use vgen_problems::PromptLevel;
use vgen_sim::SimConfig;

fn main() {
    let cfg = EvalConfig {
        temperatures: PAPER_TEMPERATURES.to_vec(),
        ns: vec![10],
        levels: PromptLevel::ALL.to_vec(),
        problem_ids: vec![6, 7, 9, 12],
        sim: SimConfig::default(),
    };
    let model = ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned);

    let mut plain = FamilyEngine::new(model, CorpusSource::GithubOnly, 0x9E9);
    let plain_run = run_engine(&mut plain, &cfg);
    let mut eng =
        FamilyEngine::new(model, CorpusSource::GithubOnly, 0x9E9).with_engineered_prompts();
    let eng_run = run_engine(&mut eng, &cfg);

    let mut report = String::from(
        "EXTENSION: prompt engineering for the §VI failure problems (CodeGen-16B FT)\n\
         Prob  Name                         standard  engineered\n",
    );
    for pid in [6u8, 7, 9, 12] {
        let name = vgen_problems::problem(pid).map(|p| p.name).unwrap_or("?");
        let a = plain_run.tally(|r| r.problem_id == pid).functional_rate();
        let b = eng_run.tally(|r| r.problem_id == pid).functional_rate();
        report.push_str(&format!("{pid:>4}  {name:<28} {a:>8.3}  {b:>10.3}\n"));
    }
    report.push_str(
        "\nExpected shape: problems 7 and 9 recover under the engineered\n\
         prompt; problem 12 stays at zero (its failure is corpus diversity,\n\
         §VI); problem 6 is a control and does not move.\n",
    );
    println!("{report}");
    write_artifact("prompt_eng.txt", &report);
}
