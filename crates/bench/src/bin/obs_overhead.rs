//! `obs_overhead` — cost of the tracing layer on a real sweep.
//!
//! Runs the same evaluation sweep with tracing off and on (interleaved,
//! best-of-N so a stray scheduling hiccup doesn't skew either side),
//! verifies the traced run produced byte-identical records, validates the
//! exported Chrome trace (well-formed JSON covering every pipeline stage)
//! and writes the measured overhead to `BENCH_obs.json`.
//!
//! A third measured variant runs traced *while a background thread drains
//! live snapshots* every few milliseconds — the daemon's `subscribe` path
//! at a far higher frequency than any real subscriber — so the snapshot
//! drain's cost is fenced separately from plain tracing.
//!
//! ```text
//! cargo run --release -p vgen-bench --bin obs_overhead -- --quick
//! cargo run --release -p vgen-bench --bin obs_overhead -- --quick --gate
//! ```
//!
//! `--gate` exits non-zero when either measured overhead (tracing, or
//! tracing + snapshot drain) exceeds [`OVERHEAD_BUDGET_PCT`] — the CI
//! regression fence for the observability layer's "near-zero cost"
//! promise.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vgen_bench::write_artifact;
use vgen_core::{run_engine_parallel, EvalConfig, EvalRun};
use vgen_corpus::CorpusSource;
use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};
use vgen_problems::PromptLevel;
use vgen_sim::SimConfig;

/// Maximum tolerated slowdown from enabling tracing, in percent.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Stages the exported trace must cover (the instrumentation contract).
const STAGES: &[&str] = &[
    "generate",
    "parse",
    "lint",
    "elaborate",
    "simulate",
    "check",
];

fn engine() -> FamilyEngine {
    FamilyEngine::new(
        ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
        CorpusSource::GithubOnly,
        42,
    )
}

fn config(quick: bool) -> EvalConfig {
    if quick {
        EvalConfig {
            temperatures: vec![0.1],
            ns: vec![4],
            levels: vec![PromptLevel::Low],
            problem_ids: (1..=17).collect(),
            sim: SimConfig::default(),
        }
    } else {
        EvalConfig {
            temperatures: vec![0.1, 0.5],
            ns: vec![10],
            levels: PromptLevel::ALL.to_vec(),
            problem_ids: (1..=17).collect(),
            sim: SimConfig::default(),
        }
    }
}

/// One timed sweep. When `traced`, a fresh obs session wraps the run and
/// the collected report is returned alongside.
fn run_once(cfg: &EvalConfig, traced: bool) -> (EvalRun, f64, Option<vgen_obs::ObsReport>) {
    if traced {
        vgen_obs::enable();
    }
    let start = Instant::now();
    let run = run_engine_parallel(&mut engine(), cfg, 1).expect("sweep");
    let secs = start.elapsed().as_secs_f64();
    let report = traced.then(vgen_obs::collect);
    (run, secs, report)
}

/// A traced sweep with a background subscriber draining a live snapshot
/// every ~5ms — far more often than any real `subscribe` interval. Returns
/// the run, the wall time, and the number of snapshots drained.
fn run_snapshotted(cfg: &EvalConfig) -> (EvalRun, f64, u64) {
    vgen_obs::enable();
    let stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drained = 0u64;
            let mut last = vgen_obs::snapshot();
            while !stop.load(Ordering::Relaxed) {
                let snap = vgen_obs::snapshot();
                let _ = snap.delta(&last);
                last = snap;
                drained += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            drained
        })
    };
    let start = Instant::now();
    let run = run_engine_parallel(&mut engine(), cfg, 1).expect("sweep");
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let drained = drainer.join().expect("snapshot drainer");
    let _ = vgen_obs::collect();
    (run, secs, drained)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if quick { 5 } else { 3 };
    let cfg = config(quick);

    // Warm-up: fault in code pages and the problem/corpus statics so the
    // first measured rep isn't paying one-time costs.
    let (baseline_run, _, _) = run_once(&cfg, false);

    // Interleave plain/traced reps so clock drift and thermal effects hit
    // both sides equally; keep the best (minimum) of each.
    let mut plain_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    let mut snapshot_best = f64::INFINITY;
    let mut snapshots_drained = 0u64;
    let mut last_report = None;
    for _ in 0..reps {
        let (run, secs, _) = run_once(&cfg, false);
        assert_eq!(run, baseline_run, "untraced runs disagree");
        plain_best = plain_best.min(secs);
        let (run, secs, report) = run_once(&cfg, true);
        assert_eq!(
            run, baseline_run,
            "tracing changed the records — determinism broken"
        );
        traced_best = traced_best.min(secs);
        last_report = report;
        let (run, secs, drained) = run_snapshotted(&cfg);
        assert_eq!(
            run, baseline_run,
            "live snapshot drains changed the records — determinism broken"
        );
        snapshot_best = snapshot_best.min(secs);
        snapshots_drained = snapshots_drained.max(drained);
    }

    // Self-validate the export path on the final traced report.
    let report = last_report.expect("traced rep ran");
    let trace = vgen_obs::trace::chrome_trace_json(&report);
    assert_eq!(
        vgen_obs::json::validate(&trace),
        Ok(()),
        "trace export is not well-formed JSON"
    );
    for stage in STAGES {
        assert!(
            trace.contains(&format!("\"name\": \"{stage}\"")),
            "trace is missing stage `{stage}`"
        );
        assert!(
            report.hists.contains_key(stage),
            "no duration histogram for stage `{stage}`"
        );
    }

    let overhead_pct = (traced_best - plain_best) / plain_best * 100.0;
    let snapshot_overhead_pct = (snapshot_best - plain_best) / plain_best * 100.0;
    let checks = baseline_run.records.len();
    println!(
        "obs_overhead: {checks} records, best of {reps}: \
         plain {plain_best:.4}s, traced {traced_best:.4}s, overhead {overhead_pct:+.2}%"
    );
    println!(
        "snapshot drain: {snapshot_best:.4}s ({snapshot_overhead_pct:+.2}%), \
         {snapshots_drained} snapshots drained"
    );
    println!(
        "trace: {} span events, {} stages, {} dropped",
        report.events.len(),
        report.hists.len(),
        report.dropped_events
    );

    let json = render_json(
        quick,
        checks,
        reps,
        plain_best,
        traced_best,
        overhead_pct,
        snapshot_best,
        snapshot_overhead_pct,
        &report,
    );
    write_artifact("BENCH_obs.json", &json);
    if let Some(path) = out_path {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if gate && overhead_pct > OVERHEAD_BUDGET_PCT {
        eprintln!(
            "FAIL: tracing overhead {overhead_pct:.2}% exceeds the \
             {OVERHEAD_BUDGET_PCT:.0}% budget"
        );
        std::process::exit(1);
    }
    if gate && snapshot_overhead_pct > OVERHEAD_BUDGET_PCT {
        eprintln!(
            "FAIL: snapshot-drain overhead {snapshot_overhead_pct:.2}% exceeds \
             the {OVERHEAD_BUDGET_PCT:.0}% budget"
        );
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (no serde in this environment): a stable, diffable
/// shape for the overhead trajectory. `stage_coverage` and `span_events`
/// are deterministic for a fixed workload, so `bench_gate` can hold them
/// as ratio floors; the overhead percentages are machine-dependent and
/// fenced absolutely by `--gate` here instead.
#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    checks: usize,
    reps: usize,
    plain_best: f64,
    traced_best: f64,
    overhead_pct: f64,
    snapshot_best: f64,
    snapshot_overhead_pct: f64,
    report: &vgen_obs::ObsReport,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"obs_overhead\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"records\": {checks},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"plain_seconds\": {plain_best:.6},\n"));
    out.push_str(&format!("  \"traced_seconds\": {traced_best:.6},\n"));
    out.push_str(&format!("  \"overhead_pct\": {overhead_pct:.3},\n"));
    out.push_str(&format!("  \"snapshot_seconds\": {snapshot_best:.6},\n"));
    out.push_str(&format!(
        "  \"snapshot_overhead_pct\": {snapshot_overhead_pct:.3},\n"
    ));
    out.push_str(&format!("  \"budget_pct\": {OVERHEAD_BUDGET_PCT:.1},\n"));
    out.push_str(&format!("  \"stage_coverage\": {},\n", report.hists.len()));
    out.push_str(&format!("  \"span_events\": {},\n", report.events.len()));
    out.push_str(&format!(
        "  \"dropped_events\": {},\n",
        report.dropped_events
    ));
    out.push_str(&format!(
        "  \"stages\": [{}]\n",
        report
            .hists
            .keys()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}
