//! Extension experiment: memorization vs generalization of the *real*
//! trainable engine.
//!
//! The BPE + n-gram pipeline is trained on the synthetic corpus plus the
//! solutions of the original 17 problems, then evaluated on (a) those seen
//! problems and (b) the held-out extended set (problems 18–25). An n-gram
//! model has no abstraction, so the expected shape is stark: near-perfect
//! recall on seen prompts at low temperature, near-zero transfer to unseen
//! ones — the small-scale analogue of the paper's observation that
//! fine-tuned models echo training idioms (§VI) and fail where the corpus
//! lacks diversity (problem 12).

use vgen_bench::write_artifact;
use vgen_core::check::{check_completion, CheckOutcome};
use vgen_corpus::pipeline::{build_corpus, CorpusSource, PipelineConfig};
use vgen_lm::engine::{CompletionEngine, NgramEngine};
use vgen_problems::{extended_problems, problems, Problem, PromptLevel};
use vgen_sim::SimConfig;

fn score(engine: &mut NgramEngine, set: &[&Problem], t: f64, n: usize) -> (usize, usize, usize) {
    let (mut total, mut compiled, mut passed) = (0, 0, 0);
    for p in set {
        for c in engine.generate(p, PromptLevel::Low, t, n) {
            let r = check_completion(p, PromptLevel::Low, &c.text, SimConfig::default());
            total += 1;
            if r.outcome.compiled() {
                compiled += 1;
            }
            if matches!(r.outcome, CheckOutcome::Pass) {
                passed += 1;
            }
        }
    }
    (total, compiled, passed)
}

fn main() {
    let corpus = build_corpus(CorpusSource::GithubAndBooks, &PipelineConfig::default());
    let mut text = corpus.joined_text();
    for p in problems() {
        for s in p.all_solutions() {
            text.push_str(&s);
            text.push('\n');
        }
    }
    eprintln!("training n-gram engine on {} bytes ...", text.len());
    let mut engine = NgramEngine::train(&text, 600, 10, 0xFEED);

    let seen: Vec<&Problem> = problems().iter().collect();
    let unseen: Vec<&Problem> = extended_problems().iter().collect();

    let mut report = String::from(
        "EXTENSION: memorization vs generalization of the real n-gram engine\n\
         (trained on the corpus + the ORIGINAL 17 solutions; extended set held out)\n\n\
         set       t    total  compiled  passed\n",
    );
    for &t in &[0.0, 0.5] {
        let (tot, comp, pass) = score(&mut engine, &seen, t, 3);
        report.push_str(&format!("seen     {t:<4} {tot:>6}  {comp:>8}  {pass:>6}\n"));
        let (tot, comp, pass) = score(&mut engine, &unseen, t, 3);
        report.push_str(&format!("held-out {t:<4} {tot:>6}  {comp:>8}  {pass:>6}\n"));
    }
    report.push_str(
        "\nExpected shape: high pass counts on the seen set at t=0 (pure\n\
         recall), near zero on the held-out set — n-grams memorise, they do\n\
         not generalise. This motivates the paper's use of large pre-trained\n\
         transformers rather than classical LMs.\n",
    );
    println!("{report}");
    write_artifact("generalization.txt", &report);
}
