//! Regenerates paper Table III: Pass@(scenario·10) for *compiled*
//! completions, all 11 model rows, best temperature per scenario.
//!
//! Full grid by default (~1–2 minutes); set `VGEN_QUICK=1` for a smoke run.

use vgen_bench::{table_config, table_n, write_artifact};
use vgen_core::experiments::evaluate_all_models;
use vgen_core::report::{records_csv, render_table3};
use vgen_corpus::CorpusSource;

fn main() {
    let cfg = table_config();
    eprintln!(
        "running {} temperatures x n={:?} over 17 problems x 3 levels x 11 models ...",
        cfg.temperatures.len(),
        cfg.ns
    );
    let rows = evaluate_all_models(&cfg, CorpusSource::GithubOnly, 0xDA7E2023);
    let table = render_table3(&rows, table_n());
    println!("{table}");
    write_artifact("table3.txt", &table);
    write_artifact("table3_records.csv", &records_csv(&rows));
}
