//! `bench_gate` — bench-regression tracking for CI.
//!
//! Compares a fresh `BENCH_sim.json` / `BENCH_sweep.json` (produced by
//! `sim_throughput --quick` and `sweep_scaling --quick`) — and, when
//! available, `BENCH_obs.json` from `obs_overhead --quick` — against
//! baseline copies checked into the repository root, and fails when any
//! tracked metric regresses by more than the tolerance (default 15%).
//!
//! Only **machine-independent** metrics are gated — ratios and
//! deterministic counts, never absolute wall-clock throughput, so the gate
//! holds on any runner:
//!
//! * `sim_speedup`       — bytecode vs. interpreter cycles/s ratio
//! * `netlist_speedup`   — netlist backend vs. bytecode VM cycles/s ratio
//! * `min_speedup_64b`   — packed vs. per-bit vector-op speedup floor
//! * `min_speedup_wide`  — packed vs. per-bit floor over >64-bit vectors
//! * `hit_rate`          — dedup-cache hit rate over the repeated sweep
//! * `total_checks`      — sweep catalog size (shrinkage = silent coverage loss)
//! * `max_parallel_speedup` — best sweep speedup over serial across job
//!   counts; skipped with a warning when the measuring host reports a
//!   single core (a 1-core runner serializes every parallel sweep, so the
//!   ratio is noise — the ROADMAP bench-trajectory note)
//! * `stage_coverage` — pipeline stages with duration histograms in the
//!   obs artifact (shrinkage = an instrumented stage went dark)
//! * `span_events` — trace span events captured over the fixed workload
//!
//! The obs artifact pair is optional: when `--obs`/`--baseline-obs` are
//! not passed and the default files are absent, its gates are skipped with
//! a warning (jobs that don't run `obs_overhead` stay green). Explicitly
//! passed paths must exist. The machine-dependent overhead percentages in
//! the same artifact are fenced absolutely by `obs_overhead --gate`, not
//! here — a ratio floor has no meaning for a lower-is-better percentage.
//!
//! A metric missing from the **fresh** artifact fails the gate (the bench
//! stopped producing it). A metric missing from the **baseline** only
//! warns and is skipped: that is the normal state right after a new metric
//! is introduced, before the baselines are next refreshed.
//!
//! ```text
//! bench_gate --sim FRESH_sim.json --sweep FRESH_sweep.json \
//!            --baseline-sim BENCH_baseline_sim.json \
//!            --baseline-sweep BENCH_baseline_sweep.json \
//!            [--obs FRESH_obs.json --baseline-obs BENCH_baseline_obs.json] \
//!            [--tolerance 0.15]
//! ```

use std::process::ExitCode;

/// Pulls the number following `"key":` out of hand-rolled JSON. All gated
/// keys are unique within their artifact, so a flat scan is exact.
fn metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// True when parallel-speedup metrics are meaningless on the measuring
/// host: a 1-core runner serializes every "parallel" sweep, so
/// `speedup_vs_serial` is pure scheduling noise. Gating it there produces
/// false regressions, so those metrics are skipped with a warning instead.
fn single_core_host(fresh_sweep: &str) -> bool {
    metric(fresh_sweep, "available_parallelism").is_none_or(|p| p <= 1.0)
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Reads an artifact that the invocation may legitimately lack: a missing
/// file behind an *explicitly passed* path is an invocation error, but a
/// missing file at the default path just means that bench didn't run —
/// warn and skip its gates.
fn read_optional(path: &str, explicit: bool) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) if explicit => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
        Err(_) => {
            eprintln!("warn: no {path}, skipping its gates (bench not run)");
            None
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_sim = read(flag(&args, "--sim").unwrap_or("target/experiments/BENCH_sim.json"));
    let fresh_sweep = read(flag(&args, "--sweep").unwrap_or("target/experiments/BENCH_sweep.json"));
    let base_sim = read(flag(&args, "--baseline-sim").unwrap_or("BENCH_baseline_sim.json"));
    let base_sweep = read(flag(&args, "--baseline-sweep").unwrap_or("BENCH_baseline_sweep.json"));
    let fresh_obs = read_optional(
        flag(&args, "--obs").unwrap_or("target/experiments/BENCH_obs.json"),
        flag(&args, "--obs").is_some(),
    );
    let base_obs = read_optional(
        flag(&args, "--baseline-obs").unwrap_or("BENCH_baseline_obs.json"),
        flag(&args, "--baseline-obs").is_some(),
    );
    let tolerance: f64 = flag(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a fraction like 0.15"))
        .unwrap_or(0.15);

    // (label, fresh artifact, baseline artifact, key, parallel-only)
    let mut gates: Vec<(&str, &str, &str, &str, bool)> = vec![
        ("sim_speedup", &fresh_sim, &base_sim, "sim_speedup", false),
        (
            "netlist_speedup",
            &fresh_sim,
            &base_sim,
            "netlist_speedup",
            false,
        ),
        (
            "min_speedup_64b",
            &fresh_sim,
            &base_sim,
            "min_speedup_64b",
            false,
        ),
        (
            "min_speedup_wide",
            &fresh_sim,
            &base_sim,
            "min_speedup_wide",
            false,
        ),
        ("dedup_hit_rate", &fresh_sim, &base_sim, "hit_rate", false),
        (
            "sweep_total_checks",
            &fresh_sweep,
            &base_sweep,
            "total_checks",
            false,
        ),
        (
            "sweep_parallel_speedup",
            &fresh_sweep,
            &base_sweep,
            "max_parallel_speedup",
            true,
        ),
    ];
    if let (Some(fresh), Some(base)) = (&fresh_obs, &base_obs) {
        gates.push(("obs_stage_coverage", fresh, base, "stage_coverage", false));
        gates.push(("obs_span_events", fresh, base, "span_events", false));
    }

    let skip_parallel = single_core_host(&fresh_sweep);
    let mut failures = 0usize;
    for (label, fresh, base, key, parallel_only) in gates {
        if parallel_only && skip_parallel {
            eprintln!(
                "warn {label}: measuring host reports 1 core, \
                 skipping parallel-speedup metric \"{key}\""
            );
            continue;
        }
        let Some(now) = metric(fresh, key) else {
            eprintln!("FAIL {label}: metric \"{key}\" missing from fresh artifact");
            failures += 1;
            continue;
        };
        let Some(then) = metric(base, key) else {
            eprintln!(
                "warn {label}: metric \"{key}\" not in baseline yet, skipping \
                 (refresh baselines to start gating it)"
            );
            continue;
        };
        let floor = then * (1.0 - tolerance);
        let delta = if then != 0.0 {
            (now - then) / then * 100.0
        } else {
            0.0
        };
        if now < floor {
            eprintln!(
                "FAIL {label}: {now:.3} is {delta:+.1}% vs baseline {then:.3} \
                 (floor {floor:.3} at {:.0}% tolerance)",
                tolerance * 100.0
            );
            failures += 1;
        } else {
            println!("ok   {label}: {now:.3} vs baseline {then:.3} ({delta:+.1}%)");
        }
    }

    if failures == 0 {
        println!("bench_gate: all tracked metrics within tolerance");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_gate: {failures} metric(s) regressed beyond tolerance");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_extracts_numbers() {
        let json = r#"{"a": 1.5, "nested": {"b": -2}, "sci": 1.2e3, "s": "x"}"#;
        assert_eq!(metric(json, "a"), Some(1.5));
        assert_eq!(metric(json, "b"), Some(-2.0));
        assert_eq!(metric(json, "sci"), Some(1200.0));
        assert_eq!(metric(json, "missing"), None);
        assert_eq!(metric(json, "s"), None);
    }

    #[test]
    fn single_core_host_detection() {
        assert!(single_core_host(r#"{"available_parallelism": 1}"#));
        assert!(!single_core_host(r#"{"available_parallelism": 8}"#));
        // Artifacts that predate the field are treated as 1-core: better
        // to skip the parallel gate than to fail on a missing metric.
        assert!(single_core_host(r#"{"total_checks": 68}"#));
    }
}
