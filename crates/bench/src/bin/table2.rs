//! Regenerates paper Table II: the problem set.

fn main() {
    let table = vgen_core::report::render_table2();
    println!("{table}");
    vgen_bench::write_artifact("table2.txt", &table);
}
