//! Regenerates the §VI per-problem failure analysis for the best model
//! (CodeGen-16B FT): "for any given problem, CodeGen-16B (FT) produced 540
//! completions, but for Problems 7 (LFSR) and 12 (Truth table), none of the
//! completions passed, and for Problem 9 (Shift and Rotate), only one
//! passed."
//!
//! 540 = 3 levels × 5 temperatures × 36 completions (n=1 + n=10 + n=25).

use vgen_bench::{quick_mode, write_artifact};
use vgen_core::experiments::evaluate_model;
use vgen_core::sweep::{EvalConfig, PAPER_NS, PAPER_TEMPERATURES};
use vgen_corpus::CorpusSource;
use vgen_lm::{ModelFamily, ModelId, Tuning};

fn main() {
    let cfg = if quick_mode() {
        EvalConfig {
            temperatures: vec![0.1, 0.5],
            ns: vec![4],
            ..EvalConfig::default()
        }
    } else {
        EvalConfig {
            temperatures: PAPER_TEMPERATURES.to_vec(),
            ns: PAPER_NS.to_vec(),
            ..EvalConfig::default()
        }
    };
    let model = ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned);
    let row = evaluate_model(model, &cfg, CorpusSource::GithubOnly, 0xDA7E2023);

    let mut report = format!("PER-PROBLEM ANALYSIS — {model}\n");
    report.push_str("Prob  Name                                Completions  Passed\n");
    let mut ids: Vec<u8> = row.run.records.iter().map(|r| r.problem_id).collect();
    ids.sort_unstable();
    ids.dedup();
    for pid in ids {
        let t = row.run.tally(|r| r.problem_id == pid);
        let name = vgen_problems::problem(pid).map(|p| p.name).unwrap_or("?");
        report.push_str(&format!(
            "{pid:>4}  {name:<35} {:>11}  {:>6}\n",
            t.total, t.passed
        ));
    }
    report.push_str(
        "\nExpected shape (paper §VI): problems 7 and 12 pass zero times;\n\
         problem 9 passes at most a couple of times out of 540.\n",
    );
    println!("{report}");
    write_artifact("per_problem.txt", &report);
}
