//! `sim_profile` — runs the `sim_throughput` counter testbench alone, on one
//! backend, for profiler attachment (`gprofng collect app …`) and quick A/B
//! timing without the vector-op and sweep phases.
//!
//! ```text
//! cargo run --release -p vgen-bench --bin sim_profile -- [interp|bytecode] [cycles]
//! ```

use std::time::Instant;

use vgen_sim::{SimBackend, SimConfig};

fn counter_testbench(cycles: u64, bank: usize, procs: usize, nba: bool) -> String {
    let op = if nba { "<=" } else { "=" };
    let mut src = String::from("module tb;\nreg clk;\n");
    for p in 0..procs {
        for i in 0..bank {
            src.push_str(&format!("reg [63:0] acc{p}_{i};\n"));
        }
    }
    src.push_str("initial begin clk = 0; ");
    for p in 0..procs {
        for i in 0..bank {
            src.push_str(&format!("acc{p}_{i} = 0; "));
        }
    }
    src.push_str("end\n");
    src.push_str("always #5 clk = ~clk;\n");
    for p in 0..procs {
        src.push_str("always @(posedge clk) begin\n");
        src.push_str(&format!("  acc{p}_0 {op} acc{p}_0 + 1;\n"));
        for i in 1..bank {
            src.push_str(&format!(
                "  acc{p}_{i} {op} acc{p}_{i} + acc{p}_{};\n",
                i - 1
            ));
        }
        src.push_str("end\n");
    }
    src.push_str(&format!(
        "initial begin #{} $display(\"acc0=%d\", acc0_0); $finish; end\nendmodule\n",
        cycles * 10
    ));
    src
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backend: SimBackend = args
        .first()
        .map(|a| a.parse().expect("backend is interp or bytecode"))
        .unwrap_or_default();
    let cycles: u64 = args
        .get(1)
        .map(|a| a.parse().expect("cycle count"))
        .unwrap_or(1_000_000);
    let bank: usize = args
        .get(2)
        .map(|a| a.parse().expect("accumulator bank size"))
        .unwrap_or(8);
    let procs: usize = args
        .get(3)
        .map(|a| a.parse().expect("process count"))
        .unwrap_or(1);
    let nba = args.get(4).map(|a| a == "nba").unwrap_or(true);
    let src = counter_testbench(cycles, bank, procs, nba);
    let config = SimConfig::default()
        .with_max_time(cycles * 10 + 100)
        .with_max_steps(u64::MAX)
        .with_backend(backend);
    let start = Instant::now();
    let out = vgen_sim::simulate(&src, Some("tb"), config).expect("counter testbench simulates");
    let seconds = start.elapsed().as_secs_f64();
    println!(
        "{}: {} cycles, {} steps, {:.3}s = {:.0} cycles/s ({:.2} Msteps/s)",
        backend.as_str(),
        cycles,
        out.steps,
        seconds,
        cycles as f64 / seconds,
        out.steps as f64 / seconds / 1e6
    );
}
