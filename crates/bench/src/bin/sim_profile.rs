//! `sim_profile` — runs the `sim_throughput` counter testbench alone, on
//! one backend, for profiler attachment (`gprofng collect app …`) and quick
//! A/B timing without the vector-op and sweep phases.
//!
//! With `all` (or no backend argument) it runs the per-backend breakdown
//! instead: the same testbench through interp, bytecode, and netlist
//! back-to-back with ratios against the interpreter, plus the netlist
//! path-attribution counters (levelized processes, sweeps, fallback
//! wakes), so a throughput regression is attributable to a specific
//! backend at a glance.
//!
//! ```text
//! cargo run --release -p vgen-bench --bin sim_profile -- \
//!     [interp|bytecode|netlist|all] [cycles] [bank] [procs] [nba|blocking]
//! ```

use std::time::Instant;

use vgen_sim::{SimBackend, SimConfig, SimStats, Simulator};

fn counter_testbench(cycles: u64, bank: usize, procs: usize, nba: bool) -> String {
    let op = if nba { "<=" } else { "=" };
    let mut src = String::from("module tb;\nreg clk;\n");
    for p in 0..procs {
        for i in 0..bank {
            src.push_str(&format!("reg [63:0] acc{p}_{i};\n"));
        }
    }
    src.push_str("initial begin clk = 0; ");
    for p in 0..procs {
        for i in 0..bank {
            src.push_str(&format!("acc{p}_{i} = 0; "));
        }
    }
    src.push_str("end\n");
    src.push_str("always #5 clk = ~clk;\n");
    for p in 0..procs {
        src.push_str("always @(posedge clk) begin\n");
        src.push_str(&format!("  acc{p}_0 {op} acc{p}_0 + 1;\n"));
        for i in 1..bank {
            src.push_str(&format!(
                "  acc{p}_{i} {op} acc{p}_{i} + acc{p}_{};\n",
                i - 1
            ));
        }
        src.push_str("end\n");
    }
    src.push_str(&format!(
        "initial begin #{} $display(\"acc0=%d\", acc0_0); $finish; end\nendmodule\n",
        cycles * 10
    ));
    src
}

/// One timed run; the stats are all-zero off the netlist backend.
fn run_one(src: &str, config: SimConfig) -> (u64, f64, SimStats) {
    let file = vgen_verilog::parse(src).expect("counter testbench parses");
    let design = vgen_sim::elab::elaborate(&file, "tb").expect("counter testbench elaborates");
    let sim = Simulator::with_config(design, config);
    let start = Instant::now();
    let (out, _, stats) = sim.run_with_state_stats();
    (out.steps, start.elapsed().as_secs_f64(), stats)
}

/// Per-backend breakdown: all three backends on the identical testbench.
fn breakdown(src: &str, cycles: u64, config: &SimConfig) {
    let mut interp_secs = None;
    for backend in [
        SimBackend::Interp,
        SimBackend::Bytecode,
        SimBackend::Netlist,
    ] {
        let cfg = SimConfig { backend, ..*config };
        let (steps, seconds, stats) = run_one(src, cfg);
        let vs_interp = match interp_secs {
            None => {
                interp_secs = Some(seconds);
                1.0
            }
            Some(base) => base / seconds,
        };
        print!(
            "{:>8}: {:>9.3}s = {:>9.0} cycles/s  ({:>7.2} Msteps/s, {} steps)  {:>5.2}x vs interp",
            backend.as_str(),
            seconds,
            cycles as f64 / seconds,
            steps as f64 / seconds / 1e6,
            steps,
            vs_interp,
        );
        if backend == SimBackend::Netlist {
            print!(
                "  [levelized procs {}, sweeps {}, fallback wakes {}]",
                stats.netlist_procs, stats.netlist_sweeps, stats.netlist_fallback_wakes
            );
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.first().map(|a| a == "all").unwrap_or(true);
    let backend: SimBackend = args
        .first()
        .filter(|a| *a != "all")
        .map(|a| a.parse().expect("backend is interp, bytecode or netlist"))
        .unwrap_or_default();
    let cycles: u64 = args
        .get(1)
        .map(|a| a.parse().expect("cycle count"))
        .unwrap_or(1_000_000);
    let bank: usize = args
        .get(2)
        .map(|a| a.parse().expect("accumulator bank size"))
        .unwrap_or(8);
    let procs: usize = args
        .get(3)
        .map(|a| a.parse().expect("process count"))
        .unwrap_or(1);
    let nba = args.get(4).map(|a| a == "nba").unwrap_or(true);
    let src = counter_testbench(cycles, bank, procs, nba);
    let config = SimConfig::default()
        .with_max_time(cycles * 10 + 100)
        .with_max_steps(u64::MAX)
        .with_backend(backend);
    if all {
        println!("sim_profile breakdown: {cycles} cycles, bank={bank}, procs={procs}, nba={nba}");
        breakdown(&src, cycles, &config);
        return;
    }
    let (steps, seconds, _) = run_one(&src, config);
    println!(
        "{}: {} cycles, {} steps, {:.3}s = {:.0} cycles/s ({:.2} Msteps/s)",
        backend.as_str(),
        cycles,
        steps,
        seconds,
        cycles as f64 / seconds,
        steps as f64 / seconds / 1e6
    );
}
