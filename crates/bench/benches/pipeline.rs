//! End-to-end pipeline benchmarks: what one benchmark *query* costs
//! (generate → truncate → compile → simulate), and the per-scenario sweep
//! throughput that bounds full-table regeneration time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vgen_core::check::check_completion;
use vgen_core::sweep::{run_engine, EvalConfig};
use vgen_corpus::CorpusSource;
use vgen_lm::engine::CompletionEngine;
use vgen_lm::{FamilyEngine, ModelFamily, ModelId, Tuning};
use vgen_problems::{problem, PromptLevel};
use vgen_sim::SimConfig;

fn bench_check(c: &mut Criterion) {
    let p6 = problem(6).expect("p6");
    let mut g = c.benchmark_group("check");
    g.bench_function("check_correct_counter", |b| {
        b.iter(|| {
            black_box(check_completion(
                p6,
                PromptLevel::Low,
                p6.reference_body,
                SimConfig::default(),
            ))
        })
    });
    g.bench_function("check_syntax_error", |b| {
        b.iter(|| {
            black_box(check_completion(
                p6,
                PromptLevel::Low,
                "always @(posedge clk begin q <= q + 1;\nendmodule",
                SimConfig::default(),
            ))
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let p2 = problem(2).expect("p2");
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("family_generate_n10", |b| {
        let mut engine = FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
            CorpusSource::GithubOnly,
            1,
        );
        // Prime the bank so the benchmark measures steady-state generation.
        let _ = engine.generate(p2, PromptLevel::Low, 0.1, 1);
        b.iter(|| black_box(engine.generate(p2, PromptLevel::Low, 0.1, 10)))
    });
    g.bench_function("scenario_sweep_basic", |b| {
        let cfg = EvalConfig {
            temperatures: vec![0.1],
            ns: vec![5],
            levels: vec![PromptLevel::Low],
            problem_ids: vec![1, 2, 3, 4],
            sim: SimConfig::default(),
        };
        let mut engine = FamilyEngine::new(
            ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned),
            CorpusSource::GithubOnly,
            2,
        );
        b.iter(|| black_box(run_engine(&mut engine, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_check, bench_engine);
criterion_main!(benches);
