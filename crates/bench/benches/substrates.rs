//! Criterion micro-benchmarks for the substrates, including the ablation
//! sweeps called out in DESIGN.md: MinHash permutation count and BPE merge
//! count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vgen_corpus::minhash::MinHasher;
use vgen_corpus::pipeline::{build_corpus, CorpusSource, PipelineConfig};
use vgen_corpus::shingle::shingles;
use vgen_lm::bpe::Bpe;
use vgen_lm::ngram::NgramModel;
use vgen_problems::problems;

fn sample_sources() -> Vec<String> {
    problems().iter().map(|p| p.reference_source()).collect()
}

fn bench_frontend(c: &mut Criterion) {
    let sources = sample_sources();
    let joined = sources.join("\n");
    let mut g = c.benchmark_group("frontend");
    g.bench_function("lex_all_references", |b| {
        b.iter(|| {
            for s in &sources {
                black_box(vgen_verilog::lexer::tokenize(s).expect("lex"));
            }
        })
    });
    g.bench_function("parse_all_references", |b| {
        b.iter(|| {
            for s in &sources {
                black_box(vgen_verilog::parse(s).expect("parse"));
            }
        })
    });
    g.bench_function("pretty_roundtrip", |b| {
        let file = vgen_verilog::parse(&joined).expect("parse");
        b.iter(|| black_box(vgen_verilog::pretty::pretty_file(&file)));
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let counter = vgen_problems::problem(6).expect("p6");
    let src = format!("{}\n{}", counter.reference_source(), counter.testbench);
    let abro = vgen_problems::problem(17).expect("p17");
    let abro_src = format!("{}\n{}", abro.reference_source(), abro.testbench);
    let mut g = c.benchmark_group("simulator");
    g.bench_function("elaborate_counter_tb", |b| {
        let file = vgen_verilog::parse(&src).expect("parse");
        b.iter(|| black_box(vgen_sim::elab::elaborate(&file, "tb").expect("elab")));
    });
    g.bench_function("simulate_counter_tb", |b| {
        b.iter(|| {
            black_box(
                vgen_sim::simulate(&src, Some("tb"), vgen_sim::SimConfig::default()).expect("sim"),
            )
        })
    });
    g.bench_function("simulate_abro_tb", |b| {
        b.iter(|| {
            black_box(
                vgen_sim::simulate(&abro_src, Some("tb"), vgen_sim::SimConfig::default())
                    .expect("sim"),
            )
        })
    });
    g.finish();
}

fn bench_minhash(c: &mut Criterion) {
    let corpus = build_corpus(
        CorpusSource::GithubOnly,
        &PipelineConfig {
            synth: vgen_corpus::synth::SynthConfig {
                base_files: 60,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let sets: Vec<_> = corpus
        .examples
        .iter()
        .take(100)
        .map(|e| shingles(e, 3))
        .collect();
    let mut g = c.benchmark_group("minhash");
    // Ablation: signature length vs cost.
    for perms in [32usize, 64, 128, 256] {
        g.bench_with_input(
            BenchmarkId::new("signatures", perms),
            &perms,
            |b, &perms| {
                let hasher = MinHasher::new(perms, 7);
                b.iter(|| {
                    for s in &sets {
                        black_box(hasher.signature(s));
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_lm(c: &mut Criterion) {
    let text: String = sample_sources().join("\n").repeat(4);
    let mut g = c.benchmark_group("lm");
    g.sample_size(10);
    // Ablation: BPE merge count vs training cost and compression.
    for merges in [100usize, 400] {
        g.bench_with_input(BenchmarkId::new("bpe_train", merges), &merges, |b, &m| {
            b.iter(|| black_box(Bpe::train(&text, m)))
        });
    }
    let bpe = Bpe::train(&text, 400);
    let tokens = bpe.encode(&text);
    g.bench_function("bpe_encode", |b| b.iter(|| black_box(bpe.encode(&text))));
    for order in [3usize, 6] {
        g.bench_with_input(BenchmarkId::new("ngram_train", order), &order, |b, &o| {
            b.iter(|| black_box(NgramModel::train(&tokens, o)))
        });
    }
    let model = NgramModel::train(&tokens, 6);
    g.bench_function("ngram_next_scores", |b| {
        b.iter(|| black_box(model.next_scores(&tokens[..64])))
    });
    g.finish();
}

fn bench_synth(c: &mut Criterion) {
    let abro = vgen_problems::problem(17).expect("p17").reference_source();
    let shift64 = vgen_problems::problem(16).expect("p16").reference_source();
    let mut g = c.benchmark_group("synth");
    g.bench_function("synthesize_abro", |b| {
        b.iter(|| black_box(vgen_synth::synthesize_source(&abro).expect("synth")))
    });
    g.bench_function("synthesize_shift64", |b| {
        b.iter(|| black_box(vgen_synth::synthesize_source(&shift64).expect("synth")))
    });
    g.bench_function("netlist_eval_cycle", |b| {
        let r = vgen_synth::synthesize_source(&abro).expect("synth");
        let mut sim = vgen_synth::NetlistSim::new(r.netlist);
        use vgen_verilog::value::LogicVec;
        sim.set_input("reset", LogicVec::from_bool(false));
        sim.set_input("a", LogicVec::from_bool(true));
        sim.set_input("b", LogicVec::from_bool(false));
        let mut clk = 0u64;
        b.iter(|| {
            clk ^= 1;
            black_box(sim.set_and_step("clk", LogicVec::from_u64(clk, 1)))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_simulator,
    bench_minhash,
    bench_lm,
    bench_synth
);
criterion_main!(benches);
