//! A token n-gram language model with Stupid Backoff.
//!
//! This is the trainable stand-in for the transformer LLMs the paper
//! fine-tunes: it exercises the same pipeline — tokenize a Verilog corpus,
//! fit a next-token distribution, sample autoregressively with temperature
//! and nucleus (top-p) truncation — at laptop scale.

use crate::bpe::TokenId;
use std::collections::HashMap;

/// Backoff discount per order (Brants et al.'s "stupid backoff" alpha).
const BACKOFF_ALPHA: f64 = 0.4;

/// A trained n-gram model over token ids.
#[derive(Debug, Clone)]
pub struct NgramModel {
    order: usize,
    /// For each order k (1..=order), counts of (context, next) and context
    /// totals. Contexts are the last k-1 tokens.
    counts: Vec<HashMap<Vec<TokenId>, HashMap<TokenId, u32>>>,
    vocab: Vec<TokenId>,
}

impl NgramModel {
    /// Trains an `order`-gram model on a token stream.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn train(tokens: &[TokenId], order: usize) -> Self {
        assert!(order > 0, "order must be positive");
        let mut counts: Vec<HashMap<Vec<TokenId>, HashMap<TokenId, u32>>> =
            vec![HashMap::new(); order];
        let mut vocab_set = std::collections::HashSet::new();
        for (i, &tok) in tokens.iter().enumerate() {
            vocab_set.insert(tok);
            for k in 1..=order {
                if i + 1 >= k {
                    let ctx = tokens[i + 1 - k..i].to_vec();
                    *counts[k - 1]
                        .entry(ctx)
                        .or_default()
                        .entry(tok)
                        .or_insert(0) += 1;
                }
            }
        }
        let mut vocab: Vec<TokenId> = vocab_set.into_iter().collect();
        vocab.sort_unstable();
        NgramModel {
            order,
            counts,
            vocab,
        }
    }

    /// Model order (n).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of distinct tokens seen in training.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Unnormalised next-token scores for a context via Stupid Backoff:
    /// use the longest matching context; shorter contexts are discounted by
    /// `alpha` per backoff level.
    pub fn next_scores(&self, context: &[TokenId]) -> Vec<(TokenId, f64)> {
        let max_ctx = self.order - 1;
        let start = context.len().saturating_sub(max_ctx);
        let mut ctx = &context[start..];
        let mut discount = 1.0;
        loop {
            let k = ctx.len() + 1;
            if let Some(nexts) = self.counts[k - 1].get(ctx) {
                let total: u32 = nexts.values().sum();
                if total > 0 {
                    let mut scores: Vec<(TokenId, f64)> = nexts
                        .iter()
                        .map(|(&t, &c)| (t, discount * c as f64 / total as f64))
                        .collect();
                    scores.sort_unstable_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    });
                    return scores;
                }
            }
            if ctx.is_empty() {
                // Unseen even as unigram: uniform over vocabulary.
                let p = discount / self.vocab.len().max(1) as f64;
                return self.vocab.iter().map(|&t| (t, p)).collect();
            }
            ctx = &ctx[1..];
            discount *= BACKOFF_ALPHA;
        }
    }

    /// Per-token perplexity of a token stream under the model (lower is
    /// better). Uses the backoff scores normalised per step.
    pub fn perplexity(&self, tokens: &[TokenId]) -> f64 {
        if tokens.len() < 2 {
            return f64::INFINITY;
        }
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for i in 1..tokens.len() {
            let scores = self.next_scores(&tokens[..i]);
            let total: f64 = scores.iter().map(|(_, s)| s).sum();
            let p = scores
                .iter()
                .find(|(t, _)| *t == tokens[i])
                .map(|(_, s)| s / total)
                .unwrap_or(1e-9);
            log_sum += p.max(1e-12).ln();
            n += 1;
        }
        (-log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<TokenId> {
        s.bytes().map(|b| b as TokenId).collect()
    }

    #[test]
    fn learns_deterministic_sequence() {
        let t = toks(&"abcd".repeat(50));
        let m = NgramModel::train(&t, 3);
        // After "ab", "c" is certain.
        let scores = m.next_scores(&toks("ab"));
        assert_eq!(scores[0].0, b'c' as TokenId);
        assert!(scores[0].1 > 0.99);
    }

    #[test]
    fn backoff_on_unseen_context() {
        let t = toks(&"abcd".repeat(20));
        let m = NgramModel::train(&t, 3);
        // Context "zz" never seen: backs off to unigram, still returns
        // something sensible.
        let scores = m.next_scores(&toks("zz"));
        assert!(!scores.is_empty());
        let total: f64 = scores.iter().map(|(_, s)| s).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn branching_context_has_two_options() {
        // After "ab": half the time c, half the time d.
        let mut seq = Vec::new();
        for i in 0..40 {
            seq.extend(toks("ab"));
            seq.push(if i % 2 == 0 {
                b'c' as TokenId
            } else {
                b'd' as TokenId
            });
        }
        let m = NgramModel::train(&seq, 3);
        let scores = m.next_scores(&toks("ab"));
        let top2: Vec<TokenId> = scores.iter().take(2).map(|(t, _)| *t).collect();
        assert!(top2.contains(&(b'c' as TokenId)));
        assert!(top2.contains(&(b'd' as TokenId)));
        assert!((scores[0].1 - 0.5).abs() < 0.1);
    }

    #[test]
    fn perplexity_lower_on_training_text() {
        let train = toks(&"module m endmodule ".repeat(30));
        let m = NgramModel::train(&train, 4);
        let on_train = m.perplexity(&train);
        let on_noise = m.perplexity(&toks("zqxwvy kjhgf"));
        assert!(
            on_train < on_noise,
            "train ppl {on_train} should be below noise ppl {on_noise}"
        );
    }

    #[test]
    fn higher_order_fits_better() {
        let text = "always @(posedge clk) q <= q + 1; ".repeat(20);
        let t = toks(&text);
        let low = NgramModel::train(&t, 2).perplexity(&t);
        let high = NgramModel::train(&t, 5).perplexity(&t);
        assert!(
            high < low,
            "order-5 ppl {high} should beat order-2 ppl {low}"
        );
    }

    #[test]
    fn vocab_size_counts_distinct() {
        let m = NgramModel::train(&toks("aabbcc"), 2);
        assert_eq!(m.vocab_size(), 3);
        assert_eq!(m.order(), 2);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_panics() {
        let _ = NgramModel::train(&[1, 2, 3], 0);
    }
}
