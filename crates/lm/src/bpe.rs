//! A trainable byte-pair-encoding tokenizer (paper §II-A: inputs to LLMs
//! are tokens from a byte pair encoding, Gage 1994).
//!
//! Training learns greedy merges of the most frequent adjacent pair;
//! encoding applies merges in learned order. Byte-level base vocabulary
//! guarantees any input round-trips.

use std::collections::HashMap;

/// A token id.
pub type TokenId = u32;

/// A trained BPE vocabulary.
#[derive(Debug, Clone)]
pub struct Bpe {
    /// Learned merges in order: (left, right) -> new token.
    merges: Vec<(TokenId, TokenId)>,
    /// Token id of each merge result: `256 + index`.
    merge_lookup: HashMap<(TokenId, TokenId), TokenId>,
    /// Byte sequences for every token id.
    token_bytes: Vec<Vec<u8>>,
}

impl Bpe {
    /// Trains a tokenizer on `text`, learning up to `merges` merges.
    ///
    /// Merges stop early when no pair repeats. A merge is only learned from
    /// pairs occurring at least twice.
    pub fn train(text: &str, merges: usize) -> Self {
        let mut token_bytes: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
        let mut seq: Vec<TokenId> = text.bytes().map(|b| b as TokenId).collect();
        let mut learned = Vec::new();
        let mut merge_lookup = HashMap::new();
        for _ in 0..merges {
            let mut counts: HashMap<(TokenId, TokenId), usize> = HashMap::new();
            for w in seq.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            let Some((&pair, &count)) = counts
                .iter()
                .max_by_key(|(pair, c)| (**c, std::cmp::Reverse(**pair)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let new_id = token_bytes.len() as TokenId;
            let mut bytes = token_bytes[pair.0 as usize].clone();
            bytes.extend_from_slice(&token_bytes[pair.1 as usize]);
            token_bytes.push(bytes);
            learned.push(pair);
            merge_lookup.insert(pair, new_id);
            seq = merge_pair(&seq, pair, new_id);
        }
        Bpe {
            merges: learned,
            merge_lookup,
            token_bytes,
        }
    }

    /// Vocabulary size (256 byte tokens + learned merges).
    pub fn vocab_size(&self) -> usize {
        self.token_bytes.len()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Encodes text into token ids by replaying merges in learned order.
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut seq: Vec<TokenId> = text.bytes().map(|b| b as TokenId).collect();
        for (i, &pair) in self.merges.iter().enumerate() {
            let new_id = 256 + i as TokenId;
            if seq.len() < 2 {
                break;
            }
            seq = merge_pair(&seq, pair, new_id);
        }
        seq
    }

    /// Decodes token ids back to text (lossy UTF-8 for safety).
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &t in tokens {
            if let Some(b) = self.token_bytes.get(t as usize) {
                bytes.extend_from_slice(b);
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// The byte length of a token (for throughput statistics).
    pub fn token_len(&self, t: TokenId) -> usize {
        self.token_bytes
            .get(t as usize)
            .map(|b| b.len())
            .unwrap_or(0)
    }

    /// Compression ratio achieved on `text` (bytes per token).
    pub fn compression(&self, text: &str) -> f64 {
        let toks = self.encode(text);
        if toks.is_empty() {
            return 0.0;
        }
        text.len() as f64 / toks.len() as f64
    }

    /// Looks up the merged token for a pair, if learned.
    pub fn merged(&self, a: TokenId, b: TokenId) -> Option<TokenId> {
        self.merge_lookup.get(&(a, b)).copied()
    }
}

fn merge_pair(seq: &[TokenId], pair: (TokenId, TokenId), new_id: TokenId) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(seq.len());
    let mut i = 0;
    while i < seq.len() {
        if i + 1 < seq.len() && seq[i] == pair.0 && seq[i + 1] == pair.1 {
            out.push(new_id);
            i += 2;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "always @(posedge clk) begin q <= q + 1; end\n\
                          always @(posedge clk) begin r <= r + 1; end\n";

    #[test]
    fn round_trip_exact() {
        let bpe = Bpe::train(SAMPLE, 50);
        let toks = bpe.encode(SAMPLE);
        assert_eq!(bpe.decode(&toks), SAMPLE);
    }

    #[test]
    fn round_trip_unseen_text() {
        let bpe = Bpe::train(SAMPLE, 50);
        let other = "module unseen(input x); assign y = ~x; endmodule";
        assert_eq!(bpe.decode(&bpe.encode(other)), other);
    }

    #[test]
    fn merges_compress() {
        let bpe = Bpe::train(&SAMPLE.repeat(20), 100);
        assert!(bpe.merge_count() > 10);
        let ratio = bpe.compression(SAMPLE);
        assert!(ratio > 1.5, "expected compression, got {ratio}");
    }

    #[test]
    fn zero_merges_is_byte_level() {
        let bpe = Bpe::train(SAMPLE, 0);
        assert_eq!(bpe.vocab_size(), 256);
        assert_eq!(bpe.encode("abc"), vec![97, 98, 99]);
    }

    #[test]
    fn merge_stops_on_unique_pairs() {
        let bpe = Bpe::train("abcdefg", 1000);
        // No pair repeats, so nothing merges.
        assert_eq!(bpe.merge_count(), 0);
    }

    #[test]
    fn more_merges_never_hurt_compression() {
        let text = SAMPLE.repeat(10);
        let small = Bpe::train(&text, 20).compression(&text);
        let large = Bpe::train(&text, 200).compression(&text);
        assert!(large >= small);
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train(SAMPLE, 64).encode(SAMPLE);
        let b = Bpe::train(SAMPLE, 64).encode(SAMPLE);
        assert_eq!(a, b);
    }

    #[test]
    fn non_ascii_round_trips() {
        let text = "// ° signal für τ\nmodule m; endmodule";
        let bpe = Bpe::train(text, 10);
        assert_eq!(bpe.decode(&bpe.encode(text)), text);
    }
}
