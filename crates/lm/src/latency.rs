//! Inference-time model reproducing Table IV's "Inference Time (s)" column.
//!
//! The paper measured wall-clock per query, including network time for the
//! remote models (J1, code-davinci-002). We model each (family, tuning) as
//! a log-normal-ish jittered mean anchored at the paper's reported value:
//! fine-tuned local checkpoints are much faster than their pre-trained
//! counterparts served remotely or under heavier decoding settings.

use crate::registry::{ModelFamily, ModelId, Tuning};
use rand::Rng;

/// Mean inference seconds reported in Table IV for a model row.
pub fn paper_mean_seconds(model: ModelId) -> f64 {
    use ModelFamily::*;
    use Tuning::*;
    match (model.family, model.tuning) {
        (Megatron355M, Pretrained) => 3.628,
        (Megatron355M, FineTuned) => 0.175,
        (CodeGen2B, Pretrained) => 1.478,
        (CodeGen2B, FineTuned) => 0.665,
        (CodeGen6B, Pretrained) => 2.332,
        (CodeGen6B, FineTuned) => 0.710,
        (J1Large7B, Pretrained) => 7.146,
        (J1Large7B, FineTuned) => 2.029,
        (CodeGen16B, Pretrained) => 2.835,
        (CodeGen16B, FineTuned) => 1.994,
        (CodeDavinci002, _) => 3.885,
    }
}

/// Whether queries to this family traverse a remote API (adds RTT jitter).
pub fn is_remote(family: ModelFamily) -> bool {
    matches!(family, ModelFamily::J1Large7B | ModelFamily::CodeDavinci002)
}

/// Samples one query's inference time in seconds: the Table IV mean with
/// ±15% multiplicative jitter, plus 0–300 ms simulated RTT for remote APIs.
pub fn sample_seconds<R: Rng>(model: ModelId, rng: &mut R) -> f64 {
    let mean = paper_mean_seconds(model);
    let jitter = rng.gen_range(0.85..1.15);
    let rtt = if is_remote(model.family) {
        rng.gen_range(0.0..0.3)
    } else {
        0.0
    };
    mean * jitter + rtt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelFamily, Tuning};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fine_tuned_is_faster_than_pretrained() {
        for family in ModelFamily::ALL {
            if !family.supports_fine_tuning() {
                continue;
            }
            let pt = paper_mean_seconds(ModelId::new(family, Tuning::Pretrained));
            let ft = paper_mean_seconds(ModelId::new(family, Tuning::FineTuned));
            assert!(ft < pt, "{family}: FT {ft} should be below PT {pt}");
        }
    }

    #[test]
    fn j1_is_slowest() {
        let all: Vec<f64> = ModelId::all_evaluated()
            .into_iter()
            .map(paper_mean_seconds)
            .collect();
        let j1 = paper_mean_seconds(ModelId::new(ModelFamily::J1Large7B, Tuning::Pretrained));
        assert!(all.iter().all(|&t| t <= j1));
    }

    #[test]
    fn samples_stay_near_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned);
        let mean = paper_mean_seconds(model);
        let n = 2000;
        let total: f64 = (0..n).map(|_| sample_seconds(model, &mut rng)).sum();
        let avg = total / n as f64;
        assert!(
            (avg - mean).abs() / mean < 0.05,
            "avg {avg} should track mean {mean}"
        );
    }

    #[test]
    fn remote_models_pay_rtt() {
        let mut rng = StdRng::seed_from_u64(6);
        let remote = ModelId::new(ModelFamily::J1Large7B, Tuning::FineTuned);
        let n = 2000;
        let avg: f64 = (0..n)
            .map(|_| sample_seconds(remote, &mut rng))
            .sum::<f64>()
            / n as f64;
        // Mean + ~0.15 average RTT.
        assert!(avg > paper_mean_seconds(remote) + 0.05);
        assert!(is_remote(ModelFamily::CodeDavinci002));
        assert!(!is_remote(ModelFamily::CodeGen16B));
    }
}
