//! # vgen-lm
//!
//! The language-model layer of the VGen reproduction:
//!
//! * [`bpe`] + [`ngram`] + [`sampler`] — a *real*, laptop-scale
//!   train→sample pipeline (BPE tokenizer, backoff n-gram LM, temperature /
//!   top-p autoregressive decoding) standing in for transformer training.
//! * [`registry`] — the six LLMs of paper Table I with their metadata.
//! * [`mutate`] — AST/text mutation reproducing the paper's observed
//!   failure modes.
//! * [`family`] — the calibrated generative model of each (model, tuning)
//!   row, anchored to Tables III/IV.
//! * [`latency`] — the inference-time model for Table IV's time column.
//!
//! ```
//! use vgen_lm::engine::{CompletionEngine, NgramEngine};
//! use vgen_problems::{problems, PromptLevel};
//!
//! let mut lm = NgramEngine::train("module m(input a, output y);\nassign y = a;\nendmodule\n", 50, 4, 0);
//! let out = lm.generate(&problems()[0], PromptLevel::Low, 0.1, 1);
//! assert_eq!(out.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod bpe;
pub mod engine;
pub mod family;
pub mod latency;
pub mod mutate;
pub mod ngram;
pub mod registry;
pub mod sampler;

pub use engine::{Completion, CompletionEngine, NgramEngine};
pub use family::FamilyEngine;
pub use registry::{ModelFamily, ModelId, Tuning};
