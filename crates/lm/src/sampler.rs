//! Temperature and nucleus (top-p) sampling (paper §IV-B input parameters:
//! sampling temperature `t`, `max_tokens`, `top_p`).

use crate::bpe::TokenId;
use rand::Rng;

/// Sampling parameters for one generation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingParams {
    /// Sampling temperature; 0 means greedy argmax.
    pub temperature: f64,
    /// Nucleus probability mass (paper default 1.0 = disabled).
    pub top_p: f64,
    /// Maximum tokens to generate (paper: 300, 256 for J1).
    pub max_tokens: usize,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            temperature: 0.1,
            top_p: 1.0,
            max_tokens: 300,
        }
    }
}

/// Draws one token from `(token, score)` pairs after applying temperature
/// scaling and top-p truncation.
///
/// Scores need not be normalised. Temperature ≤ 0 (or exactly 0) selects
/// the argmax. The pairs must be sorted descending by score (as
/// [`NgramModel::next_scores`](crate::ngram::NgramModel::next_scores)
/// returns them).
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn sample_token<R: Rng>(
    scores: &[(TokenId, f64)],
    temperature: f64,
    top_p: f64,
    rng: &mut R,
) -> TokenId {
    assert!(!scores.is_empty(), "cannot sample from empty distribution");
    if temperature <= f64::EPSILON {
        return scores[0].0;
    }
    // Temperature: p_i ∝ p_i^(1/T).
    let inv_t = 1.0 / temperature;
    let mut weighted: Vec<(TokenId, f64)> = scores
        .iter()
        .map(|&(t, s)| (t, s.max(1e-12).powf(inv_t)))
        .collect();
    let total: f64 = weighted.iter().map(|(_, w)| w).sum();
    for w in &mut weighted {
        w.1 /= total;
    }
    // Nucleus: keep the smallest prefix with cumulative mass >= top_p.
    if top_p < 1.0 {
        let mut cum = 0.0;
        let mut keep = weighted.len();
        for (i, (_, w)) in weighted.iter().enumerate() {
            cum += w;
            if cum >= top_p {
                keep = i + 1;
                break;
            }
        }
        weighted.truncate(keep);
    }
    let total: f64 = weighted.iter().map(|(_, w)| w).sum();
    let mut draw = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (t, w) in &weighted {
        if draw < *w {
            return *t;
        }
        draw -= w;
    }
    weighted.last().expect("non-empty after truncation").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist() -> Vec<(TokenId, f64)> {
        vec![(1, 0.7), (2, 0.2), (3, 0.1)]
    }

    #[test]
    fn zero_temperature_is_greedy() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(sample_token(&dist(), 0.0, 1.0, &mut rng), 1);
        }
    }

    #[test]
    fn low_temperature_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let picks: Vec<TokenId> = (0..200)
            .map(|_| sample_token(&dist(), 0.1, 1.0, &mut rng))
            .collect();
        let ones = picks.iter().filter(|&&t| t == 1).count();
        assert!(
            ones > 195,
            "low temperature should almost always pick top: {ones}"
        );
    }

    #[test]
    fn high_temperature_spreads() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks: Vec<TokenId> = (0..3000)
            .map(|_| sample_token(&dist(), 5.0, 1.0, &mut rng))
            .collect();
        let threes = picks.iter().filter(|&&t| t == 3).count();
        // At T=5 the distribution is nearly uniform; token 3 ≈ 1/3.
        assert!(
            threes > 700,
            "high temperature should visit tail often: {threes}/3000"
        );
    }

    #[test]
    fn top_p_cuts_the_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        // top_p = 0.7 keeps only token 1 at T=1.
        for _ in 0..100 {
            assert_eq!(sample_token(&dist(), 1.0, 0.7, &mut rng), 1);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<TokenId> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50)
                .map(|_| sample_token(&dist(), 0.8, 0.95, &mut rng))
                .collect()
        };
        let b: Vec<TokenId> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50)
                .map(|_| sample_token(&dist(), 0.8, 0.95, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_distribution_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_token(&[], 1.0, 1.0, &mut rng);
    }
}
