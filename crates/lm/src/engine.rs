//! The completion-engine abstraction and the real (trainable) n-gram
//! engine.
//!
//! Two engines implement [`CompletionEngine`]:
//!
//! * [`NgramEngine`] — the genuine train→sample pipeline: BPE tokenizer +
//!   n-gram LM fitted on a corpus, autoregressive sampling with
//!   temperature/top-p. Small-scale but *real*; used to exercise the full
//!   prompt→completion→truncate→compile→simulate path.
//! * [`FamilyEngine`](crate::family::FamilyEngine) — the calibrated
//!   generative model of the paper's six LLMs (see `family`).

use crate::bpe::Bpe;
use crate::ngram::NgramModel;
use crate::sampler::{sample_token, SamplingParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vgen_problems::{Problem, PromptLevel};

/// One generated completion with its simulated inference time.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Raw completion text (to be truncated/assembled by the harness).
    pub text: String,
    /// Simulated wall-clock seconds for the query.
    pub latency_s: f64,
}

/// Anything that can answer a benchmark query: `n` completions for a
/// problem prompt at a detail level and temperature.
pub trait CompletionEngine {
    /// Engine display name (table row label).
    fn name(&self) -> String;

    /// Generates `n` completions for `problem` at `level` and `temperature`.
    fn generate(
        &mut self,
        problem: &Problem,
        level: PromptLevel,
        temperature: f64,
        n: usize,
    ) -> Vec<Completion>;
}

/// The real trainable engine: BPE + n-gram LM + sampling loop.
#[derive(Debug)]
pub struct NgramEngine {
    bpe: Bpe,
    model: NgramModel,
    params: SamplingParams,
    seed: u64,
    queries: u64,
}

impl NgramEngine {
    /// Trains tokenizer and LM on `corpus_text`.
    ///
    /// `merges` controls BPE vocabulary size; `order` the n-gram order.
    pub fn train(corpus_text: &str, merges: usize, order: usize, seed: u64) -> Self {
        let bpe = Bpe::train(corpus_text, merges);
        let tokens = bpe.encode(corpus_text);
        let model = NgramModel::train(&tokens, order);
        NgramEngine {
            bpe,
            model,
            params: SamplingParams::default(),
            seed,
            queries: 0,
        }
    }

    /// The trained tokenizer.
    pub fn bpe(&self) -> &Bpe {
        &self.bpe
    }

    /// The trained language model.
    pub fn model(&self) -> &NgramModel {
        &self.model
    }

    /// Generates one completion for an arbitrary prompt.
    pub fn complete(&mut self, prompt: &str, params: &SamplingParams) -> String {
        self.queries += 1;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ self.queries.wrapping_mul(0x9E3779B97F4A7C15));
        let mut context = self.bpe.encode(prompt);
        let prompt_len = context.len();
        for _ in 0..params.max_tokens {
            let scores = self.model.next_scores(&context);
            if scores.is_empty() {
                break;
            }
            let tok = sample_token(&scores, params.temperature, params.top_p, &mut rng);
            context.push(tok);
            // Early stop once the module closes, like the paper's
            // truncation rule would cut anyway.
            if self
                .bpe
                .decode(&context[prompt_len..])
                .contains("endmodule")
            {
                break;
            }
        }
        self.bpe.decode(&context[prompt_len..])
    }
}

impl CompletionEngine for NgramEngine {
    fn name(&self) -> String {
        format!(
            "ngram-{} (bpe-{})",
            self.model.order(),
            self.bpe.merge_count()
        )
    }

    fn generate(
        &mut self,
        problem: &Problem,
        level: PromptLevel,
        temperature: f64,
        n: usize,
    ) -> Vec<Completion> {
        let prompt = problem.prompt(level);
        (0..n)
            .map(|_| {
                let params = SamplingParams {
                    temperature,
                    ..self.params
                };
                let start = std::time::Instant::now();
                let text = self.complete(prompt, &params);
                Completion {
                    text,
                    latency_s: start.elapsed().as_secs_f64(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_problems::problems;

    fn tiny_corpus() -> String {
        let mut text = String::new();
        for p in problems() {
            for s in p.all_solutions() {
                text.push_str(&s);
                text.push('\n');
            }
        }
        text
    }

    #[test]
    fn trains_and_generates() {
        let mut engine = NgramEngine::train(&tiny_corpus(), 200, 6, 1);
        assert!(engine.bpe().merge_count() > 50);
        let p = &problems()[0];
        let out = engine.generate(p, PromptLevel::Low, 0.1, 2);
        assert_eq!(out.len(), 2);
        assert!(!out[0].text.is_empty());
    }

    #[test]
    fn greedy_regenerates_training_patterns() {
        // Trained on solutions, a greedy sample from a solution prefix
        // should continue with plausible Verilog tokens.
        let mut engine = NgramEngine::train(&tiny_corpus(), 300, 8, 2);
        let text = engine.complete(
            "module and_gate(input a, input b, output y);\nassign y = ",
            &SamplingParams {
                temperature: 0.0,
                top_p: 1.0,
                max_tokens: 40,
            },
        );
        assert!(
            text.contains(';') || text.contains("endmodule"),
            "expected code-like continuation, got: {text}"
        );
    }

    #[test]
    fn stops_at_endmodule() {
        let mut engine = NgramEngine::train(&tiny_corpus(), 200, 6, 3);
        let p = &problems()[1];
        let out = engine.generate(p, PromptLevel::High, 0.1, 1);
        let t = &out[0].text;
        if let Some(pos) = t.find("endmodule") {
            // Nothing but possibly trailing partial tokens after it.
            assert!(t.len() - (pos + "endmodule".len()) < 64);
        }
    }

    #[test]
    fn higher_temperature_diversifies() {
        let mut engine = NgramEngine::train(&tiny_corpus(), 150, 5, 4);
        let p = &problems()[2];
        let cold: Vec<String> = engine
            .generate(p, PromptLevel::Low, 0.0, 3)
            .into_iter()
            .map(|c| c.text)
            .collect();
        // Greedy decoding is deterministic across calls with same context.
        assert_eq!(cold[0], cold[1]);
        let hot: Vec<String> = engine
            .generate(p, PromptLevel::Low, 1.5, 6)
            .into_iter()
            .map(|c| c.text)
            .collect();
        let distinct: std::collections::HashSet<&String> = hot.iter().collect();
        assert!(distinct.len() > 1, "hot sampling should vary");
    }

    #[test]
    fn engine_name_reflects_config() {
        let engine = NgramEngine::train("module m; endmodule", 10, 3, 0);
        assert!(engine.name().starts_with("ngram-3"));
    }
}
