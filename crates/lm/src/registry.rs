//! The model registry: the six LLMs of paper Table I with their
//! architecture metadata and tuning states.

use std::fmt;

/// The LLM families evaluated in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelFamily {
    /// MegatronLM-355M — natural-language pre-training only.
    Megatron355M,
    /// Salesforce CodeGen-2B (NL + code).
    CodeGen2B,
    /// Salesforce CodeGen-6B (NL + code).
    CodeGen6B,
    /// AI21 J1-Large-7B (NL), fine-tuned via the AI21 studio API.
    J1Large7B,
    /// Salesforce CodeGen-16B (NL + code) — the paper's best fine-tune.
    CodeGen16B,
    /// OpenAI code-davinci-002 — commercial, pre-trained only.
    CodeDavinci002,
}

impl ModelFamily {
    /// All families in Table I order.
    pub const ALL: [ModelFamily; 6] = [
        ModelFamily::Megatron355M,
        ModelFamily::CodeGen2B,
        ModelFamily::CodeGen6B,
        ModelFamily::J1Large7B,
        ModelFamily::CodeGen16B,
        ModelFamily::CodeDavinci002,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::Megatron355M => "MegatronLM-355M",
            ModelFamily::CodeGen2B => "CodeGen-2B",
            ModelFamily::CodeGen6B => "CodeGen-6B",
            ModelFamily::J1Large7B => "J1-Large-7B",
            ModelFamily::CodeGen16B => "CodeGen-16B",
            ModelFamily::CodeDavinci002 => "code-davinci-002",
        }
    }

    /// Parameter count in millions (approximate; `None` for undisclosed
    /// code-davinci-002).
    pub fn parameters_m(self) -> Option<u32> {
        match self {
            ModelFamily::Megatron355M => Some(355),
            ModelFamily::CodeGen2B => Some(2_000),
            ModelFamily::CodeGen6B => Some(6_000),
            ModelFamily::J1Large7B => Some(7_000),
            ModelFamily::CodeGen16B => Some(16_000),
            ModelFamily::CodeDavinci002 => None,
        }
    }

    /// Whether the checkpoint can be fine-tuned in the paper's setup
    /// (code-davinci-002 cannot).
    pub fn supports_fine_tuning(self) -> bool {
        self != ModelFamily::CodeDavinci002
    }

    /// Whether the completions API supports n=25 (J1 does not, §IV-B).
    pub fn supports_n25(self) -> bool {
        self != ModelFamily::J1Large7B
    }

    /// Max tokens per completion (§IV-B: 300, but 256 for J1).
    pub fn max_tokens(self) -> usize {
        if self == ModelFamily::J1Large7B {
            256
        } else {
            300
        }
    }

    /// Architecture metadata from Table I; `None` for code-davinci-002
    /// ("NA" in the paper).
    pub fn architecture(self) -> Option<Architecture> {
        let (layers, heads, embed, context) = match self {
            ModelFamily::Megatron355M => (24, 16, 64, 1024),
            ModelFamily::J1Large7B => (32, 32, 128, 4096),
            ModelFamily::CodeGen2B => (32, 32, 80, 2048),
            ModelFamily::CodeGen6B => (33, 16, 256, 2048),
            ModelFamily::CodeGen16B => (34, 24, 256, 2048),
            ModelFamily::CodeDavinci002 => return None,
        };
        Some(Architecture {
            layers,
            heads,
            embed,
            context_length: context,
        })
    }

    /// Pre-training data description (Table I rightmost column).
    pub fn pretraining_data(self) -> &'static str {
        match self {
            ModelFamily::Megatron355M => "NL",
            ModelFamily::J1Large7B => "NL",
            ModelFamily::CodeGen2B | ModelFamily::CodeGen6B | ModelFamily::CodeGen16B => "NL, Code",
            ModelFamily::CodeDavinci002 => "NL, Code",
        }
    }
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Transformer architecture parameters (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Architecture {
    /// Number of layers.
    pub layers: u32,
    /// Number of attention heads.
    pub heads: u32,
    /// Head/embedding dimension as reported.
    pub embed: u32,
    /// Context length in tokens.
    pub context_length: u32,
}

/// Pre-trained vs fine-tuned, as in Tables III/IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tuning {
    /// Off-the-shelf checkpoint.
    Pretrained,
    /// Fine-tuned on the Verilog corpus.
    FineTuned,
}

impl Tuning {
    /// Both states.
    pub const ALL: [Tuning; 2] = [Tuning::Pretrained, Tuning::FineTuned];

    /// "PT" / "FT" tag from the tables.
    pub fn tag(self) -> &'static str {
        match self {
            Tuning::Pretrained => "PT",
            Tuning::FineTuned => "FT",
        }
    }
}

impl fmt::Display for Tuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A (family, tuning) pair — one table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId {
    /// Which family.
    pub family: ModelFamily,
    /// Pre-trained or fine-tuned.
    pub tuning: Tuning,
}

impl ModelId {
    /// Creates a model id.
    ///
    /// # Panics
    ///
    /// Panics when asking for a fine-tuned code-davinci-002, which the
    /// paper could not fine-tune.
    pub fn new(family: ModelFamily, tuning: Tuning) -> Self {
        assert!(
            tuning == Tuning::Pretrained || family.supports_fine_tuning(),
            "{family} cannot be fine-tuned"
        );
        ModelId { family, tuning }
    }

    /// Every evaluated model: PT+FT for five families, PT-only for
    /// code-davinci-002 — the 11 rows of Table IV.
    pub fn all_evaluated() -> Vec<ModelId> {
        let mut out = Vec::new();
        for family in ModelFamily::ALL {
            out.push(ModelId::new(family, Tuning::Pretrained));
            if family.supports_fine_tuning() {
                out.push(ModelId::new(family, Tuning::FineTuned));
            }
        }
        out
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.family, self.tuning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_evaluated_models() {
        assert_eq!(ModelId::all_evaluated().len(), 11);
    }

    #[test]
    fn davinci_has_no_architecture_or_ft() {
        assert!(ModelFamily::CodeDavinci002.architecture().is_none());
        assert!(!ModelFamily::CodeDavinci002.supports_fine_tuning());
        assert!(ModelFamily::CodeDavinci002.parameters_m().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot be fine-tuned")]
    fn davinci_ft_panics() {
        let _ = ModelId::new(ModelFamily::CodeDavinci002, Tuning::FineTuned);
    }

    #[test]
    fn table_i_metadata() {
        let a = ModelFamily::CodeGen16B.architecture().expect("arch");
        assert_eq!(a.layers, 34);
        assert_eq!(a.heads, 24);
        assert_eq!(a.context_length, 2048);
        assert_eq!(ModelFamily::J1Large7B.max_tokens(), 256);
        assert_eq!(ModelFamily::CodeGen2B.max_tokens(), 300);
        assert!(!ModelFamily::J1Large7B.supports_n25());
    }

    #[test]
    fn families_ordered_by_size() {
        assert!(ModelFamily::Megatron355M.parameters_m() < ModelFamily::CodeGen2B.parameters_m());
        assert!(ModelFamily::CodeGen6B.parameters_m() < ModelFamily::CodeGen16B.parameters_m());
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(
            format!(
                "{}",
                ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned)
            ),
            "CodeGen-16B (FT)"
        );
    }
}
