//! The mutation engine: produces *plausibly wrong* Verilog from correct
//! solutions, mirroring the failure modes the paper reports —
//! offset-by-one outputs (Fig 2c), missing wrap-around (Fig 3c), wrong
//! output condition (Fig 4c) — plus syntax-level corruption for
//! compile-failure modelling.
//!
//! Semantic mutants are produced by AST rewrites and re-rendered with the
//! pretty-printer, so they always *parse*; whether they actually fail the
//! testbench is verified downstream by the bank builder in
//! [`crate::family`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vgen_verilog::ast::*;
use vgen_verilog::pretty::pretty_file;
use vgen_verilog::value::LogicVec;

/// Kinds of semantic AST mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticOp {
    /// Add or subtract one from a numeric literal (offset-by-one, Fig 2c).
    TweakConst,
    /// Swap a binary operator for a near-miss (`==`→`!=`, `&`→`|`, ...).
    SwapBinaryOp,
    /// Negate an `if` condition.
    NegateCondition,
    /// Delete an `else` branch (missing wrap-around, Fig 3c).
    DropElse,
    /// Swap the arms of a ternary.
    SwapTernaryArms,
}

impl SemanticOp {
    /// All mutation kinds.
    pub const ALL: [SemanticOp; 5] = [
        SemanticOp::TweakConst,
        SemanticOp::SwapBinaryOp,
        SemanticOp::NegateCondition,
        SemanticOp::DropElse,
        SemanticOp::SwapTernaryArms,
    ];
}

/// Applies one random semantic mutation to `src`; returns the mutated
/// source and the op used, or `None` if `src` does not parse or has no
/// applicable site.
pub fn semantic_mutate(src: &str, rng: &mut StdRng) -> Option<(String, SemanticOp)> {
    let file = vgen_verilog::parse(src).ok()?;
    // Try ops in random order until one has a site.
    let mut ops = SemanticOp::ALL.to_vec();
    for i in (1..ops.len()).rev() {
        ops.swap(i, rng.gen_range(0..=i));
    }
    for op in ops {
        let mut mutated = file.clone();
        let sites = count_sites(&mutated, op);
        if sites == 0 {
            continue;
        }
        let target = rng.gen_range(0..sites);
        let mut counter = target as isize;
        let pick = rng.gen_range(0..u32::MAX);
        for m in &mut mutated.modules {
            for item in &mut m.items {
                mutate_item(item, op, &mut counter, pick);
            }
        }
        if counter < 0 {
            return Some((pretty_file(&mutated), op));
        }
    }
    None
}

/// Generates up to `count` distinct semantic mutants of `src`.
pub fn semantic_mutants(src: &str, seed: u64, count: usize) -> Vec<(String, SemanticOp)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(String, SemanticOp)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    seen.insert(src.to_string());
    for _ in 0..count * 8 {
        if out.len() >= count {
            break;
        }
        if let Some((m, op)) = semantic_mutate(src, &mut rng) {
            if seen.insert(m.clone()) {
                out.push((m, op));
            }
        }
    }
    out
}

/// Kinds of text-level syntax corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntaxOp {
    /// Delete a random semicolon.
    DropSemicolon,
    /// Delete a random `end` keyword.
    DropEnd,
    /// Delete a random closing parenthesis.
    DropParen,
    /// Truncate mid-file (models a completion cut off by max_tokens).
    Truncate,
    /// Insert a stray operator token.
    StrayToken,
}

impl SyntaxOp {
    /// All corruption kinds.
    pub const ALL: [SyntaxOp; 5] = [
        SyntaxOp::DropSemicolon,
        SyntaxOp::DropEnd,
        SyntaxOp::DropParen,
        SyntaxOp::Truncate,
        SyntaxOp::StrayToken,
    ];
}

/// Applies one random syntax corruption; returns `None` when the chosen
/// op has no applicable site.
pub fn syntax_corrupt(src: &str, rng: &mut StdRng) -> Option<(String, SyntaxOp)> {
    let op = SyntaxOp::ALL[rng.gen_range(0..SyntaxOp::ALL.len())];
    let out = match op {
        SyntaxOp::DropSemicolon => delete_nth_occurrence(src, ";", rng)?,
        SyntaxOp::DropEnd => delete_nth_word(src, "end", rng)?,
        SyntaxOp::DropParen => delete_nth_occurrence(src, ")", rng)?,
        SyntaxOp::Truncate => {
            let lines: Vec<&str> = src.lines().collect();
            if lines.len() < 4 {
                return None;
            }
            let cut = rng.gen_range(2..lines.len() - 1);
            let mut s = lines[..cut].join("\n");
            // Cut again mid-line to land inside a statement.
            let keep = s.len()
                - rng
                    .gen_range(0..lines[cut - 1].len().max(1))
                    .min(s.len() - 1);
            s.truncate(keep);
            s
        }
        SyntaxOp::StrayToken => {
            let pos = find_nth_occurrence(src, "=", rng)?;
            let mut s = src.to_string();
            s.insert_str(pos, "= =");
            s
        }
    };
    Some((out, op))
}

/// Generates up to `count` syntax-corrupted variants, each verified to
/// actually fail [`vgen_verilog::syntax_check`].
pub fn syntax_mutants(src: &str, seed: u64, count: usize) -> Vec<(String, SyntaxOp)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(String, SyntaxOp)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count * 10 {
        if out.len() >= count {
            break;
        }
        if let Some((m, op)) = syntax_corrupt(src, &mut rng) {
            if vgen_verilog::syntax_check(&m).is_err() && seen.insert(m.clone()) {
                out.push((m, op));
            }
        }
    }
    out
}

fn find_nth_occurrence(src: &str, needle: &str, rng: &mut StdRng) -> Option<usize> {
    let positions: Vec<usize> = src.match_indices(needle).map(|(i, _)| i).collect();
    if positions.is_empty() {
        return None;
    }
    Some(positions[rng.gen_range(0..positions.len())])
}

fn delete_nth_occurrence(src: &str, needle: &str, rng: &mut StdRng) -> Option<String> {
    let pos = find_nth_occurrence(src, needle, rng)?;
    let mut s = src.to_string();
    s.replace_range(pos..pos + needle.len(), "");
    Some(s)
}

fn delete_nth_word(src: &str, word: &str, rng: &mut StdRng) -> Option<String> {
    let bytes = src.as_bytes();
    let positions: Vec<usize> = src
        .match_indices(word)
        .map(|(i, _)| i)
        .filter(|&i| {
            let before = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            let end = i + word.len();
            let after =
                end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
            before && after
        })
        .collect();
    if positions.is_empty() {
        return None;
    }
    let pos = positions[rng.gen_range(0..positions.len())];
    let mut s = src.to_string();
    s.replace_range(pos..pos + word.len(), "");
    Some(s)
}

// --------------------------------------------------------- hostile inputs

/// Kinds of *hostile* completion — inputs crafted to exhaust a checker
/// resource or hit a parser/elaborator/simulator edge case, rather than to
/// be plausibly wrong. Used by the fault-injection harness to prove the
/// checking pipeline classifies every one of them instead of panicking or
/// hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostileOp {
    /// Thousands of nested statements/expressions (parser recursion).
    DeepNesting,
    /// Astronomically wide vector declarations (elaborator allocation).
    HugeVector,
    /// Memory declarations whose total bits dwarf any real design.
    HugeMemory,
    /// Zero-width selects and zero replication counts.
    ZeroWidth,
    /// String literal that never closes (lexer end-of-input handling).
    UnterminatedString,
    /// Block comment that never closes, or comment floods.
    CommentBomb,
    /// More tokens than any legitimate completion (lexer/token cap).
    TokenFlood,
    /// `$display` loops that flood simulation output.
    DisplayFlood,
    /// Zero-delay loops that never quiesce (step budget).
    InfiniteLoop,
    /// Exponential module instantiation fan-out.
    InstanceBomb,
    /// Replication counts that multiply into huge widths.
    ReplicationBomb,
    /// Hundreds of conflicting drivers on the same signals (lint race
    /// analysis must dedupe, not multiply).
    DriverRace,
    /// Deep incomplete if/case nests and giant sensitivity lists (lint
    /// latch/path analysis must stay bounded).
    LatchFarm,
    /// Long and densely interlocking combinational cycles (lint dependency
    /// graph traversal must stay linear and capped).
    CombLoopChain,
}

impl HostileOp {
    /// All hostile kinds.
    pub const ALL: [HostileOp; 14] = [
        HostileOp::DeepNesting,
        HostileOp::HugeVector,
        HostileOp::HugeMemory,
        HostileOp::ZeroWidth,
        HostileOp::UnterminatedString,
        HostileOp::CommentBomb,
        HostileOp::TokenFlood,
        HostileOp::DisplayFlood,
        HostileOp::InfiniteLoop,
        HostileOp::InstanceBomb,
        HostileOp::ReplicationBomb,
        HostileOp::DriverRace,
        HostileOp::LatchFarm,
        HostileOp::CombLoopChain,
    ];
}

/// A corpus of adversarial completions, each tagged with the resource or
/// edge case it attacks. Every entry is shaped like a *body* completion
/// for a 2-input/1-output problem (inputs `a`, `b`, output `y`) — i.e. it
/// gets appended to the prompt by the harness — except the full-source
/// entries, which start with `module`.
///
/// Guaranteed to hold at least 20 entries covering every [`HostileOp`].
pub fn hostile_corpus() -> Vec<(HostileOp, String)> {
    let mut out: Vec<(HostileOp, String)> = Vec::new();

    // Parser recursion: nested begin/end statement bomb.
    let mut begin_bomb = String::from("reg x;\ninitial ");
    begin_bomb.push_str(&"begin ".repeat(3000));
    begin_bomb.push_str("x = 1;");
    begin_bomb.push_str(&" end".repeat(3000));
    begin_bomb.push_str("\nassign y = a & b;\nendmodule\n");
    out.push((HostileOp::DeepNesting, begin_bomb));

    // Parser recursion: parenthesis nesting in an expression.
    let parens = format!(
        "assign y = {}a{};\nendmodule\n",
        "(".repeat(3000),
        ")".repeat(3000)
    );
    out.push((HostileOp::DeepNesting, parens));

    // Parser recursion: unclosed parens (error path must also be bounded).
    out.push((
        HostileOp::DeepNesting,
        format!("assign y = {}a;\nendmodule\n", "(".repeat(3000)),
    ));

    // Parser recursion: right-recursive power chains.
    out.push((
        HostileOp::DeepNesting,
        format!("assign y = a{};\nendmodule\n", " ** a".repeat(1000)),
    ));

    // Parser recursion: ternary chains.
    out.push((
        HostileOp::DeepNesting,
        format!("assign y = {}b;\nendmodule\n", "a ? b : ".repeat(1000)),
    ));

    // Elaborator: one absurdly wide register.
    out.push((
        HostileOp::HugeVector,
        "reg [99999999:0] r;\nalways @(*) r = {a, b};\nassign y = r[0];\nendmodule\n".to_string(),
    ));

    // Elaborator: near-i64::MAX range bound.
    out.push((
        HostileOp::HugeVector,
        "wire [64'h7FFFFFFFFFFFFFFF:0] w;\nassign y = a;\nendmodule\n".to_string(),
    ));

    // Elaborator: many medium vectors that only blow the *total* budget.
    let mut many = String::new();
    for i in 0..40 {
        many.push_str(&format!("reg [999999:0] r{i};\n"));
    }
    many.push_str("assign y = a;\nendmodule\n");
    out.push((HostileOp::HugeVector, many));

    // Elaborator: memory whose total bits dwarf the budget.
    out.push((
        HostileOp::HugeMemory,
        "reg [65535:0] mem [0:999999];\nassign y = a;\nendmodule\n".to_string(),
    ));

    // Zero-width indexed select.
    out.push((
        HostileOp::ZeroWidth,
        "wire [7:0] w;\nassign w = {6'd0, a, b};\nassign y = w[3 -: 0];\nendmodule\n".to_string(),
    ));

    // Zero replication count.
    out.push((
        HostileOp::ZeroWidth,
        "assign y = |{0{a}};\nendmodule\n".to_string(),
    ));

    // Lexer: string that never closes.
    out.push((
        HostileOp::UnterminatedString,
        "initial $display(\"this string never ends...\nassign y = a;\nendmodule\n".to_string(),
    ));

    // Lexer: string ending in a bare escape at end of input.
    out.push((
        HostileOp::UnterminatedString,
        "initial $display(\"trailing escape \\".to_string(),
    ));

    // Lexer: block comment that never closes, padded with junk.
    out.push((
        HostileOp::CommentBomb,
        format!("assign y = a; /* {}", "comment bomb ".repeat(50_000)),
    ));

    // Lexer: a flood of line comments (must stay linear).
    out.push((
        HostileOp::CommentBomb,
        format!(
            "{}assign y = a & b;\nendmodule\n",
            "// filler comment line\n".repeat(50_000)
        ),
    ));

    // Token cap: more tokens than the parser accepts.
    out.push((
        HostileOp::TokenFlood,
        format!("assign y = a;{}\nendmodule\n", ";".repeat(450_000)),
    ));

    // Simulator: output flood via an unrolled $display loop.
    out.push((
        HostileOp::DisplayFlood,
        format!(
            "assign y = a & b;\ninteger i;\ninitial begin : blk\n  for (i = 0; i < 1000000; i = i + 1)\n    $display(\"{}\");\nend\nendmodule\n",
            "F".repeat(1024)
        ),
    ));

    // Simulator: output flood paced by delays ($display each timestep).
    out.push((
        HostileOp::DisplayFlood,
        format!(
            "assign y = a & b;\ninitial forever #1 $display(\"{}\");\nendmodule\n",
            "M".repeat(1024)
        ),
    ));

    // Simulator: zero-delay always loop that never settles.
    out.push((
        HostileOp::InfiniteLoop,
        "reg spin;\nalways spin = ~spin;\nassign y = a & b;\nendmodule\n".to_string(),
    ));

    // Simulator: zero-delay forever loop inside initial.
    out.push((
        HostileOp::InfiniteLoop,
        "reg spin;\ninitial forever spin = ~spin;\nassign y = a & b;\nendmodule\n".to_string(),
    ));

    // Elaborator: exponential instantiation fan-out (full source).
    let mut bomb = String::from("module and_gate(input a, input b, output y);\n  n5 root();\n  assign y = a & b;\nendmodule\nmodule n0; wire w; endmodule\n");
    for i in 1..=5 {
        bomb.push_str(&format!("module n{i};\n"));
        for j in 0..8 {
            bomb.push_str(&format!("  n{} u{j}();\n", i - 1));
        }
        bomb.push_str("endmodule\n");
    }
    out.push((HostileOp::InstanceBomb, bomb));

    // Elaborator: replication bomb.
    out.push((
        HostileOp::ReplicationBomb,
        "assign y = |{99999999{a}};\nendmodule\n".to_string(),
    ));

    // Elaborator: nested replication that multiplies widths.
    out.push((
        HostileOp::ReplicationBomb,
        "wire [1023:0] w;\nassign w = {1024{a}};\nassign y = |{1024{w}};\nendmodule\n".to_string(),
    ));

    // Lint: one register with 400 conflicting always-block drivers. The
    // race rule must report the signal once, not O(drivers²) times.
    let mut storm = String::from("reg r;\n");
    for i in 0..400 {
        storm.push_str(&format!("always @* r = a ^ {}'d{i};\n", 16));
    }
    storm.push_str("assign y = r;\nendmodule\n");
    out.push((HostileOp::DriverRace, storm));

    // Lint: 300 signals each driven with both `=` and `<=` (mixed-style
    // analysis over many independent signals).
    let mut mixed = String::new();
    for i in 0..300 {
        mixed.push_str(&format!("reg m{i};\n"));
    }
    mixed.push_str("always @(posedge a) begin\n");
    for i in 0..300 {
        mixed.push_str(&format!("  m{i} = b;\n  m{i} <= a;\n"));
    }
    mixed.push_str("end\nassign y = m0;\nendmodule\n");
    out.push((HostileOp::DriverRace, mixed));

    // Lint: overlapping part-select drivers on a wide bus (the bit-range
    // overlap test runs across every driver pair per signal).
    let mut slices = String::from("wire [2047:0] bus;\n");
    for i in 0..200 {
        slices.push_str(&format!("assign bus[{}:{}] = {{16{{a}}}};\n", i + 16, i));
    }
    slices.push_str("assign y = bus[0];\nendmodule\n");
    out.push((HostileOp::DriverRace, slices));

    // Lint: a 300-deep else-less if nest (path-coverage analysis depth).
    let mut nest = String::from("reg q;\nalways @* begin\n");
    for i in 0..300 {
        nest.push_str(&format!("if (a ^ b ^ {}'d{i}) begin\n", 16));
    }
    nest.push_str("q = a;\n");
    nest.push_str(&"end\n".repeat(300));
    nest.push_str("end\nassign y = q;\nendmodule\n");
    out.push((HostileOp::LatchFarm, nest));

    // Lint: a giant default-less case — 1023 of 1024 labels covered, so
    // coverage counting must actually enumerate, then still report.
    let mut case_bomb =
        String::from("reg q;\nreg [9:0] sel;\nalways @* begin\nsel = {a, b, 8'd0};\ncase (sel)\n");
    for i in 0..1023 {
        case_bomb.push_str(&format!("10'd{i}: q = a;\n"));
    }
    case_bomb.push_str("endcase\nend\nassign y = q;\nendmodule\n");
    out.push((HostileOp::LatchFarm, case_bomb));

    // Lint: 500 signals read inside an always block whose sensitivity list
    // names only one of them.
    let mut sens = String::new();
    for i in 0..500 {
        sens.push_str(&format!("wire s{i} = a ^ b;\n"));
    }
    sens.push_str("reg q;\nalways @(s0) begin\nq = 1'b0;\n");
    for i in 0..500 {
        sens.push_str(&format!("q = q ^ s{i};\n"));
    }
    sens.push_str("end\nassign y = q;\nendmodule\n");
    out.push((HostileOp::LatchFarm, sens));

    // Lint: one combinational cycle threaded through 800 wires (loop
    // detection must walk the whole ring without quadratic blow-up).
    let mut ring = String::new();
    for i in 0..800 {
        ring.push_str(&format!(
            "wire c{i};\nassign c{i} = c{} ^ a;\n",
            (i + 1) % 800
        ));
    }
    ring.push_str("assign y = c0;\nendmodule\n");
    out.push((HostileOp::CombLoopChain, ring));

    // Lint: a dense all-to-all dependency clique — every pair of signals
    // forms a loop; reporting must stay capped, not enumerate them all.
    let mut clique = String::new();
    for i in 0..40 {
        let terms: Vec<String> = (0..40)
            .filter(|&j| j != i)
            .map(|j| format!("k{j}"))
            .collect();
        clique.push_str(&format!(
            "wire k{i};\nassign k{i} = {};\n",
            terms.join(" ^ ")
        ));
    }
    clique.push_str("assign y = k0;\nendmodule\n");
    out.push((HostileOp::CombLoopChain, clique));

    // Lint: feedback through an always @* block with deep control nesting.
    out.push((
        HostileOp::CombLoopChain,
        "reg f;\nalways @* begin\nif (a) begin if (b) f = ~f; else f = f ^ a; end else f = f | b;\nend\nassign y = f;\nendmodule\n"
            .to_string(),
    ));

    // Lint: zero-width part-selects in every syntactic position the width
    // rule visits (decl inits, concats, replications).
    out.push((
        HostileOp::ZeroWidth,
        "wire [7:0] w = {8{a}};\nwire z0 = w[3:4];\nwire z1 = |{w[3:4], w[0 +: 0]};\nwire z2 = &{0{w}};\nassign y = z0 ^ z1 ^ z2;\nendmodule\n"
            .to_string(),
    ));

    out
}

// ----------------------------------------------------------- slow inputs

/// Kinds of *slow* completion — inputs that stay inside every resource
/// budget (token cap, recursion cap, step cap, output cap) yet burn enough
/// wall-clock in one pipeline stage that a per-check deadline is the only
/// defence. The supervision harness uses these to prove that deadline
/// expiry is classified as a timeout (`CheckOutcome::Timeout`), never as a
/// harness fault, and that without a deadline each entry still completes
/// with an ordinary verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlowOp {
    /// A zero-delay oscillator bounded to settle just under the default
    /// step cap — millions of delta cycles, no budget violation.
    SpinNearStepCap,
    /// A long chain of always blocks: every input edge ripples through
    /// the whole chain, one sequential activation at a time.
    AlwaysChain,
    /// Thousands of modest expressions — far below the token and
    /// recursion caps, but enough total work to dominate parse time.
    ParseCrawl,
}

impl SlowOp {
    /// All slow kinds.
    pub const ALL: [SlowOp; 3] = [
        SlowOp::SpinNearStepCap,
        SlowOp::AlwaysChain,
        SlowOp::ParseCrawl,
    ];
}

/// A corpus of slow-but-legal completions for a 2-input AND problem
/// (inputs `a`, `b`, output `y`). Every entry implements a correct AND
/// gate, so under no deadline each one *passes* — proving it stayed inside
/// the simulator/parser budgets — while under a tight deadline the checker
/// must classify it as a timeout.
pub fn slow_corpus() -> Vec<(SlowOp, String)> {
    let mut out: Vec<(SlowOp, String)> = Vec::new();

    // Bounded zero-delay spin: ~800k loop iterations of delta-cycle work,
    // sized to finish below the default 5M-step budget.
    out.push((
        SlowOp::SpinNearStepCap,
        "reg tick;\ninteger i;\ninitial begin : spin\n  tick = 1'b0;\n  for (i = 0; i < 800000; i = i + 1)\n    tick = ~tick;\nend\nassign y = a & b;\nendmodule\n"
            .to_string(),
    ));

    // 1200 chained always blocks; each stimulus edge re-evaluates the
    // whole chain in series.
    let n = 1200usize;
    let mut chain = String::new();
    for i in 0..n {
        chain.push_str(&format!("reg t{i};\n"));
    }
    chain.push_str("always @* t0 = a ^ b;\n");
    for i in 1..n {
        chain.push_str(&format!("always @* t{i} = t{} ^ b;\n", i - 1));
    }
    // The chain feeds nothing: y is a plain AND so the entry passes.
    chain.push_str(&format!(
        "assign y = a & b & ~(t{} & 1'b0);\nendmodule\n",
        n - 1
    ));
    out.push((SlowOp::AlwaysChain, chain));

    // 2500 declarations, each with a modest parenthesised expression:
    // ~135k tokens (under the token cap) and 24-deep nesting (far under
    // the recursion cap), but a lot of parse work in total.
    let mut crawl = String::new();
    for i in 0..2500 {
        crawl.push_str(&format!(
            "wire p{i} = {}a ^ b{};\n",
            "(".repeat(24),
            ")".repeat(24)
        ));
    }
    crawl.push_str("assign y = a & b;\nendmodule\n");
    out.push((SlowOp::ParseCrawl, crawl));

    out
}

// ------------------------------------------------------- site enumeration

fn count_sites(file: &SourceFile, op: SemanticOp) -> usize {
    let mut cloned = file.clone();
    let mut n = 0usize;
    for m in &mut cloned.modules {
        for item in &mut m.items {
            visit_item(item, &mut |loc| {
                if loc_matches(&loc, op) {
                    n += 1;
                }
            });
        }
    }
    n
}

/// A mutation site location passed to visitors.
enum Loc<'a> {
    Expr(&'a mut Expr),
    Stmt(&'a mut Stmt),
}

fn loc_matches(loc: &Loc<'_>, op: SemanticOp) -> bool {
    match (loc, op) {
        (Loc::Expr(e), SemanticOp::TweakConst) => {
            matches!(&e.kind, ExprKind::Number(v) if v.width() >= 2 && !v.has_unknown())
        }
        (Loc::Expr(e), SemanticOp::SwapBinaryOp) => match &e.kind {
            ExprKind::Binary { op, .. } => swap_op(*op).is_some(),
            _ => false,
        },
        (Loc::Expr(e), SemanticOp::SwapTernaryArms) => {
            matches!(&e.kind, ExprKind::Ternary { .. })
        }
        (Loc::Stmt(s), SemanticOp::NegateCondition) => {
            matches!(&s.kind, StmtKind::If { .. })
        }
        (Loc::Stmt(s), SemanticOp::DropElse) => {
            matches!(&s.kind, StmtKind::If { els: Some(_), .. })
        }
        _ => false,
    }
}

fn swap_op(op: BinaryOp) -> Option<BinaryOp> {
    use BinaryOp::*;
    Some(match op {
        Eq => Ne,
        Ne => Eq,
        BitAnd => BitOr,
        BitOr => BitAnd,
        BitXor => BitXnor,
        BitXnor => BitXor,
        Add => Sub,
        Sub => Add,
        Lt => Le,
        Le => Lt,
        Gt => Ge,
        Ge => Gt,
        Shl => Shr,
        Shr => Shl,
        LogicAnd => LogicOr,
        LogicOr => LogicAnd,
        _ => return None,
    })
}

fn mutate_item(item: &mut Item, op: SemanticOp, counter: &mut isize, pick: u32) {
    visit_item(item, &mut |loc| {
        if !loc_matches(&loc, op) {
            return;
        }
        if *counter != 0 {
            *counter -= 1;
            return;
        }
        *counter -= 1;
        apply_mutation(loc, op, pick);
    });
}

fn apply_mutation(loc: Loc<'_>, op: SemanticOp, pick: u32) {
    match (loc, op) {
        (Loc::Expr(e), SemanticOp::TweakConst) => {
            if let ExprKind::Number(v) = &e.kind {
                let one = LogicVec::from_u64(1, v.width());
                let tweaked = if pick.is_multiple_of(2) {
                    v.add(&one)
                } else {
                    v.sub(&one)
                };
                e.kind = ExprKind::Number(tweaked);
            }
        }
        (Loc::Expr(e), SemanticOp::SwapBinaryOp) => {
            if let ExprKind::Binary { op: bop, .. } = &mut e.kind {
                if let Some(new) = swap_op(*bop) {
                    *bop = new;
                }
            }
        }
        (Loc::Expr(e), SemanticOp::SwapTernaryArms) => {
            if let ExprKind::Ternary { then, els, .. } = &mut e.kind {
                std::mem::swap(then, els);
            }
        }
        (Loc::Stmt(s), SemanticOp::NegateCondition) => {
            if let StmtKind::If { cond, .. } = &mut s.kind {
                let span = cond.span;
                let inner = std::mem::replace(cond, Expr::ident("_", span));
                *cond = Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::LogicNot,
                        arg: Box::new(inner),
                    },
                    span,
                );
            }
        }
        (Loc::Stmt(s), SemanticOp::DropElse) => {
            if let StmtKind::If { els, .. } = &mut s.kind {
                *els = None;
            }
        }
        _ => {}
    }
}

// ------------------------------------------------------------- AST walking

fn visit_item(item: &mut Item, f: &mut impl FnMut(Loc<'_>)) {
    match item {
        Item::Assign(a) => {
            for (lhs, rhs) in &mut a.assigns {
                visit_expr(lhs, f);
                visit_expr(rhs, f);
            }
        }
        Item::Always(a) => visit_stmt(&mut a.body, f),
        Item::Initial(i) => visit_stmt(&mut i.body, f),
        Item::Gate(g) => {
            for c in &mut g.conns {
                visit_expr(c, f);
            }
        }
        Item::Decl(d) => {
            for n in &mut d.names {
                if let Some(init) = &mut n.init {
                    visit_expr(init, f);
                }
            }
        }
        Item::Function(func) => visit_stmt(&mut func.body, f),
        Item::Param(_) | Item::Instance(_) | Item::Defparam { .. } => {}
    }
}

fn visit_stmt(stmt: &mut Stmt, f: &mut impl FnMut(Loc<'_>)) {
    f(Loc::Stmt(stmt));
    match &mut stmt.kind {
        StmtKind::Block { stmts, .. } => {
            for s in stmts {
                visit_stmt(s, f);
            }
        }
        StmtKind::Assign {
            lhs, rhs, delay, ..
        } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
            if let Some(d) = delay {
                visit_expr(d, f);
            }
        }
        StmtKind::If { cond, then, els } => {
            visit_expr(cond, f);
            visit_stmt(then, f);
            if let Some(e) = els {
                visit_stmt(e, f);
            }
        }
        StmtKind::Case { expr, arms, .. } => {
            visit_expr(expr, f);
            for arm in arms {
                for l in &mut arm.labels {
                    visit_expr(l, f);
                }
                visit_stmt(&mut arm.body, f);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            visit_expr(&mut init.1, f);
            visit_expr(cond, f);
            visit_expr(&mut step.1, f);
            visit_stmt(body, f);
        }
        StmtKind::While { cond, body } => {
            visit_expr(cond, f);
            visit_stmt(body, f);
        }
        StmtKind::Repeat { count, body } => {
            visit_expr(count, f);
            visit_stmt(body, f);
        }
        StmtKind::Forever { body } => visit_stmt(body, f),
        StmtKind::Delay { amount, stmt } => {
            visit_expr(amount, f);
            if let Some(s) = stmt {
                visit_stmt(s, f);
            }
        }
        StmtKind::Event { stmt, .. } => {
            if let Some(s) = stmt {
                visit_stmt(s, f);
            }
        }
        StmtKind::Wait { cond, stmt } => {
            visit_expr(cond, f);
            if let Some(s) = stmt {
                visit_stmt(s, f);
            }
        }
        StmtKind::SysCall { args, .. } | StmtKind::TaskCall { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        StmtKind::Disable(_) | StmtKind::Null => {}
    }
}

fn visit_expr(expr: &mut Expr, f: &mut impl FnMut(Loc<'_>)) {
    f(Loc::Expr(expr));
    match &mut expr.kind {
        ExprKind::Unary { arg, .. } => visit_expr(arg, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::Ternary { cond, then, els } => {
            visit_expr(cond, f);
            visit_expr(then, f);
            visit_expr(els, f);
        }
        ExprKind::Index { base, index } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        ExprKind::PartSelect { base, msb, lsb } => {
            visit_expr(base, f);
            visit_expr(msb, f);
            visit_expr(lsb, f);
        }
        ExprKind::IndexedSelect {
            base, start, width, ..
        } => {
            visit_expr(base, f);
            visit_expr(start, f);
            visit_expr(width, f);
        }
        ExprKind::Concat(items) => {
            for i in items {
                visit_expr(i, f);
            }
        }
        ExprKind::Replicate { count, items } => {
            visit_expr(count, f);
            for i in items {
                visit_expr(i, f);
            }
        }
        ExprKind::SysCall { args, .. } | ExprKind::Call { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Number(_) | ExprKind::Real(_) | ExprKind::Str(_) | ExprKind::Ident(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "\
module counter(input clk, input reset, output reg [3:0] q);
always @(posedge clk) begin
  if (reset) q <= 4'd1;
  else if (q == 4'd12) q <= 4'd1;
  else q <= q + 4'd1;
end
endmodule
";

    #[test]
    fn hostile_corpus_is_large_and_covers_all_ops() {
        let corpus = hostile_corpus();
        assert!(corpus.len() >= 20, "only {} hostile entries", corpus.len());
        for op in HostileOp::ALL {
            assert!(
                corpus.iter().any(|(o, _)| *o == op),
                "no corpus entry for {op:?}"
            );
        }
        for (op, src) in &corpus {
            assert!(!src.is_empty(), "empty entry for {op:?}");
        }
    }

    #[test]
    fn slow_corpus_covers_all_ops_and_parses() {
        let corpus = slow_corpus();
        for op in SlowOp::ALL {
            assert!(
                corpus.iter().any(|(o, _)| *o == op),
                "no slow entry for {op:?}"
            );
        }
        for (op, src) in &corpus {
            // Every entry is a body completion ending in `endmodule`; wrap
            // it in the AND-gate header and it must parse cleanly (the
            // slowness lives downstream of syntax, except ParseCrawl which
            // is merely *slow* to parse, not invalid).
            let full = format!("module and_gate(input a, input b, output y);\n{src}");
            assert!(
                vgen_verilog::syntax_check(&full).is_ok(),
                "slow entry {op:?} does not parse"
            );
        }
    }

    #[test]
    fn semantic_mutants_parse_and_differ() {
        let muts = semantic_mutants(COUNTER, 1, 8);
        assert!(muts.len() >= 4, "got only {} mutants", muts.len());
        for (m, op) in &muts {
            assert!(
                vgen_verilog::syntax_check(m).is_ok(),
                "semantic mutant must still parse ({op:?}):\n{m}"
            );
            assert_ne!(m, COUNTER);
        }
    }

    #[test]
    fn mutants_are_distinct() {
        let muts = semantic_mutants(COUNTER, 2, 10);
        let set: std::collections::HashSet<&String> = muts.iter().map(|(m, _)| m).collect();
        assert_eq!(set.len(), muts.len());
    }

    #[test]
    fn mutants_cover_multiple_ops() {
        let muts = semantic_mutants(COUNTER, 3, 12);
        let ops: std::collections::HashSet<SemanticOp> = muts.iter().map(|(_, op)| *op).collect();
        assert!(ops.len() >= 2, "expected op diversity, got {ops:?}");
    }

    #[test]
    fn syntax_mutants_fail_to_parse() {
        let muts = syntax_mutants(COUNTER, 4, 6);
        assert!(!muts.is_empty());
        for (m, op) in &muts {
            assert!(
                vgen_verilog::syntax_check(m).is_err(),
                "syntax mutant must fail ({op:?}):\n{m}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            semantic_mutants(COUNTER, 9, 5),
            semantic_mutants(COUNTER, 9, 5)
        );
        assert_eq!(syntax_mutants(COUNTER, 9, 5), syntax_mutants(COUNTER, 9, 5));
    }

    #[test]
    fn unparseable_input_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(semantic_mutate("not verilog at all", &mut rng).is_none());
    }

    #[test]
    fn drop_else_produces_fig3c_style_bug() {
        // Find a DropElse mutant: the counter then never wraps at 12.
        let muts = semantic_mutants(COUNTER, 7, 20);
        let dropped = muts.iter().find(|(_, op)| *op == SemanticOp::DropElse);
        if let Some((m, _)) = dropped {
            let elses = m.matches("else").count();
            assert!(elses < COUNTER.matches("else").count());
        }
    }
}
