//! The calibrated family engine: a generative model of the paper's six
//! LLMs.
//!
//! Multi-GPU fine-tuning of 0.35B–16B transformers is the unreproducible
//! gate in this paper (see DESIGN.md). This engine substitutes a
//! *distribution over Verilog candidates* per (model, tuning, problem,
//! prompt level, temperature), anchored to the paper's measured pass rates
//! (Tables III and IV) and its temperature/size/detail trends (Figs 6–7):
//!
//! * a **compile anchor** per (model, difficulty) from Table III,
//! * a **functional anchor** per (model, difficulty, level) from Table IV,
//! * an exponential **temperature decay** (§V-B.1),
//! * per-problem multipliers reproducing the §VI failure analysis
//!   (problems 7 and 12 never pass; 9 almost never),
//! * a small **corpus factor** for the GitHub+books ablation (+1.4%).
//!
//! Crucially the engine emits *real Verilog text*: correct candidates come
//! from verified solution banks; functional failures from AST mutants
//! verified to compile-but-fail; compile failures from corrupted text
//! verified to fail the parser. Every candidate still flows through the
//! real compile+simulate pipeline downstream — the harness measures, it
//! does not trust.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vgen_corpus::CorpusSource;
use vgen_problems::{Difficulty, Problem, PromptLevel};

use crate::engine::{Completion, CompletionEngine};
use crate::latency::sample_seconds;
use crate::mutate::{semantic_mutants, syntax_mutants};
use crate::registry::{ModelFamily, ModelId, Tuning};

/// Compile-rate anchor from Table III (best temperature, n = 10).
pub fn compile_anchor(model: ModelId, difficulty: Difficulty) -> f64 {
    use Difficulty::*;
    use ModelFamily::*;
    use Tuning::*;
    let (b, i, a) = match (model.family, model.tuning) {
        (Megatron355M, Pretrained) => (0.000, 0.000, 0.000),
        (Megatron355M, FineTuned) => (0.730, 0.391, 0.165),
        (CodeGen2B, Pretrained) => (0.080, 0.065, 0.176),
        (CodeGen2B, FineTuned) => (0.902, 0.612, 0.592),
        (CodeGen6B, Pretrained) => (0.052, 0.152, 0.187),
        (CodeGen6B, FineTuned) => (0.987, 0.689, 0.599),
        (J1Large7B, Pretrained) => (0.182, 0.176, 0.108),
        (J1Large7B, FineTuned) => (0.882, 0.635, 0.588),
        (CodeGen16B, Pretrained) => (0.132, 0.203, 0.240),
        (CodeGen16B, FineTuned) => (0.942, 0.728, 0.596),
        (CodeDavinci002, _) => (0.847, 0.452, 0.569),
    };
    match difficulty {
        Basic => b,
        Intermediate => i,
        Advanced => a,
    }
}

/// Functional pass-rate anchor from Table IV (best temperature, n = 10),
/// resolved per prompt detail level.
pub fn functional_anchor(model: ModelId, difficulty: Difficulty, level: PromptLevel) -> f64 {
    use Difficulty::*;
    use ModelFamily::*;
    use Tuning::*;
    // Rows: [basic L M H, intermediate L M H, advanced L M H].
    let row: [f64; 9] = match (model.family, model.tuning) {
        (Megatron355M, Pretrained) => [0.0; 9],
        (Megatron355M, FineTuned) => [
            0.170, 0.591, 0.245, 0.043, 0.018, 0.025, 0.000, 0.000, 0.000,
        ],
        (CodeGen2B, Pretrained) => [
            0.000, 0.000, 0.000, 0.000, 0.000, 0.000, 0.000, 0.016, 0.020,
        ],
        (CodeGen2B, FineTuned) => [
            0.835, 0.350, 0.630, 0.130, 0.092, 0.163, 0.132, 0.048, 0.068,
        ],
        (CodeGen6B, Pretrained) => [
            0.000, 0.000, 0.000, 0.000, 0.000, 0.013, 0.000, 0.000, 0.000,
        ],
        (CodeGen6B, FineTuned) => [
            1.000, 0.500, 0.760, 0.135, 0.150, 0.168, 0.284, 0.164, 0.164,
        ],
        (J1Large7B, Pretrained) => [
            0.044, 0.058, 0.067, 0.000, 0.000, 0.021, 0.000, 0.000, 0.000,
        ],
        (J1Large7B, FineTuned) => [
            0.388, 0.283, 0.342, 0.125, 0.075, 0.200, 0.000, 0.000, 0.000,
        ],
        (CodeGen16B, Pretrained) => [
            0.000, 0.085, 0.055, 0.035, 0.003, 0.045, 0.012, 0.000, 0.016,
        ],
        (CodeGen16B, FineTuned) => [
            0.745, 0.720, 0.745, 0.213, 0.270, 0.255, 0.246, 0.290, 0.294,
        ],
        (CodeDavinci002, _) => [
            0.520, 0.685, 0.775, 0.175, 0.200, 0.150, 0.156, 0.184, 0.344,
        ],
    };
    let d = match difficulty {
        Basic => 0,
        Intermediate => 3,
        Advanced => 6,
    };
    let l = match level {
        PromptLevel::Low => 0,
        PromptLevel::Medium => 1,
        PromptLevel::High => 2,
    };
    row[d + l]
}

/// Exponential temperature decay (§V-B.1: "Pass@(scenario·10) has the
/// highest value for t=0.1 and degrades exponentially with temperature").
/// Anchors are defined at t = 0.1.
pub fn temperature_factor(t: f64, decay: f64) -> f64 {
    (-decay * (t - 0.1).max(0.0)).exp()
}

/// Decay constant for compile success (syntax survives heat better).
pub const COMPILE_DECAY: f64 = 0.9;
/// Decay constant for functional success.
pub const FUNCTIONAL_DECAY: f64 = 1.8;

/// Mild completions-per-prompt effect (§V-B.2, Fig 6 right panel):
/// n = 1 is slightly better than n = 10; n = 25 recovers part of it.
pub fn n_factor(n: usize) -> f64 {
    match n {
        0..=1 => 1.06,
        2..=10 => 1.0,
        _ => 1.03,
    }
}

/// Per-problem multiplier reproducing the §VI failure analysis: problems 7
/// (LFSR) and 12 (truth table) never pass even for CodeGen-16B FT; problem
/// 9 (shift/rotate) passes once in 540. The remaining problems in each
/// difficulty tier compensate so the tier mean stays at the anchor.
pub fn problem_multiplier(problem_id: u8) -> f64 {
    match problem_id {
        7 | 12 => 0.0,
        9 => 0.02,
        // 5 of the 8 intermediate problems share the mass of the three
        // crippled ones: 8 / 5 ≈ 1.6 keeps the tier mean at 1.
        5 | 6 | 8 | 10 | 11 => 1.596,
        _ => 1.0,
    }
}

/// Per-problem multiplier under the *engineered* prompts of
/// [`vgen_problems::engineered_prompt`] — the paper's §VI prognosis made
/// concrete: problem 7's failure is prompt-fixable ("a better prompt might
/// yield a correct result"), problem 9's partially so, while problem 12's
/// stems from "insufficient diversity in the training corpus" and no prompt
/// fixes it.
pub fn engineered_multiplier(problem_id: u8) -> f64 {
    match problem_id {
        7 => 0.70,
        9 => 0.55,
        12 => 0.0,
        other => problem_multiplier(other),
    }
}

/// Functional-rate bonus for fine-tuning on GitHub + textbooks instead of
/// GitHub alone (§VI ablation: "option (b) is marginally better (1.4%)").
pub fn corpus_factor(source: CorpusSource) -> f64 {
    match source {
        CorpusSource::GithubOnly => 1.0,
        CorpusSource::GithubAndBooks => 1.014,
    }
}

/// Verified candidate pools for one problem.
#[derive(Debug, Clone)]
pub struct MutantBank {
    /// Complete sources that pass the testbench.
    pub correct: Vec<String>,
    /// Complete sources that compile but fail the testbench.
    pub functional_fail: Vec<String>,
    /// Texts that fail to compile.
    pub syntax_fail: Vec<String>,
}

/// Builds (and verifies) the candidate bank for a problem.
///
/// Semantic mutants are kept only if they elaborate *and* fail the
/// testbench; corrupted texts only if they fail the parser. An empty-body
/// candidate (outputs left `x`) guarantees the functional pool is never
/// empty, and a torn-off header guarantees the syntax pool is never empty.
pub fn build_bank(problem: &Problem, seed: u64, per_pool: usize) -> MutantBank {
    let reference = problem.reference_source();
    let mut functional_fail = vec![problem.assemble("endmodule\n")];
    for (mutant, _) in semantic_mutants(&reference, seed, per_pool * 3) {
        if functional_fail.len() >= per_pool {
            break;
        }
        if !compiles(&mutant) {
            continue;
        }
        if !passes_testbench(&mutant, problem) {
            functional_fail.push(mutant);
        }
    }
    let mut syntax_fail = vec![problem.assemble("always @( begin\n")];
    for (mutant, _) in syntax_mutants(&reference, seed ^ 0xBAD, per_pool) {
        if syntax_fail.len() >= per_pool {
            break;
        }
        if !compiles(&mutant) {
            syntax_fail.push(mutant);
        }
    }
    MutantBank {
        correct: problem.all_solutions(),
        functional_fail,
        syntax_fail,
    }
}

/// The harness-level compile check: parse plus elaboration of the DUT.
pub fn compiles(source: &str) -> bool {
    let Ok(file) = vgen_verilog::parse(source) else {
        return false;
    };
    vgen_sim::elab::elaborate_first(&file).is_ok()
}

fn passes_testbench(source: &str, problem: &Problem) -> bool {
    let src = format!("{source}\n{}", problem.testbench);
    match vgen_sim::simulate(&src, Some("tb"), vgen_sim::SimConfig::default()) {
        Ok(out) => out.stdout.contains(vgen_problems::PASS_MARKER),
        Err(_) => false,
    }
}

/// The calibrated engine for one (family, tuning) row.
#[derive(Debug)]
pub struct FamilyEngine {
    model: ModelId,
    corpus: CorpusSource,
    seed: u64,
    bank_size: usize,
    engineered_prompts: bool,
    banks: HashMap<u8, MutantBank>,
}

impl FamilyEngine {
    /// Creates an engine for a model row, fine-tuned (when applicable) on
    /// the given corpus configuration.
    pub fn new(model: ModelId, corpus: CorpusSource, seed: u64) -> Self {
        FamilyEngine {
            model,
            corpus,
            seed,
            bank_size: 10,
            engineered_prompts: false,
            banks: HashMap::new(),
        }
    }

    /// Switches to the engineered prompts of
    /// [`vgen_problems::engineered_prompt`] for the §VI failure problems
    /// (see [`engineered_multiplier`]).
    pub fn with_engineered_prompts(mut self) -> Self {
        self.engineered_prompts = true;
        self
    }

    /// The model row this engine simulates.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// Probability that one completion compiles, for a scenario.
    pub fn p_compile(&self, difficulty: Difficulty, t: f64) -> f64 {
        (compile_anchor(self.model, difficulty) * temperature_factor(t, COMPILE_DECAY))
            .clamp(0.0, 1.0)
    }

    /// Probability that one completion passes the testbench.
    pub fn p_functional(&self, problem: &Problem, level: PromptLevel, t: f64, n: usize) -> f64 {
        let multiplier = if self.engineered_prompts {
            engineered_multiplier(problem.id)
        } else {
            problem_multiplier(problem.id)
        };
        let base = functional_anchor(self.model, problem.difficulty, level)
            * temperature_factor(t, FUNCTIONAL_DECAY)
            * multiplier
            * n_factor(n);
        let boosted = if self.model.tuning == Tuning::FineTuned {
            base * corpus_factor(self.corpus)
        } else {
            base
        };
        boosted
            .clamp(0.0, 1.0)
            .min(self.p_compile(problem.difficulty, t))
    }

    fn bank_for(&mut self, problem: &Problem) -> &MutantBank {
        let seed = self.seed;
        let size = self.bank_size;
        self.banks
            .entry(problem.id)
            .or_insert_with(|| build_bank(problem, seed ^ problem.id as u64, size))
    }

    fn request_rng(&self, problem: &Problem, level: PromptLevel, t: f64, n: usize) -> StdRng {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        self.model.hash(&mut h);
        problem.id.hash(&mut h);
        level.hash(&mut h);
        t.to_bits().hash(&mut h);
        n.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

impl CompletionEngine for FamilyEngine {
    fn name(&self) -> String {
        format!("{}", self.model)
    }

    fn generate(
        &mut self,
        problem: &Problem,
        level: PromptLevel,
        temperature: f64,
        n: usize,
    ) -> Vec<Completion> {
        let _span = vgen_obs::span("generate");
        let p_compile = self.p_compile(problem.difficulty, temperature);
        let p_functional = self.p_functional(problem, level, temperature, n);
        let model = self.model;
        let mut rng = self.request_rng(problem, level, temperature, n);
        let bank = self.bank_for(problem).clone();
        (0..n)
            .map(|_| {
                let text = if !rng.gen_bool(p_compile) {
                    pick(&bank.syntax_fail, &mut rng)
                } else if rng.gen_bool((p_functional / p_compile.max(1e-9)).clamp(0.0, 1.0)) {
                    let mut t = pick(&bank.correct, &mut rng);
                    // LLMs over-generate past the module ~20% of the time;
                    // the harness truncation must cut this.
                    if rng.gen_bool(0.2) {
                        t.push_str(
                            "\n// continued output\nmodule scratch(input t_unused);\nendmodule\n",
                        );
                    }
                    t
                } else {
                    pick(&bank.functional_fail, &mut rng)
                };
                Completion {
                    text,
                    latency_s: sample_seconds(model, &mut rng),
                }
            })
            .collect()
    }
}

fn pick(pool: &[String], rng: &mut StdRng) -> String {
    pool[rng.gen_range(0..pool.len())].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgen_problems::problems;

    fn cg16_ft() -> ModelId {
        ModelId::new(ModelFamily::CodeGen16B, Tuning::FineTuned)
    }

    #[test]
    fn anchors_match_paper_tables() {
        // Spot checks straight out of Tables III and IV.
        assert_eq!(compile_anchor(cg16_ft(), Difficulty::Intermediate), 0.728);
        assert_eq!(
            functional_anchor(cg16_ft(), Difficulty::Basic, PromptLevel::Medium),
            0.720
        );
        let davinci = ModelId::new(ModelFamily::CodeDavinci002, Tuning::Pretrained);
        assert_eq!(
            functional_anchor(davinci, Difficulty::Advanced, PromptLevel::High),
            0.344
        );
        let meg_pt = ModelId::new(ModelFamily::Megatron355M, Tuning::Pretrained);
        assert_eq!(compile_anchor(meg_pt, Difficulty::Basic), 0.0);
    }

    #[test]
    fn temperature_factor_decays() {
        assert!((temperature_factor(0.1, FUNCTIONAL_DECAY) - 1.0).abs() < 1e-12);
        let t3 = temperature_factor(0.3, FUNCTIONAL_DECAY);
        let t10 = temperature_factor(1.0, FUNCTIONAL_DECAY);
        assert!(t3 < 1.0 && t10 < t3);
        assert!(t10 < 0.25, "t=1.0 should be strongly degraded: {t10}");
    }

    #[test]
    fn intermediate_multipliers_average_to_one() {
        let ids = [5u8, 6, 7, 8, 9, 10, 11, 12];
        let mean: f64 = ids.iter().map(|&i| problem_multiplier(i)).sum::<f64>() / ids.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "tier mean {mean}");
    }

    #[test]
    fn bank_pools_verified() {
        let p = &problems()[5]; // counter
        let bank = build_bank(p, 11, 6);
        assert!(!bank.correct.is_empty());
        assert!(!bank.functional_fail.is_empty());
        assert!(!bank.syntax_fail.is_empty());
        for c in &bank.correct {
            assert!(compiles(c));
            assert!(passes_testbench(c, p));
        }
        for f in &bank.functional_fail {
            assert!(compiles(f), "functional-fail mutant must compile:\n{f}");
            assert!(!passes_testbench(f, p));
        }
        for s in &bank.syntax_fail {
            assert!(!compiles(s));
        }
    }

    #[test]
    fn generated_mix_tracks_probabilities() {
        let p = &problems()[1]; // AND gate (basic)
        let mut engine = FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 5);
        let completions = engine.generate(p, PromptLevel::Medium, 0.1, 400);
        let compiled = completions
            .iter()
            .filter(|c| {
                let src = vgen_verilog::truncate::truncate_completion(&c.text);
                compiles(src)
            })
            .count();
        let rate = compiled as f64 / 400.0;
        let expect = engine.p_compile(Difficulty::Basic, 0.1);
        assert!(
            (rate - expect).abs() < 0.08,
            "compile rate {rate} should track anchor {expect}"
        );
    }

    #[test]
    fn crippled_problems_never_pass() {
        let p7 = &problems()[6];
        let engine = FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 6);
        assert_eq!(engine.p_functional(p7, PromptLevel::High, 0.1, 10), 0.0);
    }

    #[test]
    fn functional_never_exceeds_compile() {
        for model in ModelId::all_evaluated() {
            let engine = FamilyEngine::new(model, CorpusSource::GithubOnly, 1);
            for p in problems() {
                for level in PromptLevel::ALL {
                    for &t in &[0.1, 0.5, 1.0] {
                        assert!(
                            engine.p_functional(p, level, t, 10)
                                <= engine.p_compile(p.difficulty, t) + 1e-12
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn books_ablation_helps_fine_tuned_only() {
        let p = &problems()[0];
        let ft_git = FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 2);
        let ft_both = FamilyEngine::new(cg16_ft(), CorpusSource::GithubAndBooks, 2);
        assert!(
            ft_both.p_functional(p, PromptLevel::Low, 0.1, 10)
                > ft_git.p_functional(p, PromptLevel::Low, 0.1, 10)
        );
        let pt = ModelId::new(ModelFamily::CodeGen16B, Tuning::Pretrained);
        let pt_git = FamilyEngine::new(pt, CorpusSource::GithubOnly, 2);
        let pt_both = FamilyEngine::new(pt, CorpusSource::GithubAndBooks, 2);
        assert_eq!(
            pt_both.p_functional(p, PromptLevel::Low, 0.1, 10),
            pt_git.p_functional(p, PromptLevel::Low, 0.1, 10)
        );
    }

    #[test]
    fn engineered_prompts_recover_prompt_fixable_problems() {
        let p7 = &problems()[6]; // LFSR: prompt-fixable per §VI.
        let p12 = &problems()[11]; // Truth table: corpus problem, not fixable.
        let plain = FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 4);
        let eng =
            FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 4).with_engineered_prompts();
        assert_eq!(plain.p_functional(p7, PromptLevel::High, 0.1, 10), 0.0);
        assert!(eng.p_functional(p7, PromptLevel::High, 0.1, 10) > 0.1);
        assert_eq!(eng.p_functional(p12, PromptLevel::High, 0.1, 10), 0.0);
        // Other problems are unaffected.
        let p6 = &problems()[5];
        assert_eq!(
            plain.p_functional(p6, PromptLevel::Low, 0.1, 10),
            eng.p_functional(p6, PromptLevel::Low, 0.1, 10)
        );
    }

    #[test]
    fn deterministic_generation() {
        let p = &problems()[3];
        let mut a = FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 9);
        let mut b = FamilyEngine::new(cg16_ft(), CorpusSource::GithubOnly, 9);
        let ca: Vec<String> = a
            .generate(p, PromptLevel::Low, 0.3, 10)
            .into_iter()
            .map(|c| c.text)
            .collect();
        let cb: Vec<String> = b
            .generate(p, PromptLevel::Low, 0.3, 10)
            .into_iter()
            .map(|c| c.text)
            .collect();
        assert_eq!(ca, cb);
    }
}
