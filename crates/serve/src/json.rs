//! A minimal JSON value type with a strict recursive-descent parser and a
//! compact single-line renderer — the wire format of the serve protocol.
//!
//! Zero external dependencies, like everything else in the workspace. The
//! subset is full JSON except that numbers are held as `f64` (protocol
//! integers are small: request ids, counts, seeds) and object keys keep
//! insertion order so rendered lines are deterministic.

use std::fmt::Write as _;

/// Nesting depth bound: protocol messages are flat-ish; anything deeper
/// than this is hostile input, not a request.
const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Members in insertion order; duplicate keys are rejected by the
    /// parser.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error (a protocol line is exactly one value).
    ///
    /// # Errors
    ///
    /// A message describing the first syntax error and its byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(v)
    }

    /// Renders compactly on one line (no interior newlines, ever — the
    /// transport is line-delimited).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_number(*x, out),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&vgen_obs::json::escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&vgen_obs::json::escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric member as a non-negative integer; `None` if fractional,
    /// negative, or too large for exact `f64` representation.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&x) {
            return None;
        }
        Some(x as u64)
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

/// Renders an `f64` the way the protocol wants integers to look: `7`,
/// not `7.0`, for whole numbers in exact range.
fn render_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the least-wrong encoding.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.at) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.at += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.at)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the low half.
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(c)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(format!("bad \\u escape at byte {}", self.at)),
                            }
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.at));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, however many bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.at))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits starting at the cursor, leaving the cursor just
    /// past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at + 4;
        let Some(chunk) = self.bytes.get(self.at..end) else {
            return Err("truncated \\u escape".to_string());
        };
        let text = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.at = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let cases = [
            r#"{"id":1,"cmd":"ping"}"#,
            r#"{"id":2,"cmd":"eval","journal":"/tmp/j.log","shards":4,"resume":true}"#,
            r#"{"a":[1,2.5,-3,null,true,false,"x"],"b":{"c":{}},"d":[]}"#,
            r#"{"s":"quote \" backslash \\ newline \n tab \t"}"#,
        ];
        for text in cases {
            let v = Json::parse(text).expect(text);
            let rendered = v.render();
            vgen_obs::json::validate(&rendered).expect("rendered line is valid JSON");
            assert_eq!(Json::parse(&rendered).expect("reparse"), v, "{text}");
        }
    }

    #[test]
    fn renders_whole_numbers_without_fraction() {
        assert_eq!(Json::Num(7.0).render(), "7");
        assert_eq!(Json::Num(-2.0).render(), "-2");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).expect("unicode");
        assert_eq!(v, Json::Str("Aé😀".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,\"a\":2}",
            "nul",
            "{\"a\" 1}",
            "1 2",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":true,"f":1.5}"#).expect("parse");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
    }
}
