//! The transport layer: a unix-socket daemon and a stdio single-client
//! loop, both speaking the line-delimited JSON protocol of [`crate::proto`].
//!
//! Supervision is per-request: every eval/check/lint/sim runs on its own
//! worker thread with its own [`CancelToken`] held in a per-connection
//! registry, so a `cancel` request (or a dropped connection) can trip one
//! request without touching the others — and a wedged request degrades
//! inside the sweep executor (timeout records, detached workers) without
//! wedging the daemon's accept loop.
//!
//! The daemon also owns a process-wide `vgen-obs` recording session for
//! its lifetime, feeding the live metrics plane: `metrics` answers with
//! one epoch-stamped snapshot (JSON + Prometheus text), `subscribe`
//! streams one per interval, and a [`LiveState`] table tracks every
//! in-flight request's progress (per-shard done counts, pass/fail/fault
//! tallies) from the same progress events clients see. Recording is
//! write-only from the pipeline's view, so a served run stays
//! byte-identical to an unserved one.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vgen_obs::CancelToken;

use crate::json::Json;
use crate::proto::{parse_request, render_event, Event, Request, RequestEnvelope};
use crate::service::{EventSink, Service};

/// Daemon knobs.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Log accepted connections and requests to stderr.
    pub verbose: bool,
}

/// A writer shared by every worker thread of one connection. Each event
/// is one line, written and flushed under the lock so lines never
/// interleave.
struct LineWriter<W: Write + Send> {
    inner: Mutex<W>,
}

impl<W: Write + Send> LineWriter<W> {
    fn send(&self, line: &str) {
        // A client that hung up mid-request is not an error worth
        // propagating: the request keeps running (its journal is the
        // durable output), the events just go nowhere.
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Adapts a [`LineWriter`] into the per-request [`EventSink`] the service
/// streams through. Owns the writer handle: the service's shard threads
/// outlive any particular borrow.
struct WireSink<W: Write + Send> {
    writer: Arc<LineWriter<W>>,
    id: u64,
}

impl<W: Write + Send> EventSink for WireSink<W> {
    fn event(&self, event: &Event) {
        self.writer.send(&render_event(self.id, event));
    }
}

/// In-flight requests of one connection: id → cancel token.
type Registry = Arc<Mutex<HashMap<u64, CancelToken>>>;

/// One in-flight request as the live metrics plane sees it.
struct LiveRequest {
    conn: u64,
    id: u64,
    cmd: &'static str,
    started: Instant,
    done: usize,
    total: usize,
    pass: u64,
    fail: u64,
    fault: u64,
    /// Records landed per shard (sharded evals only).
    shards: BTreeMap<u32, u64>,
}

/// Daemon-global table of in-flight work, shared by every connection —
/// what `metrics`/`subscribe` report under `"requests"`. Fed from the
/// same progress events clients receive, so it costs the sweep nothing
/// extra.
#[derive(Clone, Default)]
struct LiveState(Arc<Mutex<Vec<LiveRequest>>>);

impl LiveState {
    fn begin(&self, conn: u64, id: u64, cmd: &'static str) {
        let mut reqs = self.0.lock().unwrap_or_else(|e| e.into_inner());
        reqs.push(LiveRequest {
            conn,
            id,
            cmd,
            started: Instant::now(),
            done: 0,
            total: 0,
            pass: 0,
            fail: 0,
            fault: 0,
            shards: BTreeMap::new(),
        });
        vgen_obs::counter_add("serve.requests", 1);
        vgen_obs::gauge_max("serve.active", reqs.len() as u64);
        drop(reqs);
        // The request thread records no spans, so nothing would arm its
        // periodic self-flush — drain it now so the counters are visible
        // to snapshots immediately, not at thread exit.
        vgen_obs::flush();
    }

    fn end(&self, conn: u64, id: u64) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|r| !(r.conn == conn && r.id == id));
    }

    /// Folds one progress event into the request's live row.
    fn observe(&self, conn: u64, id: u64, event: &Event) {
        let Event::Progress {
            done,
            total,
            shard,
            outcome,
        } = event
        else {
            return;
        };
        let mut reqs = self.0.lock().unwrap_or_else(|e| e.into_inner());
        let Some(req) = reqs.iter_mut().find(|r| r.conn == conn && r.id == id) else {
            return;
        };
        req.done = (*done).max(req.done);
        req.total = *total;
        if let Some(s) = shard {
            *req.shards.entry(*s).or_insert(0) += 1;
        }
        match *outcome {
            Some("pass") => req.pass += 1,
            Some("fault") => req.fault += 1,
            Some(_) => req.fail += 1,
            None => {}
        }
    }

    /// Renders the table as the `"requests"` JSON array.
    fn render(&self) -> Json {
        let reqs = self.0.lock().unwrap_or_else(|e| e.into_inner());
        Json::Arr(
            reqs.iter()
                .map(|r| {
                    let elapsed_s = r.started.elapsed().as_secs_f64();
                    let mut members = vec![
                        ("id".to_string(), Json::Num(r.id as f64)),
                        ("conn".to_string(), Json::Num(r.conn as f64)),
                        ("cmd".to_string(), Json::str(r.cmd)),
                        ("elapsed_s".to_string(), Json::Num(elapsed_s)),
                        ("done".to_string(), Json::Num(r.done as f64)),
                        ("total".to_string(), Json::Num(r.total as f64)),
                        ("pass".to_string(), Json::Num(r.pass as f64)),
                        ("fail".to_string(), Json::Num(r.fail as f64)),
                        ("fault".to_string(), Json::Num(r.fault as f64)),
                    ];
                    if r.done > 0 && r.total > r.done {
                        let eta = elapsed_s * (r.total - r.done) as f64 / r.done as f64;
                        members.push(("eta_s".to_string(), Json::Num(eta)));
                    }
                    if !r.shards.is_empty() {
                        members.push((
                            "shards".to_string(),
                            Json::Obj(
                                r.shards
                                    .iter()
                                    .map(|(&s, &n)| (s.to_string(), Json::Num(n as f64)))
                                    .collect(),
                            ),
                        ));
                    }
                    Json::Obj(members)
                })
                .collect(),
        )
    }
}

/// Builds the `metrics`/`subscribe` payload: the current epoch-stamped
/// snapshot as JSON (same shape as the `<journal>.metrics.json` sidecar —
/// one render path), the in-flight request table, and the Prometheus text
/// exposition — all through the RFC 8259-validated JSON machinery.
fn metrics_payload(live: &LiveState) -> Json {
    let snap = vgen_obs::snapshot();
    let mut members = match Json::parse(&vgen_obs::summary::snapshot_json(&snap)) {
        Ok(Json::Obj(m)) => m,
        _ => Vec::new(),
    };
    members.push(("requests".to_string(), live.render()));
    members.push(("prom".to_string(), Json::Str(vgen_obs::prom::render(&snap))));
    Json::Obj(members)
}

/// An [`EventSink`] that feeds each event to the [`LiveState`] table
/// before putting it on the wire.
struct TallySink<W: Write + Send> {
    inner: WireSink<W>,
    live: LiveState,
    conn: u64,
}

impl<W: Write + Send> EventSink for TallySink<W> {
    fn event(&self, event: &Event) {
        self.live.observe(self.conn, self.inner.id, event);
        self.inner.event(event);
    }
}

fn respond<W: Write + Send>(writer: &LineWriter<W>, id: u64, event: &Event) {
    writer.send(&render_event(id, event));
}

/// Runs one request to its terminal event. Blocking; callers decide
/// whether to spawn.
fn run_request<W: Write + Send + 'static>(
    envelope: RequestEnvelope,
    writer: &Arc<LineWriter<W>>,
    registry: &Registry,
    shutdown: &AtomicBool,
    live: &LiveState,
    conn: u64,
) {
    let id = envelope.id;
    match envelope.body {
        Request::Ping => {
            respond(
                writer,
                id,
                &Event::Done {
                    payload: Json::str("pong"),
                },
            );
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            respond(
                writer,
                id,
                &Event::Done {
                    payload: Json::str("shutting down"),
                },
            );
        }
        Request::Cancel { target } => {
            let token = registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&target)
                .cloned();
            match token {
                Some(t) => {
                    t.cancel();
                    respond(
                        writer,
                        id,
                        &Event::Done {
                            payload: Json::str("cancelled"),
                        },
                    );
                }
                None => respond(
                    writer,
                    id,
                    &Event::Error {
                        message: format!("no in-flight request with id {target}"),
                    },
                ),
            }
        }
        Request::Metrics => {
            respond(
                writer,
                id,
                &Event::Done {
                    payload: metrics_payload(live),
                },
            );
        }
        Request::Subscribe { interval_ms, count } => {
            respond(writer, id, &Event::Accepted { cmd: "subscribe" });
            let cancel = CancelToken::unlimited();
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, cancel.clone());
            let interval = Duration::from_millis(interval_ms);
            let mut frames: u64 = 0;
            let stopped = 'stream: loop {
                // Sleep in short chunks so per-subscriber cancel and
                // daemon shutdown cut the stream promptly.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if cancel.poll() || shutdown.load(Ordering::SeqCst) {
                        break 'stream true;
                    }
                    let chunk = (interval - slept).min(Duration::from_millis(50));
                    std::thread::sleep(chunk);
                    slept += chunk;
                }
                respond(
                    writer,
                    id,
                    &Event::Metrics {
                        metrics: metrics_payload(live),
                    },
                );
                frames += 1;
                if count != 0 && frames >= count {
                    break false;
                }
            };
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            if stopped {
                respond(
                    writer,
                    id,
                    &Event::CancelledAt {
                        done: frames as usize,
                        total: count as usize,
                    },
                );
            } else {
                respond(
                    writer,
                    id,
                    &Event::Done {
                        payload: Json::Obj(vec![("frames".to_string(), Json::Num(frames as f64))]),
                    },
                );
            }
        }
        Request::Eval(req) => {
            respond(writer, id, &Event::Accepted { cmd: "eval" });
            let cancel = CancelToken::unlimited();
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, cancel.clone());
            live.begin(conn, id, "eval");
            let sink: Arc<dyn EventSink> = Arc::new(TallySink {
                inner: WireSink {
                    writer: Arc::clone(writer),
                    id,
                },
                live: live.clone(),
                conn,
            });
            let result = Service.eval(&req, &cancel, &sink);
            live.end(conn, id);
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            match result {
                Ok(outcome) if outcome.cancelled => respond(
                    writer,
                    id,
                    &Event::CancelledAt {
                        done: outcome.done,
                        total: outcome.total,
                    },
                ),
                Ok(outcome) => {
                    let mut members = vec![
                        ("records".to_string(), Json::Num(outcome.done as f64)),
                        ("total".to_string(), Json::Num(outcome.total as f64)),
                        (
                            "checks_run".to_string(),
                            Json::Num(outcome.stats.checks_run as f64),
                        ),
                        (
                            "cache_hits".to_string(),
                            Json::Num(outcome.stats.cache_hits as f64),
                        ),
                        (
                            "resumed_records".to_string(),
                            Json::Num(outcome.stats.resumed_records as f64),
                        ),
                    ];
                    if let Some(report) = outcome.report {
                        members.push(("report".to_string(), Json::Str(report)));
                    }
                    respond(
                        writer,
                        id,
                        &Event::Done {
                            payload: Json::Obj(members),
                        },
                    );
                }
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
        Request::Check(req) => {
            respond(writer, id, &Event::Accepted { cmd: "check" });
            match Service.check(&req) {
                Ok(payload) => respond(writer, id, &Event::Done { payload }),
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
        Request::Lint(req) => {
            respond(writer, id, &Event::Accepted { cmd: "lint" });
            match Service.lint(&req) {
                Ok(payload) => respond(writer, id, &Event::Done { payload }),
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
        Request::Sim(req) => {
            respond(writer, id, &Event::Accepted { cmd: "sim" });
            let cancel = CancelToken::unlimited();
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, cancel.clone());
            let result = Service.sim(&req, &cancel);
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            match result {
                Ok(payload) => respond(writer, id, &Event::Done { payload }),
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
    }
}

/// Serves one connection: reads request lines, dispatches long-running
/// requests to worker threads (keeping the reader free so `cancel` works
/// on the same connection), until EOF or shutdown.
fn serve_connection<R, W>(
    reader: R,
    writer: Arc<LineWriter<W>>,
    shutdown: Arc<AtomicBool>,
    live: LiveState,
    conn: u64,
) where
    R: io::Read,
    W: Write + Send + 'static,
{
    let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
    let mut workers = Vec::new();
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(envelope) => {
                let heavy = matches!(
                    envelope.body,
                    Request::Eval(_)
                        | Request::Check(_)
                        | Request::Sim(_)
                        | Request::Lint(_)
                        | Request::Subscribe { .. }
                );
                if heavy {
                    let writer = Arc::clone(&writer);
                    let registry = Arc::clone(&registry);
                    let shutdown = Arc::clone(&shutdown);
                    let live = live.clone();
                    workers.push(std::thread::spawn(move || {
                        run_request(envelope, &writer, &registry, &shutdown, &live, conn);
                    }));
                } else {
                    run_request(envelope, &writer, &registry, &shutdown, &live, conn);
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
            Err(message) => {
                // A malformed line has no usable id; answer on id 0 so the
                // client at least sees why nothing else will arrive.
                respond(&writer, 0, &Event::Error { message });
            }
        }
    }
    // Connection closed: trip every in-flight request so abandoned sweeps
    // stop burning the pool (their journals keep the completed prefix).
    for token in registry.lock().unwrap_or_else(|e| e.into_inner()).values() {
        token.cancel();
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Runs the daemon on a unix socket at `socket`. Returns when a client
/// sends `shutdown` (or on a bind error). A stale socket file from a
/// previous (possibly killed) daemon is removed before binding — the
/// journals, not the socket, are the durable state.
///
/// # Errors
///
/// Binding or accept-loop I/O errors.
pub fn serve_unix(socket: &Path, opts: &DaemonOptions) -> io::Result<()> {
    match std::fs::remove_file(socket) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    // Daemon-lifetime recording session: the live metrics plane drains it
    // via snapshots; nothing collects it until shutdown.
    vgen_obs::enable();
    let live = LiveState::default();
    let next_conn = AtomicU64::new(1);
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    if opts.verbose {
        eprintln!("[serve] listening on {}", socket.display());
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if opts.verbose {
                    eprintln!("[serve] connection accepted");
                }
                let shutdown = Arc::clone(&shutdown);
                let live = live.clone();
                let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                conns.push(std::thread::spawn(move || {
                    // Blocking I/O per connection; the listener alone is
                    // non-blocking.
                    let _ = stream.set_nonblocking(false);
                    let write_half: UnixStream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    let writer = Arc::new(LineWriter {
                        inner: Mutex::new(write_half),
                    });
                    serve_connection(stream, writer, shutdown, live, conn);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for c in conns {
        let _ = c.join();
    }
    let _ = vgen_obs::collect();
    let _ = std::fs::remove_file(socket);
    if opts.verbose {
        eprintln!("[serve] shut down");
    }
    Ok(())
}

/// Runs a single-client session over stdin/stdout — the zero-setup
/// transport (`vgen serve --stdio`), also what a supervisor that manages
/// its own process tree would use.
pub fn serve_stdio() {
    let writer = Arc::new(LineWriter {
        inner: Mutex::new(io::stdout()),
    });
    vgen_obs::enable();
    let shutdown = Arc::new(AtomicBool::new(false));
    serve_connection(io::stdin(), writer, shutdown, LiveState::default(), 0);
    let _ = vgen_obs::collect();
}
