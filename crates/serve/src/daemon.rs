//! The transport layer: a unix-socket daemon and a stdio single-client
//! loop, both speaking the line-delimited JSON protocol of [`crate::proto`].
//!
//! Supervision is per-request: every eval/check/lint/sim runs on its own
//! worker thread with its own [`CancelToken`] held in a per-connection
//! registry, so a `cancel` request (or a dropped connection) can trip one
//! request without touching the others — and a wedged request degrades
//! inside the sweep executor (timeout records, detached workers) without
//! wedging the daemon's accept loop.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vgen_obs::CancelToken;

use crate::json::Json;
use crate::proto::{parse_request, render_event, Event, Request, RequestEnvelope};
use crate::service::{EventSink, Service};

/// Daemon knobs.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Log accepted connections and requests to stderr.
    pub verbose: bool,
}

/// A writer shared by every worker thread of one connection. Each event
/// is one line, written and flushed under the lock so lines never
/// interleave.
struct LineWriter<W: Write + Send> {
    inner: Mutex<W>,
}

impl<W: Write + Send> LineWriter<W> {
    fn send(&self, line: &str) {
        // A client that hung up mid-request is not an error worth
        // propagating: the request keeps running (its journal is the
        // durable output), the events just go nowhere.
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Adapts a [`LineWriter`] into the per-request [`EventSink`] the service
/// streams through. Owns the writer handle: the service's shard threads
/// outlive any particular borrow.
struct WireSink<W: Write + Send> {
    writer: Arc<LineWriter<W>>,
    id: u64,
}

impl<W: Write + Send> EventSink for WireSink<W> {
    fn event(&self, event: &Event) {
        self.writer.send(&render_event(self.id, event));
    }
}

/// In-flight requests of one connection: id → cancel token.
type Registry = Arc<Mutex<HashMap<u64, CancelToken>>>;

fn respond<W: Write + Send>(writer: &LineWriter<W>, id: u64, event: &Event) {
    writer.send(&render_event(id, event));
}

/// Runs one request to its terminal event. Blocking; callers decide
/// whether to spawn.
fn run_request<W: Write + Send + 'static>(
    envelope: RequestEnvelope,
    writer: &Arc<LineWriter<W>>,
    registry: &Registry,
    shutdown: &AtomicBool,
) {
    let id = envelope.id;
    match envelope.body {
        Request::Ping => {
            respond(
                writer,
                id,
                &Event::Done {
                    payload: Json::str("pong"),
                },
            );
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            respond(
                writer,
                id,
                &Event::Done {
                    payload: Json::str("shutting down"),
                },
            );
        }
        Request::Cancel { target } => {
            let token = registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&target)
                .cloned();
            match token {
                Some(t) => {
                    t.cancel();
                    respond(
                        writer,
                        id,
                        &Event::Done {
                            payload: Json::str("cancelled"),
                        },
                    );
                }
                None => respond(
                    writer,
                    id,
                    &Event::Error {
                        message: format!("no in-flight request with id {target}"),
                    },
                ),
            }
        }
        Request::Eval(req) => {
            respond(writer, id, &Event::Accepted { cmd: "eval" });
            let cancel = CancelToken::unlimited();
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, cancel.clone());
            let sink: Arc<dyn EventSink> = Arc::new(WireSink {
                writer: Arc::clone(writer),
                id,
            });
            let result = Service.eval(&req, &cancel, &sink);
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            match result {
                Ok(outcome) if outcome.cancelled => respond(
                    writer,
                    id,
                    &Event::CancelledAt {
                        done: outcome.done,
                        total: outcome.total,
                    },
                ),
                Ok(outcome) => {
                    let mut members = vec![
                        ("records".to_string(), Json::Num(outcome.done as f64)),
                        ("total".to_string(), Json::Num(outcome.total as f64)),
                        (
                            "checks_run".to_string(),
                            Json::Num(outcome.stats.checks_run as f64),
                        ),
                        (
                            "cache_hits".to_string(),
                            Json::Num(outcome.stats.cache_hits as f64),
                        ),
                        (
                            "resumed_records".to_string(),
                            Json::Num(outcome.stats.resumed_records as f64),
                        ),
                    ];
                    if let Some(report) = outcome.report {
                        members.push(("report".to_string(), Json::Str(report)));
                    }
                    respond(
                        writer,
                        id,
                        &Event::Done {
                            payload: Json::Obj(members),
                        },
                    );
                }
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
        Request::Check(req) => {
            respond(writer, id, &Event::Accepted { cmd: "check" });
            match Service.check(&req) {
                Ok(payload) => respond(writer, id, &Event::Done { payload }),
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
        Request::Lint(req) => {
            respond(writer, id, &Event::Accepted { cmd: "lint" });
            match Service.lint(&req) {
                Ok(payload) => respond(writer, id, &Event::Done { payload }),
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
        Request::Sim(req) => {
            respond(writer, id, &Event::Accepted { cmd: "sim" });
            let cancel = CancelToken::unlimited();
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, cancel.clone());
            let result = Service.sim(&req, &cancel);
            registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            match result {
                Ok(payload) => respond(writer, id, &Event::Done { payload }),
                Err(message) => respond(writer, id, &Event::Error { message }),
            }
        }
    }
}

/// Serves one connection: reads request lines, dispatches long-running
/// requests to worker threads (keeping the reader free so `cancel` works
/// on the same connection), until EOF or shutdown.
fn serve_connection<R, W>(reader: R, writer: Arc<LineWriter<W>>, shutdown: Arc<AtomicBool>)
where
    R: io::Read,
    W: Write + Send + 'static,
{
    let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
    let mut workers = Vec::new();
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(envelope) => {
                let heavy = matches!(
                    envelope.body,
                    Request::Eval(_) | Request::Check(_) | Request::Sim(_) | Request::Lint(_)
                );
                if heavy {
                    let writer = Arc::clone(&writer);
                    let registry = Arc::clone(&registry);
                    let shutdown = Arc::clone(&shutdown);
                    workers.push(std::thread::spawn(move || {
                        run_request(envelope, &writer, &registry, &shutdown);
                    }));
                } else {
                    run_request(envelope, &writer, &registry, &shutdown);
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
            Err(message) => {
                // A malformed line has no usable id; answer on id 0 so the
                // client at least sees why nothing else will arrive.
                respond(&writer, 0, &Event::Error { message });
            }
        }
    }
    // Connection closed: trip every in-flight request so abandoned sweeps
    // stop burning the pool (their journals keep the completed prefix).
    for token in registry.lock().unwrap_or_else(|e| e.into_inner()).values() {
        token.cancel();
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Runs the daemon on a unix socket at `socket`. Returns when a client
/// sends `shutdown` (or on a bind error). A stale socket file from a
/// previous (possibly killed) daemon is removed before binding — the
/// journals, not the socket, are the durable state.
///
/// # Errors
///
/// Binding or accept-loop I/O errors.
pub fn serve_unix(socket: &Path, opts: &DaemonOptions) -> io::Result<()> {
    match std::fs::remove_file(socket) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    if opts.verbose {
        eprintln!("[serve] listening on {}", socket.display());
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if opts.verbose {
                    eprintln!("[serve] connection accepted");
                }
                let shutdown = Arc::clone(&shutdown);
                conns.push(std::thread::spawn(move || {
                    // Blocking I/O per connection; the listener alone is
                    // non-blocking.
                    let _ = stream.set_nonblocking(false);
                    let write_half: UnixStream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    let writer = Arc::new(LineWriter {
                        inner: Mutex::new(write_half),
                    });
                    serve_connection(stream, writer, shutdown);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for c in conns {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(socket);
    if opts.verbose {
        eprintln!("[serve] shut down");
    }
    Ok(())
}

/// Runs a single-client session over stdin/stdout — the zero-setup
/// transport (`vgen serve --stdio`), also what a supervisor that manages
/// its own process tree would use.
pub fn serve_stdio() {
    let writer = Arc::new(LineWriter {
        inner: Mutex::new(io::stdout()),
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    serve_connection(io::stdin(), writer, shutdown);
}
