//! `vgen-serve` — the long-lived evaluation service.
//!
//! The one-shot CLI pays full process startup (and a cold dedup cache)
//! per sweep. This crate turns the eval pipeline into a daemon: a
//! [`Service`] facade that the `vgen serve` daemon (and `vgen eval`
//! itself) call, a line-delimited JSON protocol ([`proto`]) with zero
//! external dependencies ([`json`] is a self-contained parser/renderer),
//! a unix-socket/stdio transport ([`daemon`]), and a per-shard journal
//! layout with a deterministic merge ([`shard`]).
//!
//! Invariant held everywhere: a sweep routed through the service — at any
//! shard count, any jobs count, either transport — produces reports and
//! journals byte-identical to the one-shot CLI path. The generation phase
//! runs per shard over the *full* grid (cells are filtered after
//! generation, and the family engine is order-independent anyway), the
//! check phase is sharded round-robin, and the merge reconstructs the
//! exact single-journal byte stream.

pub mod client;
pub mod daemon;
pub mod json;
pub mod proto;
pub mod service;
pub mod shard;

pub use client::{request_over_unix, ClientOutcome};
pub use daemon::{serve_stdio, serve_unix, DaemonOptions};
pub use json::Json;
pub use proto::{
    parse_request, render_event, CheckRequest, EvalRequest, Event, LintRequest, Request,
    RequestEnvelope, SimRequest,
};
pub use service::{EvalOutcome, EventSink, NullSink, Service};
pub use shard::{
    canonical_prefix, discover_shard_files, remove_shard_files, seed_shard_journals,
    shard_journal_path, write_journal, CanonicalPrefix,
};
