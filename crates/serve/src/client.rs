//! A minimal scriptable client for the unix-socket transport: send one
//! request line, stream events until the terminal one, report the
//! outcome. This is what `vgen client` wraps, and what the `serve-smoke`
//! CI job drives.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::json::Json;

/// The terminal result of one request.
#[derive(Debug)]
pub struct ClientOutcome {
    /// Whether the request ended in `done` (vs `error`/`cancelled`).
    pub ok: bool,
    /// The `report` string of an eval payload, when present — printed to
    /// stdout verbatim so shell pipelines can byte-compare it against the
    /// one-shot CLI.
    pub report: Option<String>,
    /// The full terminal event line, for scripted consumers.
    pub terminal: String,
}

/// Connects (retrying while the daemon starts up), sends `request_line`,
/// and streams every event line to `events` until a terminal event
/// arrives.
///
/// # Errors
///
/// Connection failures after the retry window, I/O errors, or a
/// connection that closes before any terminal event.
pub fn request_over_unix(
    socket: &Path,
    request_line: &str,
    events: &mut dyn Write,
) -> io::Result<ClientOutcome> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let stream = loop {
        match UnixStream::connect(socket) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("cannot connect to {}: {e}", socket.display()),
                    ));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    let mut write_half = stream.try_clone()?;
    writeln!(write_half, "{request_line}")?;
    write_half.flush()?;

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(events, "{line}")?;
        let parsed = match Json::parse(&line) {
            Ok(v) => v,
            Err(_) => continue, // not ours to validate; keep streaming
        };
        let event = parsed.get("event").and_then(Json::as_str).unwrap_or("");
        match event {
            "done" => {
                let report = parsed
                    .get("payload")
                    .and_then(|p| p.get("report"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
                return Ok(ClientOutcome {
                    ok: true,
                    report,
                    terminal: line,
                });
            }
            "error" | "cancelled" => {
                return Ok(ClientOutcome {
                    ok: false,
                    report: None,
                    terminal: line,
                });
            }
            _ => {}
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "connection closed before a terminal event",
    ))
}
