//! The line-delimited JSON protocol.
//!
//! One request per line, one JSON object per event line back. Grammar
//! (see DESIGN.md "Service architecture" for the full field tables):
//!
//! ```text
//! request  = { "id": uint, "cmd": "eval" | "check" | "lint" | "sim"
//!                        | "cancel" | "ping" | "shutdown"
//!                        | "metrics" | "subscribe", ...params }
//! response = { "id": uint, "event": "accepted" | "progress" | "metrics"
//!                        | "log" | "done" | "cancelled" | "error", ... }
//! ```
//!
//! Every response carries the `id` of the request it answers; a request
//! produces exactly one terminal event (`done`, `cancelled` or `error`),
//! preceded by any number of `accepted`/`progress`/`metrics`/`log`
//! events. Unknown request fields are ignored (forward compatibility);
//! unknown commands get an `error` event, not a dropped connection.

use crate::json::Json;

/// A parsed request line: the client-chosen id plus the command body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    pub id: u64,
    pub body: Request,
}

/// Every command the service understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Eval(Box<EvalRequest>),
    Check(CheckRequest),
    Lint(LintRequest),
    Sim(SimRequest),
    /// Cancel the in-flight request with id `target` on this connection.
    Cancel {
        target: u64,
    },
    /// One-shot live metrics: a `done` event whose payload is the current
    /// epoch-stamped snapshot (JSON) plus its Prometheus text exposition.
    Metrics,
    /// Streamed metrics: one `metrics` event per `interval_ms` until
    /// `count` frames have been sent (`0` = until cancelled), then `done`.
    Subscribe {
        interval_ms: u64,
        count: u64,
    },
    Ping,
    /// Stop accepting connections and exit once in-flight work unwinds.
    Shutdown,
}

/// Parameters of an `eval` request — the full sweep grid plus execution
/// options, mirroring the `vgen eval` CLI flags.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Journal path; required (sharded execution and resume both key off
    /// it).
    pub journal: String,
    pub resume: bool,
    /// Model name as in `ModelId` display form, e.g. `CodeGen-16B`.
    pub model: String,
    /// `ft` (fine-tuned) or `pt` (pretrained).
    pub tuning: String,
    /// Paper-scale grid (`paper_n10`) instead of the quick grid.
    pub full: bool,
    /// Worker threads per shard; `0` = auto.
    pub jobs: usize,
    /// Shard count for the check phase; `1` = unsharded.
    pub shards: u32,
    pub dedup: bool,
    /// `interp` or `bytecode`.
    pub sim_backend: String,
    /// Per-check wall-clock timeout in seconds.
    pub check_timeout: Option<f64>,
    pub retries: u32,
    /// Chaos spec string (`site:rate[:param]`, comma-separated).
    pub chaos: Option<String>,
    pub chaos_seed: u64,
    /// `never`, `every-record`, or `interval:N`.
    pub fsync: String,
    /// Collect `vgen-obs` metrics for this request and stream a final
    /// `metrics` event.
    pub metrics: bool,
    /// Engine RNG seed.
    pub seed: u64,
    /// Emit a `progress` event every N fresh records.
    pub progress_every: u64,
    /// Grid overrides (default: the quick / paper grid for `full`).
    pub problems: Option<Vec<u8>>,
    pub temperatures: Option<Vec<f64>>,
    pub ns: Option<Vec<usize>>,
    /// Prompt levels as a tag string, e.g. `"LMH"`, `"L"`.
    pub levels: Option<String>,
}

impl Default for EvalRequest {
    fn default() -> Self {
        EvalRequest {
            journal: String::new(),
            resume: false,
            model: "CodeGen-16B".to_string(),
            tuning: "ft".to_string(),
            full: false,
            jobs: 1,
            shards: 1,
            dedup: true,
            sim_backend: "interp".to_string(),
            check_timeout: None,
            retries: 0,
            chaos: None,
            chaos_seed: 0,
            fsync: "never".to_string(),
            metrics: false,
            seed: 42,
            progress_every: 1,
            problems: None,
            temperatures: None,
            ns: None,
            levels: None,
        }
    }
}

/// Parameters of a `check` request: score one completion against one
/// problem's testbench.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRequest {
    pub problem: u8,
    /// Prompt level tag: `L`, `M`, or `H`.
    pub level: String,
    pub source: String,
    pub check_timeout: Option<f64>,
    pub sim_backend: String,
}

/// Parameters of a `lint` request.
#[derive(Debug, Clone, PartialEq)]
pub struct LintRequest {
    pub source: String,
    /// Display name used in diagnostics.
    pub name: String,
}

/// Parameters of a `sim` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    pub source: String,
    pub top: Option<String>,
    pub max_time: Option<u64>,
    pub sim_backend: String,
}

/// Every event the service emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The request parsed and started executing.
    Accepted { cmd: &'static str },
    /// A fresh record landed: `done`/`total` count the whole request;
    /// `shard` says which shard produced it (absent unsharded); `outcome`
    /// classifies the record (`pass`/`fail`/`fault`, absent when the
    /// emitter has no record in hand).
    Progress {
        done: usize,
        total: usize,
        shard: Option<u32>,
        outcome: Option<&'static str>,
    },
    /// A `vgen-obs` metrics snapshot (object payload): the final one for
    /// an `eval --metrics` request, or one frame of a `subscribe` stream.
    Metrics { metrics: Json },
    /// Human-readable side information (resume counts, merge notes).
    Log { message: String },
    /// Terminal success; `payload` is command-specific.
    Done { payload: Json },
    /// Terminal for a cancelled request: how far it got.
    CancelledAt { done: usize, total: usize },
    /// Terminal failure.
    Error { message: String },
}

impl Event {
    /// Whether this event ends its request's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done { .. } | Event::CancelledAt { .. } | Event::Error { .. }
        )
    }
}

/// Renders one event as a single protocol line (no trailing newline).
pub fn render_event(id: u64, event: &Event) -> String {
    let mut members: Vec<(String, Json)> = vec![("id".to_string(), Json::Num(id as f64))];
    let tag = |members: &mut Vec<(String, Json)>, t: &str| {
        members.push(("event".to_string(), Json::str(t)));
    };
    match event {
        Event::Accepted { cmd } => {
            tag(&mut members, "accepted");
            members.push(("cmd".to_string(), Json::str(*cmd)));
        }
        Event::Progress {
            done,
            total,
            shard,
            outcome,
        } => {
            tag(&mut members, "progress");
            members.push(("done".to_string(), Json::Num(*done as f64)));
            members.push(("total".to_string(), Json::Num(*total as f64)));
            if let Some(s) = shard {
                members.push(("shard".to_string(), Json::Num(*s as f64)));
            }
            if let Some(o) = outcome {
                members.push(("outcome".to_string(), Json::str(*o)));
            }
        }
        Event::Metrics { metrics } => {
            tag(&mut members, "metrics");
            members.push(("metrics".to_string(), metrics.clone()));
        }
        Event::Log { message } => {
            tag(&mut members, "log");
            members.push(("message".to_string(), Json::str(message.clone())));
        }
        Event::Done { payload } => {
            tag(&mut members, "done");
            members.push(("payload".to_string(), payload.clone()));
        }
        Event::CancelledAt { done, total } => {
            tag(&mut members, "cancelled");
            members.push(("done".to_string(), Json::Num(*done as f64)));
            members.push(("total".to_string(), Json::Num(*total as f64)));
        }
        Event::Error { message } => {
            tag(&mut members, "error");
            members.push(("message".to_string(), Json::str(message.clone())));
        }
    }
    Json::Obj(members).render()
}

fn str_field(obj: &Json, key: &str, default: &str) -> Result<String, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn bool_field(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("`{key}` must be a bool")),
    }
}

fn uint_field(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message: JSON syntax errors, missing/ill-typed
/// fields, or an unknown `cmd`.
pub fn parse_request(line: &str) -> Result<RequestEnvelope, String> {
    let v = Json::parse(line)?;
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing or invalid `id`")?;
    let cmd = v.get("cmd").and_then(Json::as_str).ok_or("missing `cmd`")?;
    let body = match cmd {
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        "metrics" => Request::Metrics,
        "subscribe" => Request::Subscribe {
            interval_ms: uint_field(&v, "interval_ms", 1000)?.max(10),
            count: uint_field(&v, "count", 0)?,
        },
        "cancel" => Request::Cancel {
            target: v
                .get("target")
                .and_then(Json::as_u64)
                .ok_or("`cancel` needs a `target` request id")?,
        },
        "eval" => {
            let d = EvalRequest::default();
            let journal = str_field(&v, "journal", "")?;
            if journal.is_empty() {
                return Err("`eval` needs a `journal` path".to_string());
            }
            let problems = match v.get("problems") {
                None | Some(Json::Null) => None,
                Some(Json::Arr(items)) => Some(
                    items
                        .iter()
                        .map(|x| {
                            x.as_u64()
                                .and_then(|n| u8::try_from(n).ok())
                                .ok_or("`problems` entries must be small integers")
                        })
                        .collect::<Result<Vec<u8>, _>>()?,
                ),
                Some(_) => return Err("`problems` must be an array".to_string()),
            };
            let temperatures = match v.get("temperatures") {
                None | Some(Json::Null) => None,
                Some(Json::Arr(items)) => Some(
                    items
                        .iter()
                        .map(|x| x.as_f64().ok_or("`temperatures` entries must be numbers"))
                        .collect::<Result<Vec<f64>, _>>()?,
                ),
                Some(_) => return Err("`temperatures` must be an array".to_string()),
            };
            let ns = match v.get("ns") {
                None | Some(Json::Null) => None,
                Some(Json::Arr(items)) => Some(
                    items
                        .iter()
                        .map(|x| x.as_usize().ok_or("`ns` entries must be integers"))
                        .collect::<Result<Vec<usize>, _>>()?,
                ),
                Some(_) => return Err("`ns` must be an array".to_string()),
            };
            let levels = match v.get("levels") {
                None | Some(Json::Null) => None,
                Some(x) => Some(
                    x.as_str()
                        .ok_or("`levels` must be a tag string like \"LMH\"")?
                        .to_string(),
                ),
            };
            let check_timeout = match v.get("check_timeout") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_f64().ok_or("`check_timeout` must be a number")?),
            };
            let chaos = match v.get("chaos") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_str().ok_or("`chaos` must be a string")?.to_string()),
            };
            Request::Eval(Box::new(EvalRequest {
                journal,
                resume: bool_field(&v, "resume", d.resume)?,
                model: str_field(&v, "model", &d.model)?,
                tuning: str_field(&v, "tuning", &d.tuning)?,
                full: bool_field(&v, "full", d.full)?,
                jobs: uint_field(&v, "jobs", d.jobs as u64)? as usize,
                shards: uint_field(&v, "shards", u64::from(d.shards))? as u32,
                dedup: bool_field(&v, "dedup", d.dedup)?,
                sim_backend: str_field(&v, "sim_backend", &d.sim_backend)?,
                check_timeout,
                retries: uint_field(&v, "retries", u64::from(d.retries))? as u32,
                chaos,
                chaos_seed: uint_field(&v, "chaos_seed", d.chaos_seed)?,
                fsync: str_field(&v, "fsync", &d.fsync)?,
                metrics: bool_field(&v, "metrics", d.metrics)?,
                seed: uint_field(&v, "seed", d.seed)?,
                progress_every: uint_field(&v, "progress_every", d.progress_every)?.max(1),
                problems,
                temperatures,
                ns,
                levels,
            }))
        }
        "check" => Request::Check(CheckRequest {
            problem: u8::try_from(uint_field(&v, "problem", 0)?)
                .map_err(|_| "`problem` out of range")?,
            level: str_field(&v, "level", "L")?,
            source: v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("`check` needs `source` text")?
                .to_string(),
            check_timeout: match v.get("check_timeout") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_f64().ok_or("`check_timeout` must be a number")?),
            },
            sim_backend: str_field(&v, "sim_backend", "interp")?,
        }),
        "lint" => Request::Lint(LintRequest {
            source: v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("`lint` needs `source` text")?
                .to_string(),
            name: str_field(&v, "name", "<request>")?,
        }),
        "sim" => Request::Sim(SimRequest {
            source: v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("`sim` needs `source` text")?
                .to_string(),
            top: match v.get("top") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_str().ok_or("`top` must be a string")?.to_string()),
            },
            max_time: match v.get("max_time") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_u64().ok_or("`max_time` must be an integer")?),
            },
            sim_backend: str_field(&v, "sim_backend", "interp")?,
        }),
        other => return Err(format!("unknown cmd `{other}`")),
    };
    Ok(RequestEnvelope { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_eval() {
        let env = parse_request(r#"{"id":1,"cmd":"eval","journal":"/tmp/x.log"}"#).expect("parse");
        assert_eq!(env.id, 1);
        let Request::Eval(e) = env.body else {
            panic!("not eval")
        };
        assert_eq!(e.journal, "/tmp/x.log");
        assert_eq!(e.shards, 1);
        assert!(e.dedup);

        let env = parse_request(
            r#"{"id":9,"cmd":"eval","journal":"j","shards":4,"jobs":2,"resume":true,
                "model":"CodeGen-2B","tuning":"pt","sim_backend":"bytecode","dedup":false,
                "problems":[1,2,6],"temperatures":[0.1,0.7],"ns":[5],"levels":"LM",
                "check_timeout":2.5,"retries":1,"chaos":"check.delay:0.5:20","chaos_seed":7,
                "metrics":true,"seed":13,"progress_every":10}"#,
        )
        .expect("full parse");
        let Request::Eval(e) = env.body else {
            panic!("not eval")
        };
        assert_eq!(e.shards, 4);
        assert_eq!(e.problems.as_deref(), Some(&[1u8, 2, 6][..]));
        assert_eq!(e.levels.as_deref(), Some("LM"));
        assert_eq!(e.check_timeout, Some(2.5));
        assert_eq!(e.chaos.as_deref(), Some("check.delay:0.5:20"));
        assert!(!e.dedup);
        assert!(e.metrics);
    }

    #[test]
    fn parses_metrics_and_subscribe() {
        let env = parse_request(r#"{"id":3,"cmd":"metrics"}"#).expect("parse");
        assert_eq!(env.body, Request::Metrics);

        let env = parse_request(r#"{"id":4,"cmd":"subscribe"}"#).expect("parse");
        assert_eq!(
            env.body,
            Request::Subscribe {
                interval_ms: 1000,
                count: 0
            }
        );

        let env = parse_request(r#"{"id":5,"cmd":"subscribe","interval_ms":250,"count":8}"#)
            .expect("parse");
        assert_eq!(
            env.body,
            Request::Subscribe {
                interval_ms: 250,
                count: 8
            }
        );
        // Sub-10ms intervals are clamped: a zero interval would busy-spin.
        let env = parse_request(r#"{"id":6,"cmd":"subscribe","interval_ms":0}"#).expect("parse");
        assert_eq!(
            env.body,
            Request::Subscribe {
                interval_ms: 10,
                count: 0
            }
        );
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"ping"}"#).is_err(), "missing id");
        assert!(parse_request(r#"{"id":1,"cmd":"warp"}"#).is_err());
        assert!(
            parse_request(r#"{"id":1,"cmd":"eval"}"#).is_err(),
            "journal required"
        );
        assert!(parse_request(r#"{"id":1,"cmd":"cancel"}"#).is_err());
    }

    #[test]
    fn events_render_as_single_valid_json_lines() {
        let events = [
            Event::Accepted { cmd: "eval" },
            Event::Progress {
                done: 3,
                total: 30,
                shard: Some(1),
                outcome: Some("pass"),
            },
            Event::Log {
                message: "resumed 7 record(s)".to_string(),
            },
            Event::Done {
                payload: Json::parse(r#"{"records":30}"#).expect("payload"),
            },
            Event::CancelledAt { done: 5, total: 30 },
            Event::Error {
                message: "nope \"quoted\"\nline".to_string(),
            },
        ];
        for e in &events {
            let line = render_event(42, e);
            assert!(!line.contains('\n'), "one line: {line}");
            vgen_obs::json::validate(&line).expect("valid JSON");
            let v = Json::parse(&line).expect("reparse");
            assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
            assert!(v.get("event").is_some());
        }
        assert!(events.iter().filter(|e| e.is_terminal()).count() == 3);
    }
}
