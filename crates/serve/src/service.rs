//! The library-level `Service`: every operation the daemon (and the CLI,
//! which is a thin client of this API) can execute.
//!
//! The eval path is the heart: it reuses the core sweep executor
//! ([`vgen_core::run_engine_sweep_sharded`]) unchanged for a single
//! shard, and for `shards > 1` runs one executor per shard — each with
//! its own freshly built engine (the family engine derives every cell's
//! RNG from `(seed, model, problem, level, temperature, n)`, so
//! regenerating per shard is byte-identical to generating once) — then
//! merges the per-shard journals back into the exact single-journal byte
//! stream. Byte-identical reports and journals versus the one-shot CLI
//! path, at any shard and jobs count, is the invariant the parity tests
//! and the `serve-smoke` CI job hold.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vgen_core::{
    config_fingerprint, render_eval_summary, run_engine_sweep_sharded, supervised_check_completion,
    sweep_stats_json, ChaosSpec, CheckOutcome, CheckPolicy, EvalConfig, EvalRun, FsyncPolicy,
    Record, ShardSpec, SweepHooks, SweepOptions, SweepStats,
};
use vgen_corpus::CorpusSource;
use vgen_lm::{CompletionEngine, FamilyEngine, ModelFamily, ModelId, Tuning};
use vgen_obs::CancelToken;
use vgen_problems::PromptLevel;
use vgen_sim::{SimBackend, SimConfig};

use crate::json::Json;
use crate::proto::{CheckRequest, EvalRequest, Event, LintRequest, SimRequest};
use crate::shard;

/// Receives the event stream of one request. Implementations must be
/// cheap and non-blocking-ish: events are emitted from worker threads
/// mid-sweep.
pub trait EventSink: Send + Sync {
    /// One protocol event. Terminal events are emitted by the transport
    /// layer, not the service; the service only streams the intermediate
    /// ones.
    fn event(&self, event: &Event);
}

/// Drops every event.
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&self, _event: &Event) {}
}

/// What an eval request produced.
#[derive(Debug)]
pub struct EvalOutcome {
    /// The full run (merged across shards). `None` when cancelled.
    pub run: Option<EvalRun>,
    /// The rendered stdout report — byte-identical to the one-shot CLI's.
    /// `None` when cancelled.
    pub report: Option<String>,
    /// Aggregate sweep stats (summed across shards).
    pub stats: SweepStats,
    /// Records completed (merged canonical prefix length when cancelled).
    pub done: usize,
    /// Grid size: the record count a complete run produces.
    pub total: usize,
    /// Whether the request was cancelled before completion.
    pub cancelled: bool,
    /// The obs report, when `metrics` was requested.
    pub obs: Option<vgen_obs::ObsReport>,
}

/// The stateless service facade. Cancellation is per-request: callers
/// pass a token and keep it to trip later (the daemon holds a registry of
/// in-flight tokens keyed by request id).
#[derive(Debug, Default)]
pub struct Service;

/// Everything needed to build one engine instance (per shard).
#[derive(Clone, Copy)]
struct EngineParams {
    model: ModelId,
    seed: u64,
}

impl EngineParams {
    fn build(&self) -> FamilyEngine {
        FamilyEngine::new(self.model, CorpusSource::GithubOnly, self.seed)
    }
}

fn parse_backend(s: &str) -> Result<SimBackend, String> {
    s.parse()
}

fn parse_levels(tags: &str) -> Result<Vec<PromptLevel>, String> {
    let mut levels = Vec::new();
    for c in tags.chars() {
        let level = match c {
            'L' | 'l' => PromptLevel::Low,
            'M' | 'm' => PromptLevel::Medium,
            'H' | 'h' => PromptLevel::High,
            other => return Err(format!("bad level tag `{other}` (use L, M, H)")),
        };
        if !levels.contains(&level) {
            levels.push(level);
        }
    }
    if levels.is_empty() {
        return Err("`levels` must name at least one of L, M, H".to_string());
    }
    Ok(levels)
}

fn parse_level_one(tag: &str) -> Result<PromptLevel, String> {
    match tag {
        "L" | "l" | "low" => Ok(PromptLevel::Low),
        "M" | "m" | "medium" => Ok(PromptLevel::Medium),
        "H" | "h" | "high" => Ok(PromptLevel::High),
        other => Err(format!("bad level `{other}` (use L, M or H)")),
    }
}

/// Resolves an eval request into the engine parameters, grid config and
/// sweep options — the exact translation the CLI used to do inline.
fn resolve_eval(req: &EvalRequest) -> Result<(EngineParams, EvalConfig, SweepOptions), String> {
    let tuning = match req.tuning.as_str() {
        "ft" | "fine-tuned" => Tuning::FineTuned,
        "pt" | "pretrained" => Tuning::Pretrained,
        other => return Err(format!("bad tuning `{other}` (use ft or pt)")),
    };
    let family = ModelFamily::ALL
        .into_iter()
        .find(|f| f.name().eq_ignore_ascii_case(&req.model))
        .ok_or_else(|| {
            let known: Vec<&str> = ModelFamily::ALL.iter().map(|f| f.name()).collect();
            format!(
                "unknown model `{}` (one of: {})",
                req.model,
                known.join(", ")
            )
        })?;
    if tuning == Tuning::FineTuned && !family.supports_fine_tuning() {
        return Err(format!(
            "{} cannot be fine-tuned (the paper evaluates it pre-trained only); use tuning `pt`",
            family.name()
        ));
    }
    let mut config = if req.full {
        EvalConfig::paper_n10()
    } else {
        EvalConfig::quick()
    };
    config.sim.backend = parse_backend(&req.sim_backend)?;
    if let Some(ids) = &req.problems {
        if ids.is_empty() {
            return Err("`problems` must not be empty".to_string());
        }
        for &id in ids {
            if vgen_problems::problem(id).is_none() {
                return Err(format!("unknown problem id {id}"));
            }
        }
        config.problem_ids = ids.clone();
    }
    if let Some(ts) = &req.temperatures {
        if ts.is_empty() || ts.iter().any(|t| !t.is_finite()) {
            return Err("`temperatures` must be non-empty finite numbers".to_string());
        }
        config.temperatures = ts.clone();
    }
    if let Some(ns) = &req.ns {
        if ns.is_empty() || ns.contains(&0) {
            return Err("`ns` must be non-empty positive counts".to_string());
        }
        config.ns = ns.clone();
    }
    if let Some(tags) = &req.levels {
        config.levels = parse_levels(tags)?;
    }
    let mut policy = CheckPolicy::default();
    if let Some(secs) = req.check_timeout {
        if !(secs > 0.0 && secs.is_finite()) {
            return Err(format!("bad check_timeout `{secs}` (positive seconds)"));
        }
        policy.timeout = Some(Duration::from_secs_f64(secs));
    }
    policy.retries = req.retries;
    if let Some(spec) = &req.chaos {
        policy.chaos = ChaosSpec::parse(spec, req.chaos_seed)?;
    }
    let opts = SweepOptions {
        jobs: req.jobs,
        progress: false, // streaming progress goes through the sink
        dedup: req.dedup,
        policy,
        fsync: FsyncPolicy::parse(&req.fsync)?,
        stall_timeout: None,
    };
    Ok((
        EngineParams {
            model: ModelId::new(family, tuning),
            seed: req.seed,
        },
        config,
        opts,
    ))
}

/// The record count a complete run over `config` produces. The family
/// engine returns exactly `n` completions per cell, so the grid size is
/// closed-form.
fn grid_total(config: &EvalConfig) -> usize {
    config.problem_ids.len()
        * config.levels.len()
        * config.temperatures.len()
        * config.ns.iter().sum::<usize>()
}

/// A progress observer shared by every shard of one request: global done
/// counter, per-`progress_every` events.
struct ProgressFan {
    sink: Arc<dyn EventSink>,
    done: AtomicUsize,
    total: usize,
    every: usize,
}

impl ProgressFan {
    fn emit(&self, done: usize, shard: Option<u32>, outcome: Option<&'static str>) {
        if done.is_multiple_of(self.every) || done == self.total {
            self.sink.event(&Event::Progress {
                done,
                total: self.total,
                shard,
                outcome,
            });
        }
    }

    /// Sharded ticks: each shard thread bumps the shared counter.
    fn tick(&self, shard: Option<u32>, outcome: Option<&'static str>) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        self.emit(done, shard, outcome);
    }

    /// Single-shard ticks: the executor already counts resumed records
    /// into `done`, so we adopt its figure instead of re-counting.
    fn tick_at(&self, done: usize, outcome: Option<&'static str>) {
        self.done.store(done, Ordering::SeqCst);
        self.emit(done, None, outcome);
    }
}

/// The `outcome` tag a record carries on its progress event.
fn record_outcome(rec: &Record) -> &'static str {
    if rec.fault {
        "fault"
    } else if rec.passed {
        "pass"
    } else {
        "fail"
    }
}

impl Service {
    /// Runs a full eval sweep: single- or multi-shard, journaled,
    /// streaming progress to `sink`, honouring `cancel` between checks.
    ///
    /// # Errors
    ///
    /// Invalid parameters, journal conflicts, or I/O — as a rendered
    /// message (the transport turns it into an `error` event). A
    /// *cancelled* request is not an error: it yields an outcome with
    /// `cancelled: true`.
    pub fn eval(
        &self,
        req: &EvalRequest,
        cancel: &CancelToken,
        sink: &Arc<dyn EventSink>,
    ) -> Result<EvalOutcome, String> {
        let (params, config, opts) = resolve_eval(req)?;
        if req.shards == 0 {
            return Err("`shards` must be at least 1".to_string());
        }
        let journal = Path::new(&req.journal);
        if !req.resume
            && std::fs::metadata(journal)
                .map(|m| m.len() > 0)
                .unwrap_or(false)
        {
            return Err(format!(
                "journal `{}` already exists; pass resume to continue it \
                 or remove the file to start over",
                req.journal
            ));
        }
        // A metrics request *owns* the obs session only when no longer-
        // lived session is already running: inside the daemon, recording
        // is enabled for the daemon's lifetime (feeding the live
        // `metrics`/`subscribe` endpoints), and restarting it here would
        // clobber every concurrent request's data. In that case the
        // request's own metrics event is the snapshot *delta* over its
        // execution window instead of a collected report.
        let owns_session = req.metrics && !vgen_obs::is_enabled();
        if owns_session {
            vgen_obs::enable();
        }
        let live_before = (req.metrics && !owns_session).then(vgen_obs::snapshot);
        let outcome = if req.shards <= 1 {
            self.eval_single(req, params, &config, &opts, cancel, sink)
        } else {
            self.eval_sharded(req, params, &config, &opts, cancel, sink)
        };
        let obs = owns_session.then(vgen_obs::collect);
        let mut outcome = outcome?;
        if let Some(report) = &obs {
            let metrics = Json::parse(&vgen_obs::summary::metrics_json(report))
                .unwrap_or_else(|_| Json::Obj(Vec::new()));
            sink.event(&Event::Metrics { metrics });
        } else if let Some(before) = live_before {
            let delta = vgen_obs::snapshot().delta(&before);
            let metrics = Json::parse(&vgen_obs::summary::snapshot_json(&delta))
                .unwrap_or_else(|_| Json::Obj(Vec::new()));
            sink.event(&Event::Metrics { metrics });
        }
        outcome.obs = obs;
        // The stats sidecar is written for complete runs only, exactly as
        // the one-shot CLI always did.
        if !outcome.cancelled {
            let stats_path = format!("{}.stats.json", req.journal);
            std::fs::write(&stats_path, sweep_stats_json(&outcome.stats))
                .map_err(|e| format!("cannot write `{stats_path}`: {e}"))?;
        }
        Ok(outcome)
    }

    fn eval_single(
        &self,
        req: &EvalRequest,
        params: EngineParams,
        config: &EvalConfig,
        opts: &SweepOptions,
        cancel: &CancelToken,
        sink: &Arc<dyn EventSink>,
    ) -> Result<EvalOutcome, String> {
        let journal = Path::new(&req.journal);
        let mut engine = params.build();
        // A previous sharded run may have left shard journals behind;
        // resuming unsharded folds their canonical prefix into the main
        // journal first (shard-count changes compose, satellite
        // requirement), then re-checks everything past it.
        if req.resume {
            let fp = config_fingerprint(config);
            let name = engine.name();
            let shard_files = shard::discover_shard_files(journal).map_err(|e| e.to_string())?;
            if !shard_files.is_empty() {
                let prefix =
                    shard::canonical_prefix(journal, &name, fp).map_err(|e| e.to_string())?;
                sink.event(&Event::Log {
                    message: format!(
                        "folded {} shard journal(s) into a {}-record canonical prefix",
                        prefix.shard_files,
                        prefix.records.len()
                    ),
                });
                shard::write_journal(journal, &name, fp, None, &prefix.records)
                    .map_err(|e| e.to_string())?;
                shard::remove_shard_files(journal).map_err(|e| e.to_string())?;
            }
        }
        let total = grid_total(config);
        let fan = Arc::new(ProgressFan {
            sink: Arc::clone(sink),
            done: AtomicUsize::new(0),
            total,
            every: req.progress_every.max(1) as usize,
        });
        let hooks = SweepHooks {
            observer: Some({
                let fan = Arc::clone(&fan);
                Arc::new(move |rec: &Record, done, _total| {
                    fan.tick_at(done, Some(record_outcome(rec)));
                })
            }),
            cancel: Some(cancel.clone()),
        };
        match run_engine_sweep_sharded(
            &mut engine,
            config,
            Some((journal, req.resume)),
            opts,
            ShardSpec::single(),
            &hooks,
        ) {
            Ok((run, stats)) => {
                let done = run.records.len();
                let report = render_eval_summary(&run, &req.journal);
                Ok(EvalOutcome {
                    run: Some(run),
                    report: Some(report),
                    stats,
                    done,
                    total,
                    cancelled: false,
                    obs: None,
                })
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(EvalOutcome {
                run: None,
                report: None,
                stats: SweepStats::default(),
                done: fan.done.load(Ordering::SeqCst),
                total,
                cancelled: true,
                obs: None,
            }),
            Err(e) => Err(e.to_string()),
        }
    }

    fn eval_sharded(
        &self,
        req: &EvalRequest,
        params: EngineParams,
        config: &EvalConfig,
        opts: &SweepOptions,
        cancel: &CancelToken,
        sink: &Arc<dyn EventSink>,
    ) -> Result<EvalOutcome, String> {
        let journal = Path::new(&req.journal);
        let count = req.shards;
        let fp = config_fingerprint(config);
        let name = params.build().name();
        // Resume: fold whatever survives on disk — main journal and shard
        // files of any count — into the canonical prefix, then deal it
        // back out to this run's shard count. Fresh: the guard above
        // ensured the main journal is absent/empty; stale shard files are
        // removed by the seeding step.
        let prefix = if req.resume {
            let prefix = shard::canonical_prefix(journal, &name, fp).map_err(|e| e.to_string())?;
            if prefix.shard_files > 0 || !prefix.records.is_empty() {
                sink.event(&Event::Log {
                    message: format!(
                        "resuming from a {}-record canonical prefix ({} shard journal(s) on disk)",
                        prefix.records.len(),
                        prefix.shard_files
                    ),
                });
            }
            prefix.records
        } else {
            Vec::new()
        };
        // When the on-disk shard files already form exactly this run's
        // group, reuse them as-is: each is a valid per-shard prefix, and
        // skipping the re-seed keeps records *beyond* the canonical prefix
        // (shards progress unevenly, so the slowest shard's gap would
        // otherwise truncate the others' completed work). Any other layout
        // — different count, partial group, stale extras — is re-dealt
        // from the merged prefix.
        let files = shard::discover_shard_files(journal).map_err(|e| e.to_string())?;
        let same_group = files.len() == count as usize && files.iter().all(|&(_, _, n)| n == count);
        if !(req.resume && same_group) {
            shard::seed_shard_journals(journal, &name, fp, &prefix, count)
                .map_err(|e| e.to_string())?;
        }

        let total = grid_total(config);
        let fan = Arc::new(ProgressFan {
            sink: Arc::clone(sink),
            done: AtomicUsize::new(prefix.len()),
            total,
            every: req.progress_every.max(1) as usize,
        });
        // One executor per shard, on its own thread, with its own engine.
        let results: Vec<Result<(EvalRun, SweepStats), io::Error>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for index in 0..count {
                let shard_path = shard::shard_journal_path(journal, index, count);
                let fan = Arc::clone(&fan);
                let cancel = cancel.clone();
                let opts = opts.clone();
                let config = config.clone();
                handles.push(scope.spawn(move || {
                    let mut engine = params.build();
                    let hooks = SweepHooks {
                        observer: Some(Arc::new(move |rec: &Record, _done, _total| {
                            fan.tick(Some(index), Some(record_outcome(rec)));
                        })),
                        cancel: Some(cancel),
                    };
                    run_engine_sweep_sharded(
                        &mut engine,
                        &config,
                        // Seeded above, so every shard run is a resume of
                        // its (possibly empty) prefix.
                        Some((&shard_path, true)),
                        &opts,
                        ShardSpec { index, count },
                        &hooks,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(io::Error::other("shard thread panicked")))
                })
                .collect()
        });

        let mut stats = SweepStats::default();
        let mut cancelled = false;
        let mut first_error: Option<String> = None;
        for r in &results {
            match r {
                Ok((_, s)) => {
                    stats.checks_run += s.checks_run;
                    stats.cache_hits += s.cache_hits;
                    stats.resumed_records += s.resumed_records;
                    stats.repaired_lines += s.repaired_lines;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => cancelled = true,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e.to_string());
                    }
                }
            }
        }

        // Merge whatever landed. On a complete merge the shard files are
        // folded into the main journal (byte-identical to a one-shot run)
        // and deleted; otherwise the merged prefix is written to the main
        // journal for visibility but the shard files stay — they hold
        // beyond-prefix records a later resume can still use.
        let merged = shard::canonical_prefix(journal, &name, fp).map_err(|e| e.to_string())?;
        let complete = merged.records.len() == total && first_error.is_none() && !cancelled;
        shard::write_journal(journal, &name, fp, None, &merged.records)
            .map_err(|e| e.to_string())?;
        if complete {
            shard::remove_shard_files(journal).map_err(|e| e.to_string())?;
        }
        if let Some(e) = first_error {
            return Err(format!("shard failed: {e}"));
        }
        if cancelled {
            return Ok(EvalOutcome {
                run: None,
                report: None,
                stats: SweepStats::default(),
                done: merged.records.len(),
                total,
                cancelled: true,
                obs: None,
            });
        }
        if merged.records.len() != total {
            return Err(format!(
                "merge reconstructed {} of {} record(s) — shard journals incomplete",
                merged.records.len(),
                total
            ));
        }
        let run = EvalRun {
            engine: name,
            records: merged.records,
        };
        let report = render_eval_summary(&run, &req.journal);
        let done = run.records.len();
        Ok(EvalOutcome {
            run: Some(run),
            report: Some(report),
            stats,
            done,
            total,
            cancelled: false,
            obs: None,
        })
    }

    /// Checks one completion against one problem, under per-request
    /// supervision.
    ///
    /// # Errors
    ///
    /// Invalid parameters, as a rendered message.
    pub fn check(&self, req: &CheckRequest) -> Result<Json, String> {
        let problem = vgen_problems::problem(req.problem)
            .ok_or(format!("unknown problem id {}", req.problem))?;
        let level = parse_level_one(&req.level)?;
        let mut policy = CheckPolicy::default();
        if let Some(secs) = req.check_timeout {
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(format!("bad check_timeout `{secs}`"));
            }
            policy.timeout = Some(Duration::from_secs_f64(secs));
        }
        let sim = SimConfig {
            backend: parse_backend(&req.sim_backend)?,
            ..SimConfig::default()
        };
        let result = supervised_check_completion(problem, level, &req.source, sim, &policy);
        let (outcome, detail) = match &result.outcome {
            CheckOutcome::Pass => ("pass", None),
            CheckOutcome::FunctionalFail => ("functional_fail", None),
            CheckOutcome::SimulationFail(m) => ("simulation_fail", Some(m.clone())),
            CheckOutcome::CompileFail(m) => ("compile_fail", Some(m.clone())),
            CheckOutcome::HarnessFault(m) => ("harness_fault", Some(m.clone())),
            CheckOutcome::Timeout(k) => ("timeout", Some(format!("{k:?}"))),
        };
        let mut members = vec![
            ("problem".to_string(), Json::Num(f64::from(req.problem))),
            ("outcome".to_string(), Json::str(outcome)),
            (
                "passed".to_string(),
                Json::Bool(result.outcome == CheckOutcome::Pass),
            ),
        ];
        if let Some(d) = detail {
            members.push(("detail".to_string(), Json::Str(d)));
        }
        if let Some(lint) = &result.lint {
            members.push((
                "lint".to_string(),
                Json::Obj(vec![
                    ("errors".to_string(), Json::Num(f64::from(lint.errors))),
                    ("warnings".to_string(), Json::Num(f64::from(lint.warnings))),
                ]),
            ));
        }
        Ok(Json::Obj(members))
    }

    /// Lints one source text.
    ///
    /// # Errors
    ///
    /// Parse failures, as a rendered message.
    pub fn lint(&self, req: &LintRequest) -> Result<Json, String> {
        let report = vgen_lint::lint_source(&req.source)
            .map_err(|e| e.render_named(&req.name, &req.source))?;
        let diagnostics = Json::parse(&report.to_json(&req.name, &req.source))
            .unwrap_or_else(|_| Json::Arr(Vec::new()));
        Ok(Json::Obj(vec![
            (
                "errors".to_string(),
                Json::Num(f64::from(report.error_count())),
            ),
            (
                "warnings".to_string(),
                Json::Num(f64::from(report.warning_count())),
            ),
            ("diagnostics".to_string(), diagnostics),
        ]))
    }

    /// Simulates one source text under the standard resource budgets.
    ///
    /// # Errors
    ///
    /// Parse/elaboration failures, as a rendered message.
    pub fn sim(&self, req: &SimRequest, cancel: &CancelToken) -> Result<Json, String> {
        let mut config = SimConfig {
            backend: parse_backend(&req.sim_backend)?,
            ..SimConfig::default()
        };
        if let Some(t) = req.max_time {
            config.max_time = t;
        }
        let out = vgen_sim::simulate_with_cancel(&req.source, req.top.as_deref(), config, cancel)
            .map_err(|e| e.to_string())?;
        Ok(Json::Obj(vec![
            ("stdout".to_string(), Json::Str(out.stdout)),
            ("time".to_string(), Json::Num(out.time as f64)),
            ("steps".to_string(), Json::Num(out.steps as f64)),
            ("reason".to_string(), Json::str(format!("{:?}", out.reason))),
        ]))
    }
}
