//! Per-shard journal layout and the deterministic merge.
//!
//! A sharded eval writes one journal per shard next to the requested
//! journal path: `sweep.log` gains `sweep.log.shard0of4`,
//! `sweep.log.shard1of4`, …. Shard `k` of `n` owns canonical grid
//! positions `{k, k+n, k+2n, …}` (see
//! [`vgen_core::ShardSpec`]), so its journal's `i`-th record line is
//! canonical position `k + i·n` — merging is a round-robin walk, and a
//! complete merge reconstructs the *exact* byte stream a single-journal
//! run writes (record re-serialisation is roundtrip-stable by the same
//! invariant `--resume` already relies on).
//!
//! The merge is prefix-safe: each shard journal is itself a contiguous
//! prefix of that shard's record stream (same durability substrate as the
//! single journal), so after a crash the round-robin walk stops at the
//! first globally-missing position — the canonical prefix — and
//! everything after it is simply re-checked on resume. Shard files from
//! *different* shard counts compose too: the walk consults every
//! discovered group, which is what lets `--resume` change the shard
//! count mid-run.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use vgen_core::{journal_header, read_journal_recovering, Record};

/// The on-disk path of shard `index`'s journal for `journal`.
pub fn shard_journal_path(journal: &Path, index: u32, count: u32) -> PathBuf {
    let name = journal
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    journal.with_file_name(format!("{name}.shard{index}of{count}"))
}

/// Parses a `<journal>.shard<K>of<N>` sibling filename back into
/// `(index, count)`; `None` for anything else.
fn parse_shard_suffix(journal_name: &str, candidate: &str) -> Option<(u32, u32)> {
    let rest = candidate
        .strip_prefix(journal_name)?
        .strip_prefix(".shard")?;
    let (i, n) = rest.split_once("of")?;
    let index: u32 = i.parse().ok()?;
    let count: u32 = n.parse().ok()?;
    (count > 1 && index < count).then_some((index, count))
}

/// Every shard journal sitting next to `journal`, as
/// `(path, index, count)`, sorted by `(count, index)` so callers walk
/// groups deterministically.
///
/// # Errors
///
/// I/O errors listing the directory (a missing directory yields an empty
/// list).
pub fn discover_shard_files(journal: &Path) -> io::Result<Vec<(PathBuf, u32, u32)>> {
    let dir = match journal.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = journal
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let fname = entry.file_name().to_string_lossy().into_owned();
        if let Some((index, count)) = parse_shard_suffix(&name, &fname) {
            found.push((entry.path(), index, count));
        }
    }
    found.sort_by_key(|&(_, i, n)| (n, i));
    Ok(found)
}

/// Deletes every shard journal next to `journal`, returning how many.
///
/// # Errors
///
/// I/O errors listing or deleting.
pub fn remove_shard_files(journal: &Path) -> io::Result<usize> {
    let files = discover_shard_files(journal)?;
    let n = files.len();
    for (path, _, _) in files {
        std::fs::remove_file(path)?;
    }
    Ok(n)
}

/// The longest canonical record prefix reconstructible from the main
/// journal plus every discovered shard journal.
#[derive(Debug)]
pub struct CanonicalPrefix {
    /// Canonical positions `0..records.len()`, in order.
    pub records: Vec<Record>,
    /// Shard files consulted.
    pub shard_files: usize,
    /// Record lines dropped by torn-tail recovery across all sources.
    pub repaired_lines: usize,
}

/// Reconstructs the longest contiguous canonical prefix for `journal`
/// from whatever survives on disk: the main journal (if any) and every
/// `*.shardKofN` sibling, across *any* mix of shard counts.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] when any source belongs
/// to a different engine or config fingerprint, or a shard file's header
/// disagrees with its filename — stale artifacts must be deleted
/// explicitly, never silently merged.
pub fn canonical_prefix(journal: &Path, engine: &str, fp: u64) -> io::Result<CanonicalPrefix> {
    let mut repaired = 0usize;

    let mut check_source = |path: &Path,
                            want_shard: Option<(u32, u32)>|
     -> io::Result<Vec<Record>> {
        let (jname, jfp, recs, recovery) = read_journal_recovering(path)?;
        if jname != engine || jfp != fp {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} is for engine `{jname}` fingerprint {jfp:016x}, expected `{engine}` {fp:016x}",
                    path.display()
                ),
            ));
        }
        if recovery.shard != want_shard {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} header shard tag {:?} does not match expected {:?}",
                    path.display(),
                    recovery.shard,
                    want_shard
                ),
            ));
        }
        repaired += recovery.dropped_lines;
        Ok(recs)
    };

    // The main journal, when present and non-empty, is itself a canonical
    // prefix (an empty file is what a killed run can leave before the
    // header lands; treat it as absent).
    let base = match std::fs::metadata(journal) {
        Ok(m) if m.len() > 0 => check_source(journal, None)?,
        _ => Vec::new(),
    };

    // Group shard files by count: groups[count][index] = that shard's
    // record prefix.
    let files = discover_shard_files(journal)?;
    let shard_files = files.len();
    let mut groups: HashMap<u32, HashMap<u32, Vec<Record>>> = HashMap::new();
    for (path, index, count) in &files {
        let recs = check_source(path, Some((*index, *count)))?;
        groups.entry(*count).or_default().insert(*index, recs);
    }
    let mut counts: Vec<u32> = groups.keys().copied().collect();
    counts.sort_unstable();

    // Round-robin walk: position p lives at line p/n of shard p%n in an
    // n-way group. The first position no source can supply ends the
    // prefix.
    let mut records = base;
    'walk: loop {
        let p = records.len();
        for &n in &counts {
            let (index, line) = ((p % n as usize) as u32, p / n as usize);
            if let Some(rec) = groups
                .get(&n)
                .and_then(|g| g.get(&index))
                .and_then(|recs| recs.get(line))
            {
                records.push(rec.clone());
                continue 'walk;
            }
        }
        break;
    }

    Ok(CanonicalPrefix {
        records,
        shard_files,
        repaired_lines: repaired,
    })
}

/// Writes a complete journal file (header + records) atomically enough
/// for our purposes: straight `create` + sequential writes + flush, the
/// same way the executor rewrites a resumed journal.
///
/// # Errors
///
/// I/O errors creating or writing the file.
pub fn write_journal(
    journal: &Path,
    engine: &str,
    fp: u64,
    shard: Option<(u32, u32)>,
    records: &[Record],
) -> io::Result<()> {
    let mut f = std::fs::File::create(journal)?;
    writeln!(f, "{}", journal_header(fp, engine, shard))?;
    for r in records {
        writeln!(f, "{}", r.to_journal_line())?;
    }
    f.flush()
}

/// Seeds `count` shard journals next to `journal` from a canonical
/// prefix: shard `k` receives the prefix records at positions `≡ k (mod
/// count)`, in order. Any pre-existing shard files (from this or another
/// count) are removed first, so the on-disk state after seeding is
/// exactly one coherent group plus whatever the main journal holds.
///
/// # Errors
///
/// I/O errors removing stale files or writing the new ones.
pub fn seed_shard_journals(
    journal: &Path,
    engine: &str,
    fp: u64,
    prefix: &[Record],
    count: u32,
) -> io::Result<Vec<PathBuf>> {
    remove_shard_files(journal)?;
    let mut paths = Vec::with_capacity(count as usize);
    for index in 0..count {
        let path = shard_journal_path(journal, index, count);
        let owned: Vec<Record> = prefix
            .iter()
            .enumerate()
            .filter(|(p, _)| p % count as usize == index as usize)
            .map(|(_, r)| r.clone())
            .collect();
        write_journal(&path, engine, fp, Some((index, count)), &owned)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_paths_roundtrip_through_discovery_names() {
        let j = Path::new("/tmp/sweep.log");
        let p = shard_journal_path(j, 2, 4);
        assert_eq!(p, Path::new("/tmp/sweep.log.shard2of4"));
        assert_eq!(
            parse_shard_suffix("sweep.log", "sweep.log.shard2of4"),
            Some((2, 4))
        );
        assert_eq!(parse_shard_suffix("sweep.log", "sweep.log"), None);
        assert_eq!(parse_shard_suffix("sweep.log", "sweep.log.shard4of4"), None);
        assert_eq!(parse_shard_suffix("sweep.log", "other.log.shard0of2"), None);
        assert_eq!(
            parse_shard_suffix("sweep.log", "sweep.log.shard0of1"),
            None,
            "count 1 is not a shard group"
        );
    }
}
