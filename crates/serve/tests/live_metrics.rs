//! The live metrics plane, end to end over the unix transport: a
//! subscriber sees epoch-monotone snapshots with non-decreasing sweep
//! progress while a sharded eval runs, and a one-shot `metrics` request
//! answers with the full payload (snapshot JSON + request table +
//! Prometheus text that passes the strict line validator).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use vgen_serve::{serve_unix, DaemonOptions, Json};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vgen-live-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// Connects to the daemon socket, retrying while it starts up.
fn connect(socket: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Sends one request line and returns every event line up to (and
/// including) the terminal one.
fn roundtrip(socket: &Path, request: &str) -> Vec<Json> {
    let stream = connect(socket);
    let mut write_half = stream.try_clone().expect("clone stream");
    writeln!(write_half, "{request}").expect("send request");
    let mut events = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line.expect("read event line");
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line).expect("event line parses");
        let kind = parsed
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        events.push(parsed);
        if matches!(kind.as_str(), "done" | "error" | "cancelled") {
            break;
        }
    }
    events
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn subscriber_sees_monotone_snapshots_during_a_sharded_sweep() {
    let dir = tempdir("subscribe");
    let socket = dir.join("daemon.sock");
    let journal = dir.join("sweep.log");

    let daemon = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            serve_unix(&socket, &DaemonOptions::default()).expect("daemon exits cleanly")
        })
    };

    // Subscriber first, so its frames bracket the eval below. The chaos
    // delay stretches each check ~20ms, keeping the sweep in flight for
    // several 40ms frames.
    let subscriber = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            roundtrip(
                &socket,
                r#"{"id": 7, "cmd": "subscribe", "interval_ms": 50, "count": 12}"#,
            )
        })
    };

    let eval_request = format!(
        concat!(
            r#"{{"id": 1, "cmd": "eval", "journal": "{}", "problems": [5, 7], "#,
            r#""levels": "LM", "temperatures": [0.5], "ns": [3], "shards": 2, "#,
            r#""jobs": 2, "chaos": "check.delay:20%1", "check_timeout": 5.0}}"#
        ),
        journal.display()
    );
    let eval_events = roundtrip(&socket, &eval_request);
    let terminal = eval_events.last().expect("eval terminal event");
    assert_eq!(
        terminal.get("event").and_then(Json::as_str),
        Some("done"),
        "eval must complete: {}",
        terminal.render()
    );

    let frames = subscriber.join().expect("subscriber thread");
    let metrics_frames: Vec<&Json> = frames
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("metrics"))
        .map(|e| e.get("metrics").expect("metrics payload"))
        .collect();
    assert_eq!(metrics_frames.len(), 12, "one frame per interval");
    let last = frames.last().expect("subscribe terminal");
    assert_eq!(last.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(
        last.get("payload")
            .and_then(|p| p.get("frames"))
            .and_then(Json::as_u64),
        Some(12)
    );

    let epochs: Vec<u64> = metrics_frames
        .iter()
        .map(|m| m.get("epoch").and_then(Json::as_u64).expect("epoch"))
        .collect();
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "epochs must be strictly increasing: {epochs:?}"
    );
    let done: Vec<u64> = metrics_frames
        .iter()
        .map(|m| counter(m, "sweep.items_done"))
        .collect();
    assert!(
        done.windows(2).all(|w| w[0] <= w[1]),
        "items done must be non-decreasing: {done:?}"
    );
    assert!(
        *done.last().expect("frames") > 0,
        "the sweep must be visible in the stream: {done:?}"
    );

    // One-shot snapshot after the sweep: full payload, valid exposition.
    let events = roundtrip(&socket, r#"{"id": 2, "cmd": "metrics"}"#);
    assert_eq!(events.len(), 1, "metrics is a single terminal event");
    let payload = events[0].get("payload").expect("metrics payload");
    assert!(payload.get("epoch").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert_eq!(counter(payload, "sweep.items_total"), 12);
    assert_eq!(counter(payload, "sweep.items_done"), 12);
    assert!(counter(payload, "serve.requests") >= 1);
    assert!(
        matches!(payload.get("requests"), Some(Json::Arr(_))),
        "payload carries the in-flight request table"
    );
    let prom = payload
        .get("prom")
        .and_then(Json::as_str)
        .expect("prom exposition");
    vgen_obs::prom::validate(prom).expect("exposition passes the strict validator");
    assert!(
        prom.contains("vgen_sweep_items_done_total 12"),
        "sweep progress must appear as a counter sample:\n{prom}"
    );

    let shutdown = roundtrip(&socket, r#"{"id": 3, "cmd": "shutdown"}"#);
    assert_eq!(
        shutdown[0].get("event").and_then(Json::as_str),
        Some("done")
    );
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}
