//! The service invariant, end to end: an eval routed through
//! [`vgen_serve::Service`] — at any shard count, any jobs count, either
//! simulation backend — produces reports and journals byte-identical to
//! the single-shard path, a killed/cancelled run resumes to the same
//! bytes (even across a shard-count change), and a wedged request
//! degrades to timeout records instead of an error.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use vgen_obs::CancelToken;
use vgen_serve::{EvalRequest, Event, EventSink, NullSink, Service};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vgen-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// A small but non-trivial grid: 2 problems x 2 levels x 1 temp x n=3.
fn small_req(journal: &Path) -> EvalRequest {
    EvalRequest {
        journal: journal.to_string_lossy().into_owned(),
        problems: Some(vec![5, 7]),
        levels: Some("LM".to_string()),
        temperatures: Some(vec![0.5]),
        ns: Some(vec![3]),
        ..EvalRequest::default()
    }
}

fn run(req: &EvalRequest) -> (String, String) {
    let outcome = Service
        .eval(req, &CancelToken::unlimited(), &sink_null())
        .expect("eval");
    assert!(!outcome.cancelled, "run unexpectedly cancelled");
    let journal_bytes = std::fs::read_to_string(&req.journal).expect("journal");
    (outcome.report.expect("report"), journal_bytes)
}

fn sink_null() -> Arc<dyn EventSink> {
    Arc::new(NullSink)
}

/// Reports (modulo the embedded journal path) across shard/jobs/backend
/// combinations, and journal bytes, must all match the baseline.
#[test]
fn sharded_service_runs_are_byte_identical_to_single_shard() {
    let dir = tempdir("parity");
    for backend in ["interp", "bytecode"] {
        let base_journal = dir.join(format!("base-{backend}.log"));
        let mut base_req = small_req(&base_journal);
        base_req.sim_backend = backend.to_string();
        base_req.jobs = 1;
        let (base_report, base_bytes) = run(&base_req);
        let base_report = base_report.replace(&base_req.journal, "J");
        for (shards, jobs) in [(1u32, 2usize), (2, 1), (2, 2), (4, 1), (4, 3)] {
            let journal = dir.join(format!("s{shards}j{jobs}-{backend}.log"));
            let mut req = small_req(&journal);
            req.sim_backend = backend.to_string();
            req.shards = shards;
            req.jobs = jobs;
            let (report, bytes) = run(&req);
            assert_eq!(
                report.replace(&req.journal, "J"),
                base_report,
                "report diverged at shards={shards} jobs={jobs} backend={backend}"
            );
            assert_eq!(
                bytes, base_bytes,
                "journal diverged at shards={shards} jobs={jobs} backend={backend}"
            );
            // Complete runs fold everything into the main journal.
            assert!(
                vgen_serve::discover_shard_files(&journal)
                    .expect("discover")
                    .is_empty(),
                "shard files must be cleaned up after a complete run"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An observer that trips the cancel token after a fixed number of
/// progress events.
struct CancelAfter {
    cancel: CancelToken,
    after: usize,
    seen: AtomicUsize,
}

impl EventSink for CancelAfter {
    fn event(&self, event: &Event) {
        if matches!(event, Event::Progress { .. })
            && self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.after
        {
            self.cancel.cancel();
        }
    }
}

/// Cancelling a sharded run mid-flight leaves journals a later run — with
/// a *different* shard count — resumes to the exact bytes of an
/// uninterrupted run.
#[test]
fn cancelled_sharded_run_resumes_across_a_shard_count_change() {
    let dir = tempdir("cancel-resume");
    let ref_journal = dir.join("ref.log");
    let (ref_report, ref_bytes) = run(&small_req(&ref_journal));
    let ref_report = ref_report.replace(&*ref_journal.to_string_lossy(), "J");

    let journal = dir.join("sweep.log");
    let mut req = small_req(&journal);
    req.shards = 3;
    let cancel = CancelToken::unlimited();
    let sink: Arc<dyn EventSink> = Arc::new(CancelAfter {
        cancel: cancel.clone(),
        after: 4,
        seen: AtomicUsize::new(0),
    });
    let outcome = Service.eval(&req, &cancel, &sink).expect("cancelled eval");
    assert!(outcome.cancelled, "expected a cancelled outcome");
    assert!(
        outcome.done < outcome.total,
        "cancellation must land mid-run ({} of {})",
        outcome.done,
        outcome.total
    );

    let mut resume = small_req(&journal);
    resume.shards = 2;
    resume.resume = true;
    let outcome = Service
        .eval(&resume, &CancelToken::unlimited(), &sink_null())
        .expect("resumed eval");
    assert!(!outcome.cancelled);
    assert_eq!(
        outcome
            .report
            .expect("report")
            .replace(&*journal.to_string_lossy(), "J"),
        ref_report
    );
    assert_eq!(
        std::fs::read_to_string(&journal).expect("journal"),
        ref_bytes
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A wedged request — every check delayed past a tiny deadline — degrades
/// to timeout records and still completes, rather than erroring or
/// hanging. This is the per-request supervision the daemon relies on.
#[test]
fn wedged_request_degrades_to_timeout_records() {
    let dir = tempdir("wedge");
    let journal = dir.join("wedge.log");
    let mut req = small_req(&journal);
    req.problems = Some(vec![5]);
    req.levels = Some("L".to_string());
    req.ns = Some(vec![2]);
    req.jobs = 2;
    req.chaos = Some("check.delay:200%1".to_string());
    req.check_timeout = Some(0.02);
    let outcome = Service
        .eval(&req, &CancelToken::unlimited(), &sink_null())
        .expect("wedged eval completes");
    assert!(!outcome.cancelled);
    assert_eq!(outcome.done, outcome.total);
    let report = outcome.report.expect("report");
    assert!(
        report.contains("timeout") || report.contains("fault"),
        "report should surface the degraded checks:\n{report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The event stream carries monotonically increasing progress and a
/// terminal record count matching the grid.
#[test]
fn progress_events_cover_the_whole_grid() {
    struct Collect(Mutex<Vec<(usize, usize)>>);
    impl EventSink for Collect {
        fn event(&self, event: &Event) {
            if let Event::Progress { done, total, .. } = event {
                self.0.lock().expect("lock").push((*done, *total));
            }
        }
    }
    let dir = tempdir("progress");
    let journal = dir.join("p.log");
    let mut req = small_req(&journal);
    req.shards = 2;
    req.jobs = 2;
    let sink = Arc::new(Collect(Mutex::new(Vec::new())));
    let outcome = Service
        .eval(
            &req,
            &CancelToken::unlimited(),
            &(Arc::clone(&sink) as Arc<dyn EventSink>),
        )
        .expect("eval");
    let events = sink.0.lock().expect("lock");
    assert_eq!(events.len(), outcome.total, "one progress event per record");
    let dones: Vec<usize> = events.iter().map(|&(d, _)| d).collect();
    let mut sorted = dones.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (1..=outcome.total).collect::<Vec<_>>());
    assert!(events.iter().all(|&(_, t)| t == outcome.total));
    let _ = std::fs::remove_dir_all(&dir);
}
