//! Properties of the deterministic shard-journal merge: any mix of shard
//! groups, per-shard truncations and torn tails reconstructs exactly the
//! longest contiguous canonical prefix (checked against an independent
//! reference model), and resuming through the service composes with a
//! shard-count change back to byte-identical journals.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;
use vgen_core::{config_fingerprint, journal_header, EvalConfig, Record};
use vgen_obs::CancelToken;
use vgen_serve::{canonical_prefix, shard_journal_path, EvalRequest, EventSink, NullSink, Service};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vgen-shard-merge-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn small_req(journal: &Path) -> EvalRequest {
    EvalRequest {
        journal: journal.to_string_lossy().into_owned(),
        problems: Some(vec![5, 7]),
        levels: Some("LM".to_string()),
        temperatures: Some(vec![0.5]),
        ns: Some(vec![3]),
        ..EvalRequest::default()
    }
}

/// The config `small_req` resolves to, for fingerprinting fixture files.
fn small_config() -> EvalConfig {
    let mut config = EvalConfig::quick();
    config.problem_ids = vec![5, 7];
    config.levels = vec![
        vgen_problems::PromptLevel::Low,
        vgen_problems::PromptLevel::Medium,
    ];
    config.temperatures = vec![0.5];
    config.ns = vec![3];
    config
}

/// One real complete run, as (engine name, fingerprint, records): the raw
/// material every generated disk layout is sliced from.
fn fixture() -> (String, u64, Vec<Record>) {
    let dir = tempdir("fixture");
    let journal = dir.join("ref.log");
    let req = small_req(&journal);
    let sink: Arc<dyn EventSink> = Arc::new(NullSink);
    let outcome = Service
        .eval(&req, &CancelToken::unlimited(), &sink)
        .expect("fixture eval");
    let run = outcome.run.expect("fixture run");
    let fp = config_fingerprint(&small_config());
    let _ = std::fs::remove_dir_all(&dir);
    (run.engine, fp, run.records)
}

/// Writes one shard journal holding shard `index`'s records from
/// positions `0..limit`, optionally with a torn (half-written) extra line.
#[allow(clippy::too_many_arguments)]
fn write_shard(
    journal: &Path,
    engine: &str,
    fp: u64,
    index: u32,
    count: u32,
    records: &[Record],
    limit: usize,
    torn_tail: bool,
) {
    let path = shard_journal_path(journal, index, count);
    let mut text = format!("{}\n", journal_header(fp, engine, Some((index, count))));
    for (p, r) in records.iter().enumerate().take(limit) {
        if p % count as usize == index as usize {
            text.push_str(&r.to_journal_line());
            text.push('\n');
        }
    }
    if torn_tail {
        // A torn write: the next owned record, cut mid-line with no
        // newline. Recovery must drop it without dropping the prefix.
        if let Some(r) = records
            .iter()
            .enumerate()
            .skip(limit)
            .find(|(p, _)| p % count as usize == index as usize)
        {
            let line = r.1.to_journal_line();
            text.push_str(&line[..line.len() / 2]);
        }
    }
    std::fs::write(path, text).expect("write shard fixture");
}

/// Reference model of the merge: the longest `p` such that every position
/// `q < p` is present in the main-journal base or some shard group.
fn expected_prefix_len(base: usize, groups: &[(u32, Vec<usize>)], n_records: usize) -> usize {
    let mut p = 0usize;
    'walk: while p < n_records {
        if p < base {
            p += 1;
            continue;
        }
        for (count, limits) in groups {
            let index = p % *count as usize;
            // Shard `index` holds positions < limits[index].
            if p < limits[index] {
                p += 1;
                continue 'walk;
            }
        }
        break;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random disk layouts — a main-journal prefix plus 1–2 shard groups
    /// of different counts, each shard truncated at a random position,
    /// some with torn tails — always merge to exactly the reference
    /// model's longest-valid prefix.
    #[test]
    fn any_truncation_merges_to_the_longest_valid_prefix(
        base_len in 0usize..13,
        count_a in 2u32..6,
        count_b in 2u32..6,
        use_b in any::<bool>(),
        limits_raw in proptest::collection::vec(0usize..14, 10..11),
        torn_mask in any::<u16>(),
    ) {
        let (engine, fp, records) = fixture();
        let n = records.len();
        prop_assume!(n >= 12);
        let dir = tempdir("merge");
        let journal = dir.join("m.log");
        let base_len = base_len.min(n);
        // Main journal: canonical positions 0..base_len.
        if base_len > 0 {
            vgen_serve::write_journal(&journal, &engine, fp, None, &records[..base_len])
                .expect("write base");
        }
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        let mut counts = vec![count_a];
        if use_b && count_b != count_a {
            counts.push(count_b);
        }
        let mut torn_bit = 0usize;
        for &count in &counts {
            let mut limits = Vec::new();
            for index in 0..count {
                // Truncation point for this shard, as a canonical-position
                // bound (the shard keeps its records below it).
                let limit = limits_raw[(index as usize + count as usize) % limits_raw.len()].min(n);
                let torn = (torn_mask >> (torn_bit % 16)) & 1 == 1;
                torn_bit += 1;
                write_shard(&journal, &engine, fp, index, count, &records, limit, torn);
                limits.push(limit);
            }
            groups.push((count, limits));
        }
        let merged = canonical_prefix(&journal, &engine, fp).expect("merge");
        let want = expected_prefix_len(base_len, &groups, n);
        prop_assert_eq!(merged.records.len(), want);
        for (p, rec) in merged.records.iter().enumerate() {
            prop_assert_eq!(
                rec.to_journal_line(),
                records[p].to_journal_line(),
                "merged record {} diverged", p
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Seeding a partial run at one shard count and resuming at another
    /// converges to the byte-exact journal of an uninterrupted run.
    #[test]
    fn resume_composes_with_a_shard_count_change(
        seed_count in 2u32..5,
        resume_count in 1u32..5,
        cut in 0usize..12,
        torn in any::<bool>(),
    ) {
        let (engine, fp, records) = fixture();
        let n = records.len();
        let dir = tempdir("resume");
        let journal = dir.join("sweep.log");
        let cut = cut.min(n);
        for index in 0..seed_count {
            write_shard(&journal, &engine, fp, index, seed_count, &records, cut, torn);
        }
        let mut req = small_req(&journal);
        req.resume = true;
        req.shards = resume_count;
        let sink: Arc<dyn EventSink> = Arc::new(NullSink);
        let outcome = Service
            .eval(&req, &CancelToken::unlimited(), &sink)
            .expect("resumed eval");
        prop_assert!(!outcome.cancelled);
        let got = std::fs::read_to_string(&journal).expect("journal");
        let mut want = format!("{}\n", journal_header(fp, &engine, None));
        for r in &records {
            want.push_str(&r.to_journal_line());
            want.push('\n');
        }
        prop_assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
