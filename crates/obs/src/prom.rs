//! Prometheus text exposition (version 0.0.4) for [`Snapshot`]s.
//!
//! [`render`] turns a snapshot into the classic `text/plain` exposition:
//! counters become `vgen_<name>_total`, maxima become `vgen_<name>_max`
//! gauges, and every stage histogram becomes one
//! `vgen_stage_duration_seconds` histogram family labelled by stage, with
//! cumulative `_bucket{le=…}` lines derived from the log₂ buckets.
//! Metric names are mangled to the Prometheus alphabet (`[a-zA-Z0-9_]`,
//! dots → underscores).
//!
//! [`validate`] is a strict line-format checker for the produced text —
//! used by unit tests and the CI smoke job so a malformed exposition
//! fails loudly rather than silently scraping as garbage.

use crate::Snapshot;

/// Mangles a dotted counter name into the Prometheus name alphabet.
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Renders a snapshot as Prometheus text exposition.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP vgen_snapshot_epoch Monotone snapshot id within the session.\n");
    out.push_str("# TYPE vgen_snapshot_epoch gauge\n");
    out.push_str(&format!("vgen_snapshot_epoch {}\n", snap.epoch));
    out.push_str("# HELP vgen_session_wall_seconds Wall time the snapshot covers.\n");
    out.push_str("# TYPE vgen_session_wall_seconds gauge\n");
    out.push_str(&format!(
        "vgen_session_wall_seconds {}\n",
        seconds(snap.wall_ns())
    ));
    out.push_str("# HELP vgen_pool_utilization Busy fraction across active lanes.\n");
    out.push_str("# TYPE vgen_pool_utilization gauge\n");
    out.push_str(&format!(
        "vgen_pool_utilization {:.4}\n",
        snap.utilization()
    ));
    out.push_str("# HELP vgen_dropped_trace_events_total Trace spans dropped at buffer caps.\n");
    out.push_str("# TYPE vgen_dropped_trace_events_total counter\n");
    out.push_str(&format!(
        "vgen_dropped_trace_events_total {}\n",
        snap.dropped_events
    ));
    for (name, n) in &snap.counters {
        let m = format!("vgen_{}_total", mangle(name));
        out.push_str(&format!("# TYPE {m} counter\n{m} {n}\n"));
    }
    for (name, v) in &snap.maxima {
        let m = format!("vgen_{}_max", mangle(name));
        out.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
    }
    if !snap.hists.is_empty() {
        out.push_str("# HELP vgen_stage_duration_seconds Span duration by pipeline stage.\n");
        out.push_str("# TYPE vgen_stage_duration_seconds histogram\n");
        for (stage, hist) in &snap.hists {
            let label = escape_label(stage);
            let mut cumulative = 0u64;
            for (_, hi, n) in hist.nonzero_buckets() {
                cumulative += n;
                out.push_str(&format!(
                    "vgen_stage_duration_seconds_bucket{{stage=\"{label}\",le=\"{}\"}} {cumulative}\n",
                    seconds(hi)
                ));
            }
            out.push_str(&format!(
                "vgen_stage_duration_seconds_bucket{{stage=\"{label}\",le=\"+Inf\"}} {}\n",
                hist.count
            ));
            out.push_str(&format!(
                "vgen_stage_duration_seconds_sum{{stage=\"{label}\"}} {}\n",
                seconds(hist.sum)
            ));
            out.push_str(&format!(
                "vgen_stage_duration_seconds_count{{stage=\"{label}\"}} {}\n",
                hist.count
            ));
        }
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Checks labels text of the form `k="v",k2="v2"` (no surrounding braces).
fn valid_labels(mut s: &str) -> bool {
    loop {
        let Some(eq) = s.find('=') else { return false };
        if !valid_label_name(&s[..eq]) {
            return false;
        }
        let rest = &s[eq + 1..];
        if !rest.starts_with('"') {
            return false;
        }
        // Scan the quoted value honouring backslash escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        let close = loop {
            match bytes.get(i) {
                None => return false,
                Some(b'\\') => {
                    if !matches!(bytes.get(i + 1), Some(b'\\' | b'"' | b'n')) {
                        return false;
                    }
                    i += 2;
                }
                Some(b'"') => break i,
                Some(_) => i += 1,
            }
        };
        s = &rest[close + 1..];
        if s.is_empty() {
            return true;
        }
        let Some(tail) = s.strip_prefix(',') else {
            return false;
        };
        s = tail;
    }
}

/// Strictly validates Prometheus text-exposition `text`: every line must
/// be a well-formed `# HELP`/`# TYPE` comment or a `name[{labels}] value`
/// sample. Returns the first offending line on failure.
pub fn validate(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        let fail = |why: &str| Err(format!("line {}: {}: {:?}", lineno + 1, why, line));
        if line.is_empty() {
            return fail("empty line");
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let tail = parts.next().unwrap_or("");
            match kind {
                "HELP" if valid_metric_name(name) && !tail.is_empty() => continue,
                "TYPE"
                    if valid_metric_name(name)
                        && matches!(
                            tail,
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        ) =>
                {
                    continue
                }
                _ => return fail("malformed comment"),
            }
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let Some(close) = line.rfind('}') else {
                    return fail("unclosed label braces");
                };
                if close < brace || !valid_labels(&line[brace + 1..close]) {
                    return fail("malformed labels");
                }
                (&line[..brace], line[close + 1..].trim_start())
            }
            None => {
                let Some(sp) = line.find(' ') else {
                    return fail("missing value");
                };
                (&line[..sp], line[sp + 1..].trim_start())
            }
        };
        if !valid_metric_name(name_part) {
            return fail("invalid metric name");
        }
        if !valid_value(value_part) {
            return fail("invalid sample value");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::LaneBusy;
    use std::collections::BTreeMap;

    fn sample_snapshot() -> Snapshot {
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000, 0] {
            h.record(v);
        }
        Snapshot {
            epoch: 3,
            start_ns: 0,
            at_ns: 2_000_000_000,
            counters: BTreeMap::from([("sweep.items_done", 42u64), ("guard.hard_timeout", 1)]),
            maxima: BTreeMap::from([("sim.queue_depth", 9u64)]),
            hists: BTreeMap::from([("simulate", h)]),
            lane_busy: BTreeMap::from([(
                0,
                LaneBusy {
                    busy_ns: 1_000_000_000,
                    check_ns: 0,
                },
            )]),
            lanes: vec!["main".into()],
            dropped_events: 0,
        }
    }

    #[test]
    fn rendered_exposition_validates() {
        let text = render(&sample_snapshot());
        assert_eq!(validate(&text), Ok(()), "{text}");
        assert!(text.contains("vgen_sweep_items_done_total 42"), "{text}");
        assert!(text.contains("vgen_guard_hard_timeout_total 1"), "{text}");
        assert!(text.contains("vgen_sim_queue_depth_max 9"), "{text}");
        assert!(text.contains("vgen_snapshot_epoch 3"), "{text}");
        assert!(
            text.contains("vgen_stage_duration_seconds_bucket{stage=\"simulate\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("vgen_stage_duration_seconds_count{stage=\"simulate\"} 4"),
            "{text}"
        );
    }

    #[test]
    fn bucket_lines_are_cumulative_and_end_at_count() {
        let text = render(&sample_snapshot());
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("vgen_stage_duration_seconds_bucket{") {
                let n: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(n >= last, "buckets must be cumulative: {line}");
                last = n;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines >= 2);
        assert_eq!(last, 4, "+Inf bucket equals count");
    }

    #[test]
    fn empty_snapshot_still_validates() {
        let text = render(&Snapshot::default());
        assert_eq!(validate(&text), Ok(()), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("no_value_here\n").is_err());
        assert!(validate("1bad_name 3\n").is_err());
        assert!(validate("ok{unterminated=\"x} 3\n").is_err());
        assert!(validate("ok{k=\"v\"} notanumber\n").is_err());
        assert!(validate("# BOGUS comment\n").is_err());
        assert!(validate("\n\n").is_err());
        assert_eq!(validate("ok{k=\"v\",k2=\"w\"} 1.5\n"), Ok(()));
        assert_eq!(validate("ok +Inf\n"), Ok(()));
    }

    #[test]
    fn mangle_maps_dots_and_leading_digits() {
        assert_eq!(mangle("sweep.items_done"), "sweep_items_done");
        assert_eq!(mangle("guard.hard-timeout"), "guard_hard_timeout");
        assert_eq!(mangle("9lives"), "_9lives");
    }
}
