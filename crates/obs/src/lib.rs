//! # vgen-obs
//!
//! Zero-dependency structured tracing and metrics for the VGen pipeline.
//!
//! The evaluation sweep pushes thousands of completions through
//! generate → parse → lint → elaborate → simulate; this crate answers
//! *where the time goes* without perturbing what the sweep produces:
//!
//! * **Spans** — [`span`] returns an RAII guard that records a named,
//!   monotonic-clock-stamped interval when dropped. Nested spans nest in
//!   the trace; every span also feeds a per-stage duration
//!   [`Histogram`](hist::Histogram).
//! * **Counters and maxima** — [`counter_add`] accumulates event counts
//!   (cache hits, scheduler steps, steals); [`gauge_max`] tracks a
//!   high-water mark (scheduler queue depth).
//! * **Lanes** — every recording thread gets a *lane* (a `tid` in the
//!   Chrome trace). Ephemeral helper threads (the per-check guard thread)
//!   [adopt](adopt_lane) their parent's lane so a worker's checks render
//!   as one coherent timeline instead of thousands of one-shot rows.
//!
//! ## Recording architecture
//!
//! Instrumentation writes only to a **thread-local** [`ThreadRecorder`]:
//! a bounded span buffer plus small name-keyed counter/histogram tables.
//! The hot path takes no lock and touches no shared cache line. When a
//! thread exits (or [`collect`] runs, for the calling thread) its recorder
//! drains into a global, mutex-guarded accumulator — one lock acquisition
//! per thread lifetime, not per event. [`collect`] then snapshots the
//! accumulator into an immutable [`ObsReport`] for the export sinks
//! ([`trace`] for Chrome `trace_event` JSON, [`summary`] for the metrics
//! table).
//!
//! ## Determinism
//!
//! Nothing here feeds back into pipeline output: recording is write-only
//! from the pipeline's perspective, and the sweep's reports/journals are
//! produced from [`Record`]s alone. Enabling tracing therefore cannot
//! change a byte of report or journal output — a property CI enforces.
//!
//! When disabled (the default), every entry point is a single relaxed
//! atomic load and an early return.
//!
//! ```
//! vgen_obs::enable();
//! {
//!     let _s = vgen_obs::span("parse");
//!     vgen_obs::counter_add("parse.calls", 1);
//! }
//! let report = vgen_obs::collect();
//! assert_eq!(report.counters["parse.calls"], 1);
//! assert_eq!(report.hists["parse"].count, 1);
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod hist;
pub mod json;
pub mod prom;
pub mod snapshot;
pub mod summary;
pub mod trace;

pub use cancel::CancelToken;
pub use snapshot::Snapshot;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use hist::Histogram;

/// Cap on buffered span events per thread between flushes; spans past the
/// cap are counted as dropped (histograms and counters are never dropped —
/// they are fixed-size regardless of sample count).
const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

/// Cap on span events held in the global accumulator; a runaway sweep
/// degrades to a truncated trace plus an accurate dropped-count, never
/// unbounded memory.
const MAX_TOTAL_EVENTS: usize = 4 << 20;

/// How often a live thread drains its aggregates into the global
/// accumulator mid-session (checked at span close, so an idle thread
/// never wakes just to flush). Keeps [`snapshot`] fresh without putting a
/// lock on the per-span hot path.
const FLUSH_INTERVAL_NS: u64 = 100_000_000;

/// One completed span: a named interval on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (`"parse"`, `"simulate"`, …).
    pub name: &'static str,
    /// Lane (Chrome trace `tid`) the span ran on.
    pub lane: u32,
    /// Start, in nanoseconds of the process-wide monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Per-lane busy-time totals, maintained incrementally as spans close so
/// pool utilization can be computed without scanning the event buffer
/// (whose spans may have been dropped under the caps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneBusy {
    /// Nanoseconds this lane spent inside `check` spans.
    pub check_ns: u64,
    /// Nanoseconds this lane spent inside any span (including `check`).
    pub busy_ns: u64,
}

/// Everything one recording session produced, snapshotted by [`collect`].
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Completed spans, in per-thread arrival order (not globally sorted).
    pub events: Vec<SpanEvent>,
    /// Spans discarded because a buffer cap was hit.
    pub dropped_events: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// High-water marks by name.
    pub maxima: BTreeMap<&'static str, u64>,
    /// Span-duration histograms by stage name (nanoseconds).
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Busy-time totals by lane id.
    pub lane_busy: BTreeMap<u32, LaneBusy>,
    /// Lane names, indexed by lane id.
    pub lanes: Vec<String>,
    /// Monotonic-clock nanoseconds when [`enable`] ran.
    pub session_start_ns: u64,
    /// Monotonic-clock nanoseconds when [`collect`] ran.
    pub session_end_ns: u64,
}

impl ObsReport {
    /// Session wall time in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.session_end_ns.saturating_sub(self.session_start_ns)
    }
}

/// The global accumulator threads drain into.
#[derive(Default)]
struct Accumulator {
    events: Vec<SpanEvent>,
    dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    maxima: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    lane_busy: BTreeMap<u32, LaneBusy>,
}

impl Accumulator {
    fn absorb(&mut self, rec: &mut ThreadRecorder) {
        self.dropped += rec.dropped;
        rec.dropped = 0;
        let room = MAX_TOTAL_EVENTS.saturating_sub(self.events.len());
        if rec.events.len() > room {
            self.dropped += (rec.events.len() - room) as u64;
            rec.events.truncate(room);
        }
        self.events.append(&mut rec.events);
        for (name, n) in rec.counters.drain(..) {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (name, v) in rec.maxima.drain(..) {
            let slot = self.maxima.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (name, h) in rec.hists.drain(..) {
            self.hists.entry(name).or_default().merge(&h);
        }
        if rec.busy_ns > 0 {
            let slot = self.lane_busy.entry(rec.lane).or_default();
            slot.busy_ns += rec.busy_ns;
            slot.check_ns += rec.check_ns;
            rec.busy_ns = 0;
            rec.check_ns = 0;
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
static SESSION_START_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Generation counter bumped by [`enable`]: recorders stamped with an older
/// session are *discarded* on drop/flush instead of polluting the new
/// session (a detached hard-timeout checker may wake long after its run).
static SESSION: AtomicU64 = AtomicU64::new(0);
/// Monotone id handed out by [`snapshot`]; reset by [`enable`].
static SNAPSHOT_EPOCH: AtomicU64 = AtomicU64::new(0);

fn accumulator() -> &'static Mutex<Accumulator> {
    static ACC: OnceLock<Mutex<Accumulator>> = OnceLock::new();
    ACC.get_or_init(Mutex::default)
}

fn lanes() -> &'static Mutex<Vec<String>> {
    static LANES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    LANES.get_or_init(Mutex::default)
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Nanoseconds since a fixed, process-wide monotonic epoch.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Small name-keyed tables: with ~a dozen distinct names per thread a
/// linear scan beats hashing and keeps the hot path allocation-free after
/// warm-up.
fn bump(table: &mut Vec<(&'static str, u64)>, name: &'static str, n: u64, max: bool) {
    for (k, v) in table.iter_mut() {
        if *k == name {
            if max {
                *v = (*v).max(n);
            } else {
                *v += n;
            }
            return;
        }
    }
    table.push((name, n));
}

/// Per-thread recording buffers. Created lazily on a thread's first
/// instrumentation hit while enabled; drained into the global accumulator
/// when the thread exits.
struct ThreadRecorder {
    lane: u32,
    /// [`SESSION`] generation this recorder belongs to; stale recorders
    /// are discarded instead of drained.
    session: u64,
    events: Vec<SpanEvent>,
    dropped: u64,
    counters: Vec<(&'static str, u64)>,
    maxima: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
    busy_ns: u64,
    check_ns: u64,
    /// Monotonic deadline for the next periodic self-flush; 0 = unarmed.
    next_flush_ns: u64,
}

impl ThreadRecorder {
    fn new(lane: u32) -> Self {
        ThreadRecorder {
            lane,
            session: SESSION.load(Ordering::Relaxed),
            events: Vec::new(),
            dropped: 0,
            counters: Vec::new(),
            maxima: Vec::new(),
            hists: Vec::new(),
            busy_ns: 0,
            check_ns: 0,
            next_flush_ns: 0,
        }
    }

    fn push_span(&mut self, name: &'static str, start_ns: u64, dur_ns: u64) {
        if self.events.len() < MAX_EVENTS_PER_THREAD {
            self.events.push(SpanEvent {
                name,
                lane: self.lane,
                start_ns,
                dur_ns,
            });
        } else {
            self.dropped += 1;
        }
        self.busy_ns += dur_ns;
        if name == "check" {
            self.check_ns += dur_ns;
        }
        let mut found = false;
        for (k, h) in self.hists.iter_mut() {
            if *k == name {
                h.record(dur_ns);
                found = true;
                break;
            }
        }
        if !found {
            let mut h = Histogram::new();
            h.record(dur_ns);
            self.hists.push((name, h));
        }
        // Periodic self-flush so live snapshots see long-running threads.
        // Armed lazily from span timestamps: no extra clock reads, and an
        // idle thread never takes the accumulator lock.
        let end_ns = start_ns.saturating_add(dur_ns);
        if self.next_flush_ns == 0 {
            self.next_flush_ns = end_ns.saturating_add(FLUSH_INTERVAL_NS);
        } else if end_ns >= self.next_flush_ns {
            self.next_flush_ns = end_ns.saturating_add(FLUSH_INTERVAL_NS);
            lock_unpoisoned(accumulator()).absorb(self);
        }
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        // A recorder from an earlier session (a detached checker waking
        // after `enable` restarted recording) must not bleed into the
        // current one.
        if self.session == SESSION.load(Ordering::Relaxed) {
            lock_unpoisoned(accumulator()).absorb(self);
        }
    }
}

/// Registers a fresh lane named after the current thread.
fn register_lane() -> u32 {
    let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(|n| n.to_string())
        .unwrap_or_else(|| format!("thread-{lane}"));
    let mut names = lock_unpoisoned(lanes());
    while names.len() <= lane as usize {
        names.push(String::new());
    }
    names[lane as usize] = name;
    lane
}

thread_local! {
    static RECORDER: RefCell<Option<ThreadRecorder>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's recorder, creating it (on a fresh lane) on
/// first use. `None` if the thread-local is already torn down.
fn with_recorder<T>(f: impl FnOnce(&mut ThreadRecorder) -> T) -> Option<T> {
    RECORDER
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let stale = slot
                .as_ref()
                .is_some_and(|rec| rec.session != SESSION.load(Ordering::Relaxed));
            if stale {
                // Replacing drops the stale recorder, whose Drop discards
                // it (wrong session) rather than draining it.
                *slot = None;
            }
            let rec = slot.get_or_insert_with(|| ThreadRecorder::new(register_lane()));
            f(rec)
        })
        .ok()
}

/// Whether a recording session is active.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a recording session: clears any previously collected data and
/// enables all instrumentation.
///
/// Call from a quiet point (before spawning instrumented workers): threads
/// still buffering data from an earlier session would bleed into this one.
pub fn enable() {
    ENABLED.store(false, Ordering::SeqCst);
    // Drop (and thereby flush) the calling thread's recorder *before*
    // clearing the accumulator, so stale data cannot leak into the new
    // session.
    RECORDER.with(|cell| *cell.borrow_mut() = None);
    *lock_unpoisoned(accumulator()) = Accumulator::default();
    lock_unpoisoned(lanes()).clear();
    NEXT_LANE.store(0, Ordering::Relaxed);
    // Invalidate recorders still alive on other threads: their stamped
    // session no longer matches, so they discard instead of draining.
    SESSION.fetch_add(1, Ordering::SeqCst);
    SNAPSHOT_EPOCH.store(0, Ordering::Relaxed);
    SESSION_START_NS.store(now_ns(), Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Drains the calling thread's recorder into the global accumulator
/// without ending the session or retiring the recorder's lane.
///
/// Call at points where buffered data must become visible to concurrent
/// [`snapshot`] readers *now* — e.g. before a supervisor detaches a
/// hard-timed-out checker thread.
pub fn flush() {
    if !is_enabled() {
        return;
    }
    let _ = RECORDER.try_with(|cell| {
        if let Some(rec) = cell.borrow_mut().as_mut() {
            if rec.session == SESSION.load(Ordering::Relaxed) {
                lock_unpoisoned(accumulator()).absorb(rec);
            }
        }
    });
}

/// Takes a live, epoch-stamped [`Snapshot`] of the current session without
/// ending it.
///
/// Flushes the calling thread's buffers first, then clones the
/// accumulator's *aggregates* (counters, maxima, histograms, lane busy
/// time) — never the span event buffer, so the cost is independent of how
/// many spans the session has produced. Other threads' buffers become
/// visible through their periodic self-flush (every ~100 ms of recorded
/// span time), so two snapshots an interval apart see live rates via
/// [`Snapshot::delta`].
pub fn snapshot() -> Snapshot {
    flush();
    let epoch = SNAPSHOT_EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    let (counters, maxima, hists, lane_busy, dropped) = {
        let acc = lock_unpoisoned(accumulator());
        (
            acc.counters.clone(),
            acc.maxima.clone(),
            acc.hists.clone(),
            acc.lane_busy.clone(),
            acc.dropped,
        )
    };
    Snapshot {
        epoch,
        start_ns: SESSION_START_NS.load(Ordering::Relaxed),
        at_ns: now_ns(),
        counters,
        maxima,
        hists,
        lane_busy,
        lanes: lock_unpoisoned(lanes()).clone(),
        dropped_events: dropped,
    }
}

/// The id the most recent [`snapshot`] was stamped with (0 before the
/// first snapshot of a session).
pub fn epoch() -> u64 {
    SNAPSHOT_EPOCH.load(Ordering::Relaxed)
}

/// Ends the session and returns everything recorded.
///
/// Call after instrumented worker threads have been joined — a thread's
/// buffers drain into the global accumulator when it exits, and `collect`
/// only drains the *calling* thread's buffers itself.
pub fn collect() -> ObsReport {
    ENABLED.store(false, Ordering::SeqCst);
    // Flush the calling thread's recorder by dropping it.
    RECORDER.with(|cell| *cell.borrow_mut() = None);
    let mut acc = lock_unpoisoned(accumulator());
    let acc = std::mem::take(&mut *acc);
    ObsReport {
        events: acc.events,
        dropped_events: acc.dropped,
        counters: acc.counters,
        maxima: acc.maxima,
        hists: acc.hists,
        lane_busy: acc.lane_busy,
        lanes: lock_unpoisoned(lanes()).clone(),
        session_start_ns: SESSION_START_NS.load(Ordering::Relaxed),
        session_end_ns: now_ns(),
    }
}

/// RAII span guard: records `[creation, drop)` under `name` when dropped.
/// Inert (and allocation-free) when tracing is disabled.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        with_recorder(|rec| rec.push_span(self.name, self.start_ns, dur));
    }
}

/// Opens a span named `name` on the current thread's lane.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let active = is_enabled();
    SpanGuard {
        name,
        start_ns: if active { now_ns() } else { 0 },
        active,
    }
}

/// Adds `n` to the counter `name`.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|rec| bump(&mut rec.counters, name, n, false));
}

/// Raises the high-water mark `name` to at least `v`.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|rec| bump(&mut rec.maxima, name, v, true));
}

/// Records `ns` into the duration histogram `name` without emitting a
/// trace event — for sub-spans too numerous to trace individually.
#[inline]
pub fn record_ns(name: &'static str, ns: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|rec| {
        for (k, h) in rec.hists.iter_mut() {
            if *k == name {
                h.record(ns);
                return;
            }
        }
        let mut h = Histogram::new();
        h.record(ns);
        rec.hists.push((name, h));
    });
}

/// The current thread's lane id (assigning one if needed). Cheap and 0
/// when tracing is disabled.
pub fn current_lane() -> u32 {
    if !is_enabled() {
        return 0;
    }
    with_recorder(|rec| rec.lane).unwrap_or(0)
}

/// Makes the current thread record onto `lane` instead of a fresh lane —
/// used by short-lived helper threads (the per-check guard thread) so
/// their spans land on the spawning worker's timeline.
///
/// Must be called before the thread's first instrumentation hit; once a
/// recorder exists its lane is fixed.
pub fn adopt_lane(lane: u32) {
    if !is_enabled() {
        return;
    }
    let _ = RECORDER.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            *slot = Some(ThreadRecorder::new(lane));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Global-state tests must not interleave.
    static SESSION_LOCK: StdMutex<()> = StdMutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _g = serial();
        assert!(!is_enabled());
        let s = span("noop");
        drop(s);
        counter_add("noop", 5);
        gauge_max("noop", 5);
        record_ns("noop", 5);
        enable();
        let report = collect();
        assert!(report.events.is_empty(), "{:?}", report.events);
        assert!(report.counters.is_empty());
    }

    #[test]
    fn session_records_spans_counters_maxima() {
        let _g = serial();
        enable();
        {
            let _outer = span("outer");
            let _inner = span("inner");
            counter_add("hits", 2);
            counter_add("hits", 3);
            gauge_max("depth", 7);
            gauge_max("depth", 4);
            record_ns("quiet", 1234);
        }
        let report = collect();
        assert_eq!(report.counters["hits"], 5);
        assert_eq!(report.maxima["depth"], 7);
        assert_eq!(report.hists["quiet"].count, 1);
        let names: Vec<&str> = report.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
        // The inner span closed first and nests inside the outer one.
        let outer = report.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = report.events.iter().find(|e| e.name == "inner").unwrap();
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert!(report.wall_ns() > 0);
    }

    #[test]
    fn worker_threads_flush_on_exit_and_adopt_lanes() {
        let _g = serial();
        enable();
        let parent_lane = current_lane();
        std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| {
                let _s = span("worker-span");
            })
            .unwrap()
            .join()
            .unwrap();
        std::thread::spawn(move || {
            adopt_lane(parent_lane);
            let _s = span("adopted-span");
        })
        .join()
        .unwrap();
        let report = collect();
        let worker = report
            .events
            .iter()
            .find(|e| e.name == "worker-span")
            .expect("worker span flushed at thread exit");
        assert_ne!(worker.lane, parent_lane);
        assert_eq!(
            report.lanes[worker.lane as usize], "obs-test-worker",
            "lane named after its thread"
        );
        let adopted = report
            .events
            .iter()
            .find(|e| e.name == "adopted-span")
            .expect("adopted span flushed");
        assert_eq!(
            adopted.lane, parent_lane,
            "helper thread adopted parent lane"
        );
    }

    #[test]
    fn sessions_are_isolated() {
        let _g = serial();
        enable();
        counter_add("first", 1);
        let first = collect();
        assert_eq!(first.counters["first"], 1);
        enable();
        counter_add("second", 1);
        let second = collect();
        assert!(!second.counters.contains_key("first"));
        assert_eq!(second.counters["second"], 1);
    }

    #[test]
    fn snapshot_sees_live_data_without_ending_session() {
        let _g = serial();
        enable();
        counter_add("live.hits", 3);
        {
            let _s = span("live-stage");
        }
        let a = snapshot();
        assert_eq!(a.epoch, 1);
        assert_eq!(a.counters["live.hits"], 3);
        assert_eq!(a.hists["live-stage"].count, 1);
        assert!(is_enabled(), "snapshot must not end the session");
        counter_add("live.hits", 2);
        let b = snapshot();
        assert_eq!(b.epoch, 2);
        assert_eq!(b.counters["live.hits"], 5);
        let d = b.delta(&a);
        assert_eq!(d.counters["live.hits"], 2);
        // The flushed thread keeps recording on the same lane afterwards.
        let report = collect();
        assert_eq!(report.counters["live.hits"], 5);
        assert_eq!(report.hists["live-stage"].count, 1);
    }

    #[test]
    fn lane_busy_tracks_span_time_across_flushes() {
        let _g = serial();
        enable();
        let lane = current_lane();
        {
            let _s = span("check");
        }
        {
            let _s = span("parse");
        }
        let snap = snapshot();
        let busy = snap.lane_busy[&lane];
        assert!(busy.busy_ns >= busy.check_ns);
        assert!(busy.check_ns > 0, "check span feeds check_ns");
        // More work after the snapshot accumulates on the same lane.
        {
            let _s = span("check");
        }
        let report = collect();
        assert!(report.lane_busy[&lane].check_ns >= busy.check_ns);
        assert_eq!(report.hists["check"].count, 2);
    }

    #[test]
    fn stale_session_recorders_are_discarded() {
        let _g = serial();
        enable();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            // Record something in the *first* session, then outlive it.
            let _s = span("stale-span");
            drop(_s);
            counter_add("stale.count", 1);
            ready_tx.send(()).unwrap();
            go_rx.recv().unwrap();
            // Session has been restarted: this thread's recorder is stale.
            // Both paths must discard, not pollute the new session.
            counter_add("fresh.count", 1);
            flush();
        });
        ready_rx.recv().unwrap();
        enable(); // restart: invalidates the worker's recorder
        go_tx.send(()).unwrap();
        h.join().unwrap();
        let report = collect();
        assert!(
            !report.counters.contains_key("stale.count"),
            "stale recorder bled into new session: {:?}",
            report.counters
        );
        // fresh.count was recorded against a *new* recorder in the new
        // session (with_recorder replaces stale ones), so it must survive.
        assert_eq!(report.counters["fresh.count"], 1);
        assert!(report.events.iter().all(|e| e.name != "stale-span"));
    }
}
