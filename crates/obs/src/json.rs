//! A minimal JSON emitter and syntax validator.
//!
//! The build environment has no serde; the export sinks hand-roll their
//! JSON, and this module keeps them honest: [`validate`] is a strict
//! recursive-descent checker (RFC 8259 grammar, no extensions) used by the
//! trace/metrics tests and the `obs_overhead` bench gate, and [`escape`]
//! is the shared string-escaping helper.

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `s` is exactly one well-formed JSON value (plus optional
/// surrounding whitespace). Returns the byte offset and a message on the
/// first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => fail(*pos, "expected a JSON value"),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        fail(*pos, "bad literal")
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected object key");
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':'");
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return fail(*pos, "bad \\u escape");
                            }
                            *pos += 1;
                        }
                    }
                    _ => return fail(*pos, "bad escape"),
                }
            }
            0x00..=0x1f => return fail(*pos, "raw control character in string"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit run.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return fail(start, "bad number"),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return fail(*pos, "bad fraction");
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return fail(*pos, "bad exponent");
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "0",
            "-12.5e+3",
            "\"a \\\"quoted\\\" string\\n\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"k\": null}]]",
            "{\"a\": [1.5], \"b\": {\"c\": \"d\"}}",
            "  {\"padded\": true}  ",
        ] {
            assert_eq!(validate(ok), Ok(()), "rejected `{ok}`");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"k\":}",
            "{\"k\" 1}",
            "{k: 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "accepted `{bad}`");
        }
        let raw_control = "\"raw \u{0007} control\"".to_string();
        assert!(validate(&raw_control).is_err(), "accepted raw control char");
    }

    #[test]
    fn escape_roundtrips_through_validate() {
        let hostile = "quote\" backslash\\ newline\n tab\t bell\u{0007} unicode ✓";
        let doc = format!("{{\"k\": \"{}\"}}", escape(hostile));
        assert_eq!(validate(&doc), Ok(()), "{doc}");
    }
}
