//! Cooperative cancellation for long-running pipeline stages.
//!
//! A [`CancelToken`] is a cheaply-clonable handle to a shared flag plus an
//! optional wall-clock deadline. The supervision layer in `vgen-core` arms
//! one token per check; the parser, elaborator and simulator poll it every
//! few thousand units of work and unwind cooperatively when it trips — so a
//! *legal-but-slow* candidate (one that stays inside every step/size
//! budget) still costs one bounded check, not a wedged worker.
//!
//! Polling is two-tier by design:
//!
//! * [`is_cancelled`](CancelToken::is_cancelled) is a single relaxed atomic
//!   load — safe to call on every iteration of a hot loop.
//! * [`poll`](CancelToken::poll) additionally compares [`Instant::now`]
//!   against the deadline (and latches the flag once passed). Hot loops
//!   call it every N iterations so the clock read amortises to nothing.
//!
//! This module lives in `vgen-obs` because it is the one crate every stage
//! of the pipeline already depends on; cancellation, like tracing, is
//! cross-cutting plumbing with zero dependencies of its own.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag with an optional wall-clock deadline.
///
/// Cloning is cheap (one `Arc` bump); all clones observe the same state.
/// Once cancelled — explicitly via [`cancel`](Self::cancel) or implicitly
/// by the deadline passing during a [`poll`](Self::poll) — a token never
/// un-cancels.
///
/// ```
/// use vgen_obs::cancel::CancelToken;
///
/// let t = CancelToken::unlimited();
/// assert!(!t.poll());
/// t.cancel();
/// assert!(t.poll() && t.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never trips on its own; only [`cancel`](Self::cancel)
    /// can fire it. This is the default for unsupervised checks, so the
    /// polling sites cost one relaxed load and no clock reads.
    pub fn unlimited() -> Self {
        CancelToken::default()
    }

    /// A token that trips once `timeout` has elapsed from now (observed at
    /// the next [`poll`](Self::poll)).
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Trips the token explicitly. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has already tripped. A single relaxed atomic load;
    /// does **not** consult the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Whether the token has tripped, consulting (and latching) the
    /// deadline. Call this every N iterations from hot loops.
    pub fn poll(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancel();
                true
            }
            _ => false,
        }
    }

    /// Whether this token can ever trip without an explicit
    /// [`cancel`](Self::cancel) call.
    pub fn has_deadline(&self) -> bool {
        self.inner.deadline.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips_on_its_own() {
        let t = CancelToken::unlimited();
        assert!(!t.poll());
        assert!(!t.is_cancelled());
        assert!(!t.has_deadline());
    }

    #[test]
    fn cancel_latches_across_clones() {
        let t = CancelToken::unlimited();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.poll());
    }

    #[test]
    fn expired_deadline_trips_on_poll_and_latches() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        // The deadline is only observed via poll(); the cheap check alone
        // never reads the clock.
        assert!(!t.is_cancelled());
        assert!(t.poll());
        assert!(t.is_cancelled());
        assert!(t.has_deadline());
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.poll());
        assert!(!t.is_cancelled());
    }
}
