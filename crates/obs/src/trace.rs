//! Chrome `trace_event`-format export.
//!
//! [`chrome_trace_json`] renders an [`ObsReport`] as the JSON Object
//! Format understood by Perfetto (ui.perfetto.dev), `chrome://tracing`
//! and Speedscope: one `"X"` (complete) event per span, `ts`/`dur` in
//! fractional microseconds relative to the session start, plus `"M"`
//! metadata events naming each lane after the worker thread it belongs
//! to. Everything runs in one logical process (`pid` 1).

use crate::json::escape;
use crate::ObsReport;

/// Renders the report as a complete Chrome trace JSON document.
pub fn chrome_trace_json(report: &ObsReport) -> String {
    let mut out = String::with_capacity(128 + report.events.len() * 96);
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    push(
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \
         \"args\": {\"name\": \"vgen\"}}"
            .to_string(),
        &mut out,
    );
    for (lane, name) in report.lanes.iter().enumerate() {
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {lane}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            ),
            &mut out,
        );
    }
    for ev in &report.events {
        let ts = ev.start_ns.saturating_sub(report.session_start_ns) as f64 / 1000.0;
        let dur = ev.dur_ns as f64 / 1000.0;
        push(
            format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"vgen\", \
                 \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": 1, \"tid\": {}}}",
                escape(ev.name),
                ev.lane
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::json::validate;
    use crate::SpanEvent;
    use std::collections::BTreeMap;

    fn sample_report() -> ObsReport {
        let mut hists = BTreeMap::new();
        let mut h = Histogram::new();
        h.record(1_500);
        hists.insert("parse", h);
        ObsReport {
            events: vec![
                SpanEvent {
                    name: "parse",
                    lane: 0,
                    start_ns: 1_000,
                    dur_ns: 1_500,
                },
                SpanEvent {
                    name: "simulate",
                    lane: 1,
                    start_ns: 2_000,
                    dur_ns: 900,
                },
            ],
            dropped_events: 0,
            counters: BTreeMap::from([("dedup.hit", 3u64)]),
            maxima: BTreeMap::from([("sim.queue_depth", 5u64)]),
            hists,
            lane_busy: BTreeMap::new(),
            lanes: vec!["main".to_string(), "vgen-pool-0".to_string()],
            session_start_ns: 500,
            session_end_ns: 10_500,
        }
    }

    #[test]
    fn trace_json_is_well_formed() {
        let json = chrome_trace_json(&sample_report());
        assert_eq!(validate(&json), Ok(()), "{json}");
    }

    #[test]
    fn trace_json_carries_spans_and_lane_names() {
        let json = chrome_trace_json(&sample_report());
        assert!(json.contains("\"name\": \"parse\""));
        assert!(json.contains("\"name\": \"simulate\""));
        assert!(json.contains("\"name\": \"vgen-pool-0\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"M\""));
        // ts is relative to session start: 1000 - 500 = 500ns = 0.5us.
        assert!(json.contains("\"ts\": 0.500"), "{json}");
        assert!(json.contains("\"dur\": 1.500"), "{json}");
    }

    #[test]
    fn empty_report_is_still_valid_json() {
        let json = chrome_trace_json(&ObsReport::default());
        assert_eq!(validate(&json), Ok(()), "{json}");
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn hostile_lane_names_are_escaped() {
        let report = ObsReport {
            lanes: vec!["evil\"lane\\name\n".to_string()],
            ..ObsReport::default()
        };
        let json = chrome_trace_json(&report);
        assert_eq!(validate(&json), Ok(()), "{json}");
    }
}
