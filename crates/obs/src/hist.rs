//! Fixed-footprint log₂-bucketed histograms for nanosecond durations.
//!
//! A [`Histogram`] is 64 power-of-two buckets plus count/sum/min/max — a
//! constant ~600 bytes regardless of how many samples it absorbs, so every
//! worker thread can keep one per stage without allocation and the
//! collector can merge them with plain addition. Quantiles are estimated
//! from the bucket a target rank falls in (geometric interpolation within
//! the bucket, clamped to the observed min/max), which is exact to within
//! a factor of two — ample for "where does the wall-time go" questions.

/// Number of buckets: bucket `i` (for `i ≥ 1`) covers `[2^(i-1), 2^i)`;
/// bucket 0 holds exact zeros. `u64::MAX` lands in bucket 63.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram over `u64` samples (typically nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The bucket a value falls in: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped so the top bucket absorbs everything from `2^62` up.
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive `[lo, hi]` value range bucket `i` covers.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        i if i == BUCKETS - 1 => (1u64 << (i - 1), u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Merges another histogram into this one (commutative, associative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Bucket-wise difference `self − earlier`, for deriving the samples
    /// recorded *between* two snapshots of a monotonically growing
    /// histogram. Counts, sums and buckets subtract (saturating, so a
    /// non-prefix `earlier` cannot wrap); `min`/`max` cannot be recovered
    /// from totals, so the result inherits the newer snapshot's observed
    /// bounds — conservative but ordered. An empty difference is exactly
    /// [`Histogram::new`].
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 {
            return Histogram::new();
        }
        let mut out = Histogram {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: [0; BUCKETS],
        };
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the midpoint of the bucket
    /// holding the sample of rank `ceil(q·count)`, clamped to the observed
    /// `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Per-bucket counts (`[lo, hi]` bounds plus count), zero buckets
    /// omitted — the machine-readable export shape.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Buckets must tile [0, u64::MAX] with no gaps or overlaps.
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expect_lo = 1u64;
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} lower bound");
            // Every value in [lo, hi] maps back to bucket i.
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
        assert_eq!(expect_lo, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [5u64, 100, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1108);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 1000);
        assert_eq!(h.mean(), 277);
    }

    #[test]
    fn quantiles_of_uniform_samples_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((1..=1000).contains(&p50));
        assert!((1..=1000).contains(&p99));
        // Log-bucket estimates are exact to within a factor of two.
        assert!((250..=1000).contains(&p50), "p50 estimate {p50}");
        assert!((450..=1000).contains(&p90), "p90 estimate {p90}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1u64, 2, 3, 500] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 0, 90_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 9, 9, 9] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        let total: u64 = buckets.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, h.count);
        assert_eq!(buckets[0], (0, 0, 1));
        assert_eq!(buckets[1], (1, 1, 2));
        assert_eq!(buckets[2], (8, 15, 3));
    }

    #[test]
    fn diff_recovers_the_increment() {
        let mut earlier = Histogram::new();
        for v in [1u64, 2, 3, 500] {
            earlier.record(v);
        }
        let mut later = earlier.clone();
        let mut increment = Histogram::new();
        for v in [7u64, 0, 90_000] {
            later.record(v);
            increment.record(v);
        }
        let d = later.diff(&earlier);
        assert_eq!(d.count, increment.count);
        assert_eq!(d.sum, increment.sum);
        assert_eq!(d.nonzero_buckets(), increment.nonzero_buckets());
        // min/max are inherited from the newer snapshot (not recoverable).
        assert_eq!(d.min, later.min);
        assert_eq!(d.max, later.max);
        // No samples in between → exactly empty.
        assert_eq!(later.diff(&later), Histogram::new());
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
    }
}
