//! Metrics rendering: per-stage wall-time histograms, counter table and
//! pool utilization, rendered as an aligned text block (for stderr) and
//! as machine-readable JSON.
//!
//! Both renderers take a [`Snapshot`] — the end-of-run sidecar
//! (`<journal>.metrics.json`) goes through [`Snapshot::from_report`] and
//! the daemon's live `metrics`/`subscribe` endpoints hand in snapshots
//! directly, so there is exactly one assembly path for both.

use crate::json::escape;
use crate::{ObsReport, Snapshot};

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Fraction of (busy lanes × session wall time) spent in spans.
/// Convenience wrapper over [`Snapshot::utilization`] for collected
/// reports.
pub fn utilization(report: &ObsReport) -> f64 {
    Snapshot::from_report(report).utilization()
}

/// Renders the aligned text summary (the `--metrics` stderr block).
pub fn render_metrics(report: &ObsReport) -> String {
    render_snapshot(&Snapshot::from_report(report))
}

/// Renders the machine-readable metrics JSON document.
pub fn metrics_json(report: &ObsReport) -> String {
    snapshot_json(&Snapshot::from_report(report))
}

/// Renders a snapshot as the aligned text metrics block.
pub fn render_snapshot(snap: &Snapshot) -> String {
    let mut out = String::from("== vgen-obs metrics ==\n");
    out.push_str(&format!(
        "session wall time: {} ms\n",
        fmt_ms(snap.wall_ns())
    ));
    if !snap.hists.is_empty() {
        out.push_str(&format!(
            "{:<18} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "stage (ms)", "count", "total", "mean", "p50", "p90", "p99"
        ));
        for (name, hist) in &snap.hists {
            out.push_str(&format!(
                "{:<18} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                name,
                hist.count,
                fmt_ms(hist.sum),
                fmt_ms(hist.mean()),
                fmt_ms(hist.quantile(0.5)),
                fmt_ms(hist.quantile(0.9)),
                fmt_ms(hist.quantile(0.99)),
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, n) in &snap.counters {
            out.push_str(&format!("  {name:<24} {n}\n"));
        }
    }
    if !snap.maxima.is_empty() {
        out.push_str("maxima:\n");
        for (name, v) in &snap.maxima {
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
    }
    let busy = snap.busy_lanes();
    if !busy.is_empty() {
        out.push_str(&format!(
            "pool utilization:  {:.1}% across {} busy lane(s)\n",
            snap.utilization() * 100.0,
            busy.len()
        ));
    }
    if snap.dropped_events > 0 {
        out.push_str(&format!(
            "dropped trace events: {} (histograms/counters unaffected)\n",
            snap.dropped_events
        ));
    }
    out
}

/// Renders a snapshot as the machine-readable metrics JSON document.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"epoch\": {},\n", snap.epoch));
    out.push_str(&format!("  \"wall_ns\": {},\n", snap.wall_ns()));
    out.push_str(&format!(
        "  \"dropped_trace_events\": {},\n",
        snap.dropped_events
    ));
    out.push_str(&format!("  \"utilization\": {:.4},\n", snap.utilization()));
    out.push_str("  \"stages\": {\n");
    for (i, (name, hist)) in snap.hists.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{}\n",
            escape(name),
            hist.count,
            hist.sum,
            hist.mean(),
            if hist.is_empty() { 0 } else { hist.min },
            hist.max,
            hist.quantile(0.5),
            hist.quantile(0.9),
            hist.quantile(0.99),
            if i + 1 < snap.hists.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"counters\": {\n");
    for (i, (name, n)) in snap.counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {n}{}\n",
            escape(name),
            if i + 1 < snap.counters.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"maxima\": {\n");
    for (i, (name, v)) in snap.maxima.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {v}{}\n",
            escape(name),
            if i + 1 < snap.maxima.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::json::validate;
    use crate::{LaneBusy, SpanEvent};
    use std::collections::BTreeMap;

    fn report_with_checks() -> ObsReport {
        let mut hists = BTreeMap::new();
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            h.record(v);
        }
        hists.insert("check", h);
        ObsReport {
            events: vec![
                SpanEvent {
                    name: "check",
                    lane: 1,
                    start_ns: 0,
                    dur_ns: 5_000,
                },
                SpanEvent {
                    name: "parse",
                    lane: 1,
                    start_ns: 100,
                    dur_ns: 1_000,
                },
                SpanEvent {
                    name: "check",
                    lane: 2,
                    start_ns: 0,
                    dur_ns: 10_000,
                },
            ],
            dropped_events: 2,
            counters: BTreeMap::from([("dedup.hit", 7u64)]),
            maxima: BTreeMap::from([("sim.queue_depth", 9u64)]),
            hists,
            lane_busy: BTreeMap::from([
                (
                    1,
                    LaneBusy {
                        busy_ns: 6_000,
                        check_ns: 5_000,
                    },
                ),
                (
                    2,
                    LaneBusy {
                        busy_ns: 10_000,
                        check_ns: 10_000,
                    },
                ),
            ]),
            lanes: vec!["main".into(), "vgen-pool-0".into(), "vgen-pool-1".into()],
            session_start_ns: 0,
            session_end_ns: 10_000,
        }
    }

    #[test]
    fn utilization_counts_check_time_per_busy_lane() {
        let r = report_with_checks();
        // Two busy lanes over a 10µs wall: (5000 + 10000) / (2 × 10000).
        assert!((utilization(&r) - 0.75).abs() < 1e-9, "{}", utilization(&r));
    }

    #[test]
    fn utilization_of_empty_report_is_zero() {
        assert_eq!(utilization(&ObsReport::default()), 0.0);
    }

    #[test]
    fn text_summary_mentions_stages_counters_and_drops() {
        let s = render_metrics(&report_with_checks());
        assert!(s.contains("check"), "{s}");
        assert!(s.contains("dedup.hit"), "{s}");
        assert!(s.contains("sim.queue_depth"), "{s}");
        assert!(s.contains("pool utilization"), "{s}");
        assert!(s.contains("dropped trace events: 2"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let json = metrics_json(&report_with_checks());
        assert_eq!(validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"epoch\""));
        assert!(json.contains("\"dedup.hit\": 7"));
        let empty = metrics_json(&ObsReport::default());
        assert_eq!(validate(&empty), Ok(()), "{empty}");
    }

    #[test]
    fn sidecar_and_live_paths_render_identically() {
        // The one-code-path guarantee: a report routed through
        // Snapshot::from_report must render byte-identically to the
        // snapshot-direct renderers.
        let r = report_with_checks();
        let snap = Snapshot::from_report(&r);
        assert_eq!(metrics_json(&r), snapshot_json(&snap));
        assert_eq!(render_metrics(&r), render_snapshot(&snap));
    }
}
