//! End-of-run metrics summary: per-stage wall-time histograms, counter
//! table and pool utilization, rendered as an aligned text block (for
//! stderr) and as machine-readable JSON (written next to the report).

use crate::hist::Histogram;
use crate::json::escape;
use crate::ObsReport;

/// Stage-duration rollup used by both renderers.
struct StageRow<'a> {
    name: &'a str,
    hist: &'a Histogram,
}

fn stage_rows(report: &ObsReport) -> Vec<StageRow<'_>> {
    report
        .hists
        .iter()
        .map(|(name, hist)| StageRow { name, hist })
        .collect()
}

/// Lanes that carried at least one span, with their busy time — the sum
/// of *top-level* stage spans would double-count nested stages, so busy
/// time is taken from the longest-duration span tree approximation: the
/// union is approximated by the `check` stage when present (every nested
/// stage runs inside a check), falling back to all spans on the lane.
fn lane_busy_ns(report: &ObsReport) -> Vec<(u32, u64)> {
    let has_check = report.events.iter().any(|e| e.name == "check");
    let mut busy: Vec<(u32, u64)> = Vec::new();
    for ev in &report.events {
        if has_check && ev.name != "check" {
            continue;
        }
        match busy.iter_mut().find(|(lane, _)| *lane == ev.lane) {
            Some((_, ns)) => *ns += ev.dur_ns,
            None => busy.push((ev.lane, ev.dur_ns)),
        }
    }
    busy.sort_unstable_by_key(|&(lane, _)| lane);
    busy
}

/// Fraction of (busy lanes × session wall time) actually spent in spans —
/// 1.0 means every lane that did any work was busy the whole session.
pub fn utilization(report: &ObsReport) -> f64 {
    let busy = lane_busy_ns(report);
    if busy.is_empty() {
        return 0.0;
    }
    let wall = report.wall_ns().max(1);
    let total: u64 = busy.iter().map(|&(_, ns)| ns).sum();
    (total as f64 / (busy.len() as u64 * wall) as f64).min(1.0)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the aligned text summary (the `--metrics` stderr block).
pub fn render_metrics(report: &ObsReport) -> String {
    let mut out = String::from("== vgen-obs metrics ==\n");
    out.push_str(&format!(
        "session wall time: {} ms\n",
        fmt_ms(report.wall_ns())
    ));
    let rows = stage_rows(report);
    if !rows.is_empty() {
        out.push_str(&format!(
            "{:<18} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "stage (ms)", "count", "total", "mean", "p50", "p90", "p99"
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<18} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                r.name,
                r.hist.count,
                fmt_ms(r.hist.sum),
                fmt_ms(r.hist.mean()),
                fmt_ms(r.hist.quantile(0.5)),
                fmt_ms(r.hist.quantile(0.9)),
                fmt_ms(r.hist.quantile(0.99)),
            ));
        }
    }
    if !report.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, n) in &report.counters {
            out.push_str(&format!("  {name:<24} {n}\n"));
        }
    }
    if !report.maxima.is_empty() {
        out.push_str("maxima:\n");
        for (name, v) in &report.maxima {
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
    }
    let busy = lane_busy_ns(report);
    if !busy.is_empty() {
        out.push_str(&format!(
            "pool utilization:  {:.1}% across {} busy lane(s)\n",
            utilization(report) * 100.0,
            busy.len()
        ));
    }
    if report.dropped_events > 0 {
        out.push_str(&format!(
            "dropped trace events: {} (histograms/counters unaffected)\n",
            report.dropped_events
        ));
    }
    out
}

/// Renders the machine-readable metrics JSON document.
pub fn metrics_json(report: &ObsReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"wall_ns\": {},\n", report.wall_ns()));
    out.push_str(&format!(
        "  \"dropped_trace_events\": {},\n",
        report.dropped_events
    ));
    out.push_str(&format!("  \"utilization\": {:.4},\n", utilization(report)));
    out.push_str("  \"stages\": {\n");
    let rows = stage_rows(report);
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{}\n",
            escape(r.name),
            r.hist.count,
            r.hist.sum,
            r.hist.mean(),
            if r.hist.is_empty() { 0 } else { r.hist.min },
            r.hist.max,
            r.hist.quantile(0.5),
            r.hist.quantile(0.9),
            r.hist.quantile(0.99),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"counters\": {\n");
    for (i, (name, n)) in report.counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {n}{}\n",
            escape(name),
            if i + 1 < report.counters.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  },\n  \"maxima\": {\n");
    for (i, (name, v)) in report.maxima.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {v}{}\n",
            escape(name),
            if i + 1 < report.maxima.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::SpanEvent;
    use std::collections::BTreeMap;

    fn report_with_checks() -> ObsReport {
        let mut hists = BTreeMap::new();
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            h.record(v);
        }
        hists.insert("check", h);
        ObsReport {
            events: vec![
                SpanEvent {
                    name: "check",
                    lane: 1,
                    start_ns: 0,
                    dur_ns: 5_000,
                },
                SpanEvent {
                    name: "parse",
                    lane: 1,
                    start_ns: 100,
                    dur_ns: 1_000,
                },
                SpanEvent {
                    name: "check",
                    lane: 2,
                    start_ns: 0,
                    dur_ns: 10_000,
                },
            ],
            dropped_events: 2,
            counters: BTreeMap::from([("dedup.hit", 7u64)]),
            maxima: BTreeMap::from([("sim.queue_depth", 9u64)]),
            hists,
            lanes: vec!["main".into(), "vgen-pool-0".into(), "vgen-pool-1".into()],
            session_start_ns: 0,
            session_end_ns: 10_000,
        }
    }

    #[test]
    fn utilization_counts_check_spans_per_busy_lane() {
        let r = report_with_checks();
        // Two busy lanes over a 10µs wall: (5000 + 10000) / (2 × 10000).
        assert!((utilization(&r) - 0.75).abs() < 1e-9, "{}", utilization(&r));
    }

    #[test]
    fn utilization_of_empty_report_is_zero() {
        assert_eq!(utilization(&ObsReport::default()), 0.0);
    }

    #[test]
    fn text_summary_mentions_stages_counters_and_drops() {
        let s = render_metrics(&report_with_checks());
        assert!(s.contains("check"), "{s}");
        assert!(s.contains("dedup.hit"), "{s}");
        assert!(s.contains("sim.queue_depth"), "{s}");
        assert!(s.contains("pool utilization"), "{s}");
        assert!(s.contains("dropped trace events: 2"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let json = metrics_json(&report_with_checks());
        assert_eq!(validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"dedup.hit\": 7"));
        let empty = metrics_json(&ObsReport::default());
        assert_eq!(validate(&empty), Ok(()), "{empty}");
    }
}
