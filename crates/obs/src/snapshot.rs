//! Live, epoch-stamped aggregate snapshots.
//!
//! A [`Snapshot`] is the *aggregate* state of a recording session at one
//! instant: counters, maxima, per-stage histograms and per-lane busy time
//! — everything except the span event buffer, so taking one is cheap and
//! independent of session length. Snapshots are produced by
//! [`crate::snapshot`] (live, mid-session) or [`Snapshot::from_report`]
//! (end of run), and both the `<journal>.metrics.json` sidecar and the
//! daemon's `metrics`/`subscribe` endpoints render from this one type.
//!
//! Because every aggregate grows monotonically within a session,
//! [`Snapshot::delta`] of two snapshots taken an interval apart yields the
//! activity *in that interval* — rates (checks/s, sim steps/s) fall out by
//! dividing by [`Snapshot::wall_ns`]. [`Snapshot::merge`] is the inverse
//! direction: combining disjoint snapshots (e.g. per-shard) into one.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::{LaneBusy, ObsReport};

/// Aggregate state of a recording session at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone per-session snapshot id (1 for the first snapshot after
    /// [`crate::enable`]); 0 only for synthetic snapshots.
    pub epoch: u64,
    /// Monotonic-clock nanoseconds when the session started.
    pub start_ns: u64,
    /// Monotonic-clock nanoseconds when the snapshot was taken.
    pub at_ns: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// High-water marks by name.
    pub maxima: BTreeMap<&'static str, u64>,
    /// Span-duration histograms by stage name (nanoseconds).
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Busy-time totals by lane id.
    pub lane_busy: BTreeMap<u32, LaneBusy>,
    /// Lane names, indexed by lane id.
    pub lanes: Vec<String>,
    /// Trace span events dropped so far (aggregates are never dropped).
    pub dropped_events: u64,
}

impl Snapshot {
    /// Builds the end-of-run snapshot from a collected [`ObsReport`], so
    /// the final metrics sidecar renders through the same path as the
    /// live endpoint.
    pub fn from_report(report: &ObsReport) -> Snapshot {
        Snapshot {
            epoch: crate::epoch(),
            start_ns: report.session_start_ns,
            at_ns: report.session_end_ns,
            counters: report.counters.clone(),
            maxima: report.maxima.clone(),
            hists: report.hists.clone(),
            lane_busy: report.lane_busy.clone(),
            lanes: report.lanes.clone(),
            dropped_events: report.dropped_events,
        }
    }

    /// Wall time this snapshot covers, in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.at_ns.saturating_sub(self.start_ns)
    }

    /// Activity between `earlier` and `self` (two snapshots of the same
    /// session, `earlier` first): counters, histograms, busy time and the
    /// dropped-count subtract (saturating); maxima keep the newer value
    /// (a high-water mark has no meaningful difference); lane names come
    /// from the newer snapshot. The delta's time window is
    /// `[earlier.at_ns, self.at_ns]`, so [`Snapshot::wall_ns`] on the
    /// result is the interval length — divide counter deltas by it for
    /// rates.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut counters = BTreeMap::new();
        for (&name, &n) in &self.counters {
            let d = n.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                counters.insert(name, d);
            }
        }
        let mut hists = BTreeMap::new();
        for (&name, h) in &self.hists {
            let d = match earlier.hists.get(name) {
                Some(e) => h.diff(e),
                None => h.clone(),
            };
            if !d.is_empty() {
                hists.insert(name, d);
            }
        }
        let mut lane_busy = BTreeMap::new();
        for (&lane, &busy) in &self.lane_busy {
            let e = earlier.lane_busy.get(&lane).copied().unwrap_or_default();
            let d = LaneBusy {
                busy_ns: busy.busy_ns.saturating_sub(e.busy_ns),
                check_ns: busy.check_ns.saturating_sub(e.check_ns),
            };
            if d.busy_ns > 0 {
                lane_busy.insert(lane, d);
            }
        }
        Snapshot {
            epoch: self.epoch,
            start_ns: earlier.at_ns,
            at_ns: self.at_ns,
            counters,
            maxima: self.maxima.clone(),
            hists,
            lane_busy,
            lanes: self.lanes.clone(),
            dropped_events: self.dropped_events.saturating_sub(earlier.dropped_events),
        }
    }

    /// Merges `other` into `self`: counters, histograms, busy time and
    /// dropped-counts add; maxima take the max; the time window becomes
    /// the union; the epoch takes the max; lane names extend (longer
    /// list wins per index when both name a lane).
    pub fn merge(&mut self, other: &Snapshot) {
        self.epoch = self.epoch.max(other.epoch);
        self.start_ns = self.start_ns.min(other.start_ns);
        self.at_ns = self.at_ns.max(other.at_ns);
        for (&name, &n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (&name, &v) in &other.maxima {
            let slot = self.maxima.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (&name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
        for (&lane, &busy) in &other.lane_busy {
            let slot = self.lane_busy.entry(lane).or_default();
            slot.busy_ns += busy.busy_ns;
            slot.check_ns += busy.check_ns;
        }
        for (i, name) in other.lanes.iter().enumerate() {
            if i >= self.lanes.len() {
                self.lanes.push(name.clone());
            } else if self.lanes[i].is_empty() {
                self.lanes[i] = name.clone();
            }
        }
        self.dropped_events += other.dropped_events;
    }

    /// Lanes that carried work, with the busy time used for utilization:
    /// `check` time when any lane ran checks (nested stage spans run
    /// inside a check and would double-count), all-span time otherwise.
    pub fn busy_lanes(&self) -> Vec<(u32, u64)> {
        let has_check = self.lane_busy.values().any(|b| b.check_ns > 0);
        self.lane_busy
            .iter()
            .filter_map(|(&lane, b)| {
                let ns = if has_check { b.check_ns } else { b.busy_ns };
                (ns > 0).then_some((lane, ns))
            })
            .collect()
    }

    /// Fraction of (busy lanes × window wall time) actually spent in
    /// spans — 1.0 means every lane that did any work was busy the whole
    /// window.
    pub fn utilization(&self) -> f64 {
        let busy = self.busy_lanes();
        if busy.is_empty() {
            return 0.0;
        }
        let wall = self.wall_ns().max(1);
        let total: u64 = busy.iter().map(|&(_, ns)| ns).sum();
        (total as f64 / (busy.len() as u64 * wall) as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, counts: &[(&'static str, u64)]) -> Snapshot {
        Snapshot {
            epoch,
            counters: counts.iter().copied().collect(),
            ..Snapshot::default()
        }
    }

    #[test]
    fn delta_subtracts_counters_and_drops_zeros() {
        let a = snap(1, &[("x", 3), ("y", 5)]);
        let b = snap(2, &[("x", 3), ("y", 9), ("z", 1)]);
        let d = b.delta(&a);
        assert_eq!(d.epoch, 2);
        assert!(!d.counters.contains_key("x"), "unchanged counter omitted");
        assert_eq!(d.counters["y"], 4);
        assert_eq!(d.counters["z"], 1);
    }

    #[test]
    fn delta_window_is_the_interval() {
        let mut a = snap(1, &[]);
        a.start_ns = 100;
        a.at_ns = 200;
        let mut b = snap(2, &[]);
        b.start_ns = 100;
        b.at_ns = 450;
        assert_eq!(b.delta(&a).wall_ns(), 250);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = snap(1, &[("x", 3)]);
        a.maxima.insert("depth", 4);
        let mut h = Histogram::new();
        h.record(10);
        a.hists.insert("parse", h.clone());
        a.lane_busy.insert(
            0,
            LaneBusy {
                busy_ns: 5,
                check_ns: 0,
            },
        );
        let mut b = snap(3, &[("x", 2), ("y", 1)]);
        b.maxima.insert("depth", 9);
        b.hists.insert("parse", h);
        b.lane_busy.insert(
            1,
            LaneBusy {
                busy_ns: 7,
                check_ns: 7,
            },
        );
        a.merge(&b);
        assert_eq!(a.epoch, 3);
        assert_eq!(a.counters["x"], 5);
        assert_eq!(a.counters["y"], 1);
        assert_eq!(a.maxima["depth"], 9);
        assert_eq!(a.hists["parse"].count, 2);
        assert_eq!(a.lane_busy[&0].busy_ns, 5);
        assert_eq!(a.lane_busy[&1].check_ns, 7);
    }

    #[test]
    fn utilization_prefers_check_time() {
        let mut s = snap(1, &[]);
        s.start_ns = 0;
        s.at_ns = 10_000;
        s.lane_busy.insert(
            1,
            LaneBusy {
                busy_ns: 6_000,
                check_ns: 5_000,
            },
        );
        s.lane_busy.insert(
            2,
            LaneBusy {
                busy_ns: 10_000,
                check_ns: 10_000,
            },
        );
        // Lane 0 did non-check work only: excluded once checks exist.
        s.lane_busy.insert(
            0,
            LaneBusy {
                busy_ns: 1_000,
                check_ns: 0,
            },
        );
        assert!((s.utilization() - 0.75).abs() < 1e-9, "{}", s.utilization());
    }
}
