//! Property tests for the snapshot algebra: `delta` must recover exactly
//! what happened between two snapshots of one session, and `merge` must
//! combine disjoint snapshots without losing or double-counting anything.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vgen_obs::hist::Histogram;
use vgen_obs::{LaneBusy, Snapshot};

/// Counter names are `&'static str` throughout the crate, so random
/// counters draw from a fixed pool.
const NAMES: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn counters_of(picks: &[(usize, u64)]) -> BTreeMap<&'static str, u64> {
    let mut m = BTreeMap::new();
    for &(i, n) in picks {
        *m.entry(NAMES[i % NAMES.len()]).or_insert(0) += n;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counters grow monotonically within a session, so the delta of a
    /// later snapshot against an earlier one recovers exactly the
    /// increments — and never reports a zero or phantom counter.
    #[test]
    fn delta_recovers_counter_increments(
        base in proptest::collection::vec((0usize..6, 0u64..100), 0..12),
        inc in proptest::collection::vec((0usize..6, 0u64..100), 0..12),
    ) {
        let earlier = Snapshot {
            epoch: 1,
            counters: counters_of(&base),
            ..Snapshot::default()
        };
        let mut later = earlier.clone();
        later.epoch = 2;
        let increments = counters_of(&inc);
        for (&name, &n) in &increments {
            *later.counters.entry(name).or_insert(0) += n;
        }
        let d = later.delta(&earlier);
        for (&name, &n) in &d.counters {
            prop_assert!(n > 0, "zero-valued counter {name} survived the delta");
            prop_assert_eq!(Some(&n), increments.get(name));
        }
        for (&name, &n) in &increments {
            if n > 0 {
                prop_assert_eq!(Some(&n), d.counters.get(name));
            }
        }
    }

    /// Histogram diff/merge are bucket-wise inverses: the diff of
    /// `hist(A ∪ B)` against `hist(A)` holds exactly `B`, and merging it
    /// back onto `hist(A)` reproduces `hist(A ∪ B)` bucket for bucket.
    #[test]
    fn histogram_diff_and_merge_are_bucketwise_inverses(
        a in proptest::collection::vec(0u64..1_000_000, 0..24),
        b in proptest::collection::vec(0u64..1_000_000, 0..24),
    ) {
        let ha = hist_of(&a);
        let mut hall = ha.clone();
        for &v in &b {
            hall.record(v);
        }
        let d = hall.diff(&ha);
        prop_assert_eq!(d.count, b.len() as u64);
        prop_assert_eq!(d.sum, b.iter().sum::<u64>());
        let mut rebuilt = ha.clone();
        rebuilt.merge(&d);
        prop_assert_eq!(rebuilt.count, hall.count);
        prop_assert_eq!(rebuilt.sum, hall.sum);
        prop_assert_eq!(rebuilt.nonzero_buckets(), hall.nonzero_buckets());
    }

    /// Merging snapshots whose lanes are disjoint (the per-shard case)
    /// keeps every lane's busy time intact: the union of keys, no
    /// cross-lane bleed, totals preserved.
    #[test]
    fn merge_keeps_disjoint_lanes_disjoint(
        left in proptest::collection::vec((0u32..8, 1u64..1_000, 0u64..1_000), 0..8),
        right in proptest::collection::vec((8u32..16, 1u64..1_000, 0u64..1_000), 0..8),
    ) {
        let lanes_of = |rows: &[(u32, u64, u64)]| {
            let mut m: BTreeMap<u32, LaneBusy> = BTreeMap::new();
            for &(lane, busy, check) in rows {
                let slot = m.entry(lane).or_default();
                slot.busy_ns += busy;
                slot.check_ns += check.min(busy);
            }
            m
        };
        let la = lanes_of(&left);
        let lb = lanes_of(&right);
        let mut merged = Snapshot { lane_busy: la.clone(), ..Snapshot::default() };
        merged.merge(&Snapshot { lane_busy: lb.clone(), ..Snapshot::default() });
        prop_assert_eq!(merged.lane_busy.len(), la.len() + lb.len());
        for (lane, busy) in la.iter().chain(lb.iter()) {
            let got = &merged.lane_busy[lane];
            prop_assert_eq!(got.busy_ns, busy.busy_ns);
            prop_assert_eq!(got.check_ns, busy.check_ns);
        }
    }

    /// Round trip: merging a delta back onto its base reproduces the
    /// later snapshot's aggregates (counters, histogram counts/sums,
    /// busy time, dropped events).
    #[test]
    fn merging_a_delta_onto_its_base_restores_the_later_snapshot(
        base in proptest::collection::vec((0usize..6, 0u64..100), 0..10),
        inc in proptest::collection::vec((0usize..6, 1u64..100), 0..10),
        hist_a in proptest::collection::vec(0u64..100_000, 0..12),
        hist_b in proptest::collection::vec(0u64..100_000, 0..12),
        drop_a in 0u64..5,
        drop_b in 0u64..5,
    ) {
        let earlier = Snapshot {
            epoch: 1,
            at_ns: 1_000,
            counters: counters_of(&base),
            hists: BTreeMap::from([("stage", hist_of(&hist_a))]),
            dropped_events: drop_a,
            ..Snapshot::default()
        };
        let mut later = earlier.clone();
        later.epoch = 2;
        later.at_ns = 2_000;
        for &(i, n) in &inc {
            *later.counters.entry(NAMES[i % NAMES.len()]).or_insert(0) += n;
        }
        for &v in &hist_b {
            later.hists.get_mut("stage").unwrap().record(v);
        }
        later.dropped_events += drop_b;

        let mut rebuilt = earlier.clone();
        rebuilt.merge(&later.delta(&earlier));
        prop_assert_eq!(&rebuilt.counters, &later.counters);
        prop_assert_eq!(rebuilt.hists["stage"].count, later.hists["stage"].count);
        prop_assert_eq!(rebuilt.hists["stage"].sum, later.hists["stage"].sum);
        prop_assert_eq!(rebuilt.dropped_events, later.dropped_events);
        prop_assert_eq!(rebuilt.at_ns, later.at_ns);
    }
}
