//! # vgen-verilog
//!
//! Front-end for the Verilog-2005 subset used by the VGen benchmark
//! reproduction: lexer, parser, AST, four-state value domain, pretty-printer
//! and the completion-truncation rule from the paper's evaluation setup.
//!
//! This crate stands in for the parsing half of Icarus Verilog in the
//! original paper's pipeline: a completion "compiles" iff [`parse`] accepts
//! it (see `vgen-sim` for elaboration checks and simulation).
//!
//! ## Quick example
//!
//! ```
//! use vgen_verilog::{parse, pretty::pretty_file};
//!
//! let src = "module half_adder(input a, b, output sum, carry);
//!            assign sum = a ^ b;
//!            assign carry = a & b;
//!            endmodule";
//! let file = parse(src)?;
//! assert_eq!(file.modules[0].name, "half_adder");
//! println!("{}", pretty_file(&file));
//! # Ok::<(), vgen_verilog::error::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod number;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod truncate;
pub mod value;

pub use ast::{Module, SourceFile};
pub use error::ParseError;
pub use parser::{parse, parse_with_cancel, syntax_check};
pub use span::Span;
pub use value::{Logic, LogicVec, ZeroWidthError};
