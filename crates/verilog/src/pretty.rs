//! Pretty-printer: AST back to Verilog source.
//!
//! Used by the mutation engine (mutate the AST, re-emit source) and by
//! round-trip tests. Output is canonical rather than faithful: numbers are
//! re-emitted as sized binary literals and spacing is normalised, but
//! `parse(pretty(parse(s)))` produces the same tree as `parse(s)` modulo
//! spans (verified by property tests).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a full source file.
pub fn pretty_file(file: &SourceFile) -> String {
    let mut out = String::new();
    for m in &file.modules {
        out.push_str(&pretty_module(m));
        out.push('\n');
    }
    out
}

/// Renders one module.
pub fn pretty_module(m: &Module) -> String {
    let mut p = Printer::new();
    p.module(m);
    p.out
}

/// Renders a single expression (used in diagnostics and mutation reports).
pub fn pretty_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e);
    p.out
}

/// Renders a single statement at indent level 0.
pub fn pretty_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent = self.indent.saturating_sub(1);
        self.line(text);
    }

    fn module(&mut self, m: &Module) {
        let ports = m.ports.join(", ");
        if ports.is_empty() {
            self.open(&format!("module {};", m.name));
        } else {
            self.open(&format!("module {}({});", m.name, ports));
        }
        // ANSI header decls were merged into items; emit everything as body
        // declarations (valid non-ANSI style).
        for item in &m.items {
            self.item(item);
        }
        self.close("endmodule");
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Decl(d) => self.line(&decl_to_string(d)),
            Item::Param(p) => {
                let kw = if p.local { "localparam" } else { "parameter" };
                let mut s = kw.to_string();
                if p.signed {
                    s.push_str(" signed");
                }
                if let Some(r) = &p.range {
                    s.push_str(&format!(" [{}:{}]", expr_str(&r.msb), expr_str(&r.lsb)));
                }
                let assigns: Vec<String> = p
                    .assigns
                    .iter()
                    .map(|(n, v)| format!("{n} = {}", expr_str(v)))
                    .collect();
                s.push(' ');
                s.push_str(&assigns.join(", "));
                s.push(';');
                self.line(&s);
            }
            Item::Assign(a) => {
                let mut s = "assign ".to_string();
                if let Some(d) = &a.delay {
                    let _ = write!(s, "#{} ", expr_str(d));
                }
                let parts: Vec<String> = a
                    .assigns
                    .iter()
                    .map(|(l, r)| format!("{} = {}", expr_str(l), expr_str(r)))
                    .collect();
                s.push_str(&parts.join(", "));
                s.push(';');
                self.line(&s);
            }
            Item::Always(a) => {
                self.line("always");
                self.indent += 1;
                self.stmt(&a.body);
                self.indent -= 1;
            }
            Item::Initial(i) => {
                self.line("initial");
                self.indent += 1;
                self.stmt(&i.body);
                self.indent -= 1;
            }
            Item::Instance(inst) => {
                let mut s = inst.module.clone();
                if !inst.params.is_empty() {
                    let _ = write!(s, " #({})", conns_str(&inst.params));
                }
                let _ = write!(s, " {}({});", inst.name, conns_str(&inst.conns));
                self.line(&s);
            }
            Item::Gate(g) => {
                let kw = match g.kind {
                    GateKind::And => "and",
                    GateKind::Or => "or",
                    GateKind::Not => "not",
                    GateKind::Nand => "nand",
                    GateKind::Nor => "nor",
                    GateKind::Xor => "xor",
                    GateKind::Xnor => "xnor",
                    GateKind::Buf => "buf",
                };
                let args: Vec<String> = g.conns.iter().map(expr_str).collect();
                let name = g.name.as_deref().unwrap_or("");
                let sep = if name.is_empty() { "" } else { " " };
                self.line(&format!("{kw}{sep}{name}({});", args.join(", ")));
            }
            Item::Defparam { path, value, .. } => {
                self.line(&format!("defparam {path} = {};", expr_str(value)));
            }
            Item::Function(f) => {
                let mut header = "function ".to_string();
                if f.signed {
                    header.push_str("signed ");
                }
                if let Some(r) = &f.range {
                    let _ = write!(header, "[{}:{}] ", expr_str(&r.msb), expr_str(&r.lsb));
                }
                header.push_str(&f.name);
                header.push(';');
                self.open(&header);
                for d in &f.decls {
                    self.line(&decl_to_string(d));
                }
                self.stmt(&f.body);
                self.close("endfunction");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block { name, decls, stmts } => {
                match name {
                    Some(n) => self.open(&format!("begin : {n}")),
                    None => self.open("begin"),
                }
                for d in decls {
                    self.line(&decl_to_string(d));
                }
                for st in stmts {
                    self.stmt(st);
                }
                self.close("end");
            }
            StmtKind::Assign {
                lhs,
                op,
                delay,
                rhs,
            } => {
                let op_s = match op {
                    AssignOp::Blocking => "=",
                    AssignOp::NonBlocking => "<=",
                };
                let d = delay
                    .as_ref()
                    .map(|d| format!("#{} ", expr_str(d)))
                    .unwrap_or_default();
                self.line(&format!("{} {op_s} {d}{};", expr_str(lhs), expr_str(rhs)));
            }
            StmtKind::If { cond, then, els } => {
                self.line(&format!("if ({})", expr_str(cond)));
                self.indent += 1;
                self.stmt(then);
                self.indent -= 1;
                if let Some(e) = els {
                    self.line("else");
                    self.indent += 1;
                    self.stmt(e);
                    self.indent -= 1;
                }
            }
            StmtKind::Case { kind, expr, arms } => {
                let kw = match kind {
                    CaseKind::Exact => "case",
                    CaseKind::Z => "casez",
                    CaseKind::X => "casex",
                };
                self.open(&format!("{kw} ({})", expr_str(expr)));
                for arm in arms {
                    if arm.labels.is_empty() {
                        self.line("default:");
                    } else {
                        let labels: Vec<String> = arm.labels.iter().map(expr_str).collect();
                        self.line(&format!("{}:", labels.join(", ")));
                    }
                    self.indent += 1;
                    self.stmt(&arm.body);
                    self.indent -= 1;
                }
                self.close("endcase");
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.line(&format!(
                    "for ({} = {}; {}; {} = {})",
                    expr_str(&init.0),
                    expr_str(&init.1),
                    expr_str(cond),
                    expr_str(&step.0),
                    expr_str(&step.1)
                ));
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            StmtKind::While { cond, body } => {
                self.line(&format!("while ({})", expr_str(cond)));
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            StmtKind::Repeat { count, body } => {
                self.line(&format!("repeat ({})", expr_str(count)));
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            StmtKind::Forever { body } => {
                self.line("forever");
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            StmtKind::Delay { amount, stmt } => match stmt {
                Some(st) => {
                    self.line(&format!("#{}", expr_str(amount)));
                    self.indent += 1;
                    self.stmt(st);
                    self.indent -= 1;
                }
                None => self.line(&format!("#{};", expr_str(amount))),
            },
            StmtKind::Event { control, stmt } => {
                let ctl = match control {
                    EventControl::Star => "@(*)".to_string(),
                    EventControl::List(terms) => {
                        let parts: Vec<String> = terms
                            .iter()
                            .map(|t| {
                                let edge = match t.edge {
                                    Some(Edge::Pos) => "posedge ",
                                    Some(Edge::Neg) => "negedge ",
                                    None => "",
                                };
                                format!("{edge}{}", expr_str(&t.expr))
                            })
                            .collect();
                        format!("@({})", parts.join(" or "))
                    }
                };
                match stmt {
                    Some(st) => {
                        self.line(&ctl);
                        self.indent += 1;
                        self.stmt(st);
                        self.indent -= 1;
                    }
                    None => self.line(&format!("{ctl};")),
                }
            }
            StmtKind::Wait { cond, stmt } => match stmt {
                Some(st) => {
                    self.line(&format!("wait ({})", expr_str(cond)));
                    self.indent += 1;
                    self.stmt(st);
                    self.indent -= 1;
                }
                None => self.line(&format!("wait ({});", expr_str(cond))),
            },
            StmtKind::SysCall { name, args } => {
                if args.is_empty() {
                    self.line(&format!("${name};"));
                } else {
                    let a: Vec<String> = args.iter().map(expr_str).collect();
                    self.line(&format!("${name}({});", a.join(", ")));
                }
            }
            StmtKind::TaskCall { name, args } => {
                if args.is_empty() {
                    self.line(&format!("{name};"));
                } else {
                    let a: Vec<String> = args.iter().map(expr_str).collect();
                    self.line(&format!("{name}({});", a.join(", ")));
                }
            }
            StmtKind::Disable(n) => self.line(&format!("disable {n};")),
            StmtKind::Null => self.line(";"),
        }
    }

    fn expr(&mut self, e: &Expr) {
        let s = expr_str(e);
        self.out.push_str(&s);
    }
}

fn decl_to_string(d: &Decl) -> String {
    let mut s = String::new();
    if let Some(dir) = d.dir {
        s.push_str(match dir {
            PortDir::Input => "input ",
            PortDir::Output => "output ",
            PortDir::Inout => "inout ",
        });
    }
    if let Some(kind) = d.kind {
        s.push_str(match kind {
            NetKind::Wire => "wire ",
            NetKind::Reg => "reg ",
            NetKind::Integer => "integer ",
            NetKind::Time => "time ",
            NetKind::Real => "real ",
            NetKind::Supply0 => "supply0 ",
            NetKind::Supply1 => "supply1 ",
        });
    } else if d.dir.is_none() {
        s.push_str("wire ");
    }
    if d.signed {
        s.push_str("signed ");
    }
    if let Some(r) = &d.range {
        let _ = write!(s, "[{}:{}] ", expr_str(&r.msb), expr_str(&r.lsb));
    }
    let names: Vec<String> = d
        .names
        .iter()
        .map(|n| {
            let mut t = n.name.clone();
            for dim in &n.dims {
                let _ = write!(t, " [{}:{}]", expr_str(&dim.msb), expr_str(&dim.lsb));
            }
            if let Some(init) = &n.init {
                let _ = write!(t, " = {}", expr_str(init));
            }
            t
        })
        .collect();
    s.push_str(&names.join(", "));
    s.push(';');
    s
}

fn conns_str(conns: &[Connection]) -> String {
    let parts: Vec<String> = conns
        .iter()
        .map(|c| match c {
            Connection::Named(port, Some(e)) => format!(".{port}({})", expr_str(e)),
            Connection::Named(port, None) => format!(".{port}()"),
            Connection::Positional(e) => expr_str(e),
        })
        .collect();
    parts.join(", ")
}

fn unary_op_str(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Plus => "+",
        UnaryOp::Neg => "-",
        UnaryOp::LogicNot => "!",
        UnaryOp::BitNot => "~",
        UnaryOp::ReduceAnd => "&",
        UnaryOp::ReduceOr => "|",
        UnaryOp::ReduceXor => "^",
        UnaryOp::ReduceNand => "~&",
        UnaryOp::ReduceNor => "~|",
        UnaryOp::ReduceXnor => "~^",
    }
}

fn binary_op_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Rem => "%",
        BinaryOp::Pow => "**",
        BinaryOp::BitAnd => "&",
        BinaryOp::BitOr => "|",
        BinaryOp::BitXor => "^",
        BinaryOp::BitXnor => "~^",
        BinaryOp::LogicAnd => "&&",
        BinaryOp::LogicOr => "||",
        BinaryOp::Eq => "==",
        BinaryOp::Ne => "!=",
        BinaryOp::CaseEq => "===",
        BinaryOp::CaseNe => "!==",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
        BinaryOp::AShl => "<<<",
        BinaryOp::AShr => ">>>",
    }
}

/// Renders an expression with full parenthesisation of nested operations
/// (safe rather than minimal — re-parsing yields the same tree).
fn expr_str(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Number(v) => {
            let s = if v.is_signed() { "s" } else { "" };
            format!("{}'{s}b{}", v.width(), v.to_binary_string())
        }
        ExprKind::Real(t) => t.clone(),
        ExprKind::Str(s) => format!("\"{s}\""),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Unary { op, arg } => {
            format!("{}({})", unary_op_str(*op), expr_str(arg))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                expr_str(lhs),
                binary_op_str(*op),
                expr_str(rhs)
            )
        }
        ExprKind::Ternary { cond, then, els } => {
            format!(
                "({} ? {} : {})",
                expr_str(cond),
                expr_str(then),
                expr_str(els)
            )
        }
        ExprKind::Index { base, index } => {
            format!("{}[{}]", expr_str(base), expr_str(index))
        }
        ExprKind::PartSelect { base, msb, lsb } => {
            format!("{}[{}:{}]", expr_str(base), expr_str(msb), expr_str(lsb))
        }
        ExprKind::IndexedSelect {
            base,
            start,
            width,
            ascending,
        } => {
            let op = if *ascending { "+:" } else { "-:" };
            format!(
                "{}[{} {op} {}]",
                expr_str(base),
                expr_str(start),
                expr_str(width)
            )
        }
        ExprKind::Concat(items) => {
            let parts: Vec<String> = items.iter().map(expr_str).collect();
            format!("{{{}}}", parts.join(", "))
        }
        ExprKind::Replicate { count, items } => {
            let parts: Vec<String> = items.iter().map(expr_str).collect();
            format!("{{{}{{{}}}}}", expr_str(count), parts.join(", "))
        }
        ExprKind::SysCall { name, args } => {
            if args.is_empty() {
                format!("${name}")
            } else {
                let a: Vec<String> = args.iter().map(expr_str).collect();
                format!("${name}({})", a.join(", "))
            }
        }
        ExprKind::Call { name, args } => {
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("{name}({})", a.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let f1 = parse(src).expect("first parse");
        let printed = pretty_file(&f1);
        let f2 = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {}\n{printed}", e.render(&printed)));
        let printed2 = pretty_file(&f2);
        assert_eq!(printed, printed2, "pretty-printing must be idempotent");
    }

    #[test]
    fn round_trip_simple() {
        round_trip("module m(input a, output y); assign y = ~a; endmodule");
    }

    #[test]
    fn round_trip_counter() {
        round_trip(
            "module counter(input clk, input reset, output reg [3:0] q);\n\
             always @(posedge clk) begin\nif (reset) q <= 4'd1;\n\
             else if (q == 4'd12) q <= 4'd1;\nelse q <= q + 4'd1;\nend\nendmodule",
        );
    }

    #[test]
    fn round_trip_fsm() {
        round_trip(
            "module abro(input clk, input reset, input a, input b, output z);\n\
             parameter IDLE = 0, SA = 1, SB = 2, SAB = 3;\n\
             reg [1:0] cur_state, next_state;\n\
             always @(posedge clk or posedge reset) begin\n\
             if (reset) cur_state <= IDLE; else cur_state <= next_state; end\n\
             always @(cur_state or a or b) begin\ncase (cur_state)\n\
             IDLE: begin if (a && b) next_state = SAB; else if (a) next_state = SA;\n\
             else if (b) next_state = SB; end\n\
             SA: if (b) next_state = SAB; else next_state = SA;\n\
             default: next_state = IDLE;\nendcase end\n\
             assign z = (cur_state == SAB);\nendmodule",
        );
    }

    #[test]
    fn round_trip_testbench_constructs() {
        round_trip(
            "module tb;\nreg clk, reset;\nwire [3:0] q;\ninteger errors;\n\
             counter dut(.clk(clk), .reset(reset), .q(q));\n\
             always #5 clk = ~clk;\ninitial begin\nclk = 0; errors = 0;\n\
             reset = 1; #12 reset = 0;\nrepeat (20) @(posedge clk);\n\
             if (q !== 4'd9) begin errors = errors + 1; $display(\"bad\"); end\n\
             if (errors == 0) $display(\"ALL TESTS PASSED\");\n$finish;\nend\nendmodule",
        );
    }

    #[test]
    fn round_trip_expressions() {
        round_trip(
            "module e(input [7:0] a, b, output [15:0] y);\n\
             assign y = {a[7:2], {2{b[1:0]}}, ^a, a[3 +: 2]} + (a * b) - (a >>> 2);\nendmodule",
        );
    }

    #[test]
    fn round_trip_ram() {
        round_trip(
            "module ram(input clk, input we, input [5:0] addr, input [7:0] din, output reg [7:0] dout);\n\
             reg [7:0] mem [0:63];\nalways @(posedge clk) begin\n\
             if (we) mem[addr] <= din;\ndout <= mem[addr];\nend\nendmodule",
        );
    }

    #[test]
    fn pretty_expr_and_stmt_api() {
        let f =
            parse("module m(input a, output reg y); always @(a) y = !a; endmodule").expect("parse");
        let Item::Always(al) = &f.modules[0].items[2] else {
            panic!()
        };
        let s = pretty_stmt(&al.body);
        assert!(s.contains("@(a)"));
        assert!(s.contains("y = !(a);"));
    }

    #[test]
    fn numbers_canonicalise() {
        let f = parse("module m(output [3:0] y); assign y = 4'd12; endmodule").expect("p");
        let p = pretty_file(&f);
        assert!(p.contains("4'b1100"), "got: {p}");
    }
}
