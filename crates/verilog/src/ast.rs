//! Abstract syntax tree for the Verilog-2005 subset.
//!
//! The tree is deliberately close to the concrete syntax: ranges keep their
//! `msb:lsb` expressions unevaluated, numbers keep their parsed
//! [`LogicVec`] value, and every statement/expression
//! carries a [`Span`] so the simulator and mutation engine can point back at
//! source.

use crate::span::Span;
use crate::value::LogicVec;

/// A parsed source file: one or more module definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// A `module ... endmodule` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// The module identifier.
    pub name: String,
    /// Names in the header port list, in order. For ANSI-style headers the
    /// corresponding direction/type declarations also appear in `items`.
    pub ports: Vec<String>,
    /// Module body items (plus ANSI header declarations).
    pub items: Vec<Item>,
    /// Span of the whole definition.
    pub span: Span,
}

/// Direction of a port declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

/// The storage class of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// `wire` (also used for bare `input a`).
    Wire,
    /// `reg`
    Reg,
    /// `integer` — 32-bit signed variable.
    Integer,
    /// `time` — 64-bit unsigned variable.
    Time,
    /// `real` — parsed but unsupported by the simulator.
    Real,
    /// `supply0` — constant 0 net.
    Supply0,
    /// `supply1` — constant 1 net.
    Supply1,
}

/// A `[msb:lsb]` range, unevaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most-significant index expression.
    pub msb: Expr,
    /// Least-significant index expression.
    pub lsb: Expr,
}

/// One name in a declaration, e.g. `mem [0:63]` or `q = 1'b0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Declared identifier.
    pub name: String,
    /// Unpacked (array) dimensions, e.g. RAM word count.
    pub dims: Vec<Range>,
    /// Optional initialiser (`wire x = a & b;` / `reg r = 0;`).
    pub init: Option<Expr>,
    /// Span of the declarator.
    pub span: Span,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A net/variable/port declaration covering one or more names.
    Decl(Decl),
    /// `parameter`/`localparam` declaration.
    Param(ParamDecl),
    /// `assign lhs = rhs;` (possibly several comma-separated assigns).
    Assign(AssignItem),
    /// `always <stmt>`.
    Always(AlwaysItem),
    /// `initial <stmt>`.
    Initial(InitialItem),
    /// Module instantiation.
    Instance(Instance),
    /// Built-in gate primitive instantiation (`and g(y, a, b);`).
    Gate(GateInstance),
    /// `defparam path = value;` — parsed and ignored by elaboration.
    Defparam {
        /// Hierarchical parameter path.
        path: String,
        /// Override value.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// A `function ... endfunction` definition.
    Function(FunctionDecl),
}

/// A user function definition. Verilog functions are combinational: they
/// take at least one input, may declare locals, and return by assigning to
/// their own name.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (also the return variable).
    pub name: String,
    /// Whether the return value is signed.
    pub signed: bool,
    /// Return range, e.g. `[7:0]`; `None` for a 1-bit return.
    pub range: Option<Range>,
    /// Input and local declarations, in order.
    pub decls: Vec<Decl>,
    /// The body statement.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// A net/variable/port declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Port direction if this declaration is (part of) a port.
    pub dir: Option<PortDir>,
    /// Storage kind; `None` for a bare `input [3:0] a;` (defaults to wire).
    pub kind: Option<NetKind>,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Packed range, e.g. `[7:0]`.
    pub range: Option<Range>,
    /// The declared names.
    pub names: Vec<Declarator>,
    /// Source span of the declaration.
    pub span: Span,
}

/// A `parameter` or `localparam` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// `true` for `localparam`.
    pub local: bool,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional range.
    pub range: Option<Range>,
    /// `(name, default value)` pairs.
    pub assigns: Vec<(String, Expr)>,
    /// Source span.
    pub span: Span,
}

/// An `assign` item.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignItem {
    /// Optional `#delay`.
    pub delay: Option<Expr>,
    /// `(lvalue, rvalue)` pairs.
    pub assigns: Vec<(Expr, Expr)>,
    /// Source span.
    pub span: Span,
}

/// An `always` construct.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysItem {
    /// The process body (usually an event-controlled statement).
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// An `initial` construct.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialItem {
    /// The process body.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// A connection in an instantiation port/parameter list.
#[derive(Debug, Clone, PartialEq)]
pub enum Connection {
    /// `.port(expr)`; `expr` is `None` for an unconnected `.port()`.
    Named(String, Option<Expr>),
    /// Positional `expr`.
    Positional(Expr),
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module: String,
    /// Parameter overrides from `#(...)`.
    pub params: Vec<Connection>,
    /// Instance name.
    pub name: String,
    /// Port connections.
    pub conns: Vec<Connection>,
    /// Source span.
    pub span: Span,
}

/// The primitive gate types supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `nand`
    Nand,
    /// `nor`
    Nor,
    /// `xor`
    Xor,
    /// `xnor`
    Xnor,
    /// `buf`
    Buf,
}

/// A primitive gate instantiation: first connection is the output.
#[derive(Debug, Clone, PartialEq)]
pub struct GateInstance {
    /// Which gate.
    pub kind: GateKind,
    /// Optional instance name.
    pub name: Option<String>,
    /// Output followed by inputs.
    pub conns: Vec<Expr>,
    /// Source span.
    pub span: Span,
}

/// Kind of procedural assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Blocking,
    /// `<=`
    NonBlocking,
}

/// Edge qualifier in an event expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

/// One term of an event control list.
#[derive(Debug, Clone, PartialEq)]
pub struct EventExpr {
    /// Optional edge qualifier.
    pub edge: Option<Edge>,
    /// The watched expression.
    pub expr: Expr,
}

/// An `@(...)` event control.
#[derive(Debug, Clone, PartialEq)]
pub enum EventControl {
    /// `@*` or `@(*)` — implicit sensitivity to everything read.
    Star,
    /// `@(list)` with `or`/`,` separated terms.
    List(Vec<EventExpr>),
}

/// A case statement arm.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Match labels; empty means `default`.
    pub labels: Vec<Expr>,
    /// The arm body.
    pub body: Stmt,
}

/// Flavour of a case statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// `case` — exact 4-state match.
    Exact,
    /// `casez` — `z`/`?` are wildcards.
    Z,
    /// `casex` — `x`, `z` and `?` are wildcards.
    X,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement variant.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `begin [...] end`, optionally named, with local declarations.
    Block {
        /// Label after `begin : name`.
        name: Option<String>,
        /// Local `integer`/`reg` declarations.
        decls: Vec<Decl>,
        /// Statements in order.
        stmts: Vec<Stmt>,
    },
    /// Procedural assignment, optionally with intra-assignment delay.
    Assign {
        /// Target lvalue.
        lhs: Expr,
        /// Blocking or non-blocking.
        op: AssignOp,
        /// `#d` between the operator and the RHS (intra-assignment delay).
        delay: Option<Expr>,
        /// Source expression.
        rhs: Expr,
    },
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `case`/`casez`/`casex`.
    Case {
        /// Flavour.
        kind: CaseKind,
        /// Selector.
        expr: Expr,
        /// Arms in order (first match wins; default may appear anywhere).
        arms: Vec<CaseArm>,
    },
    /// `for (init; cond; step) body` — init/step are blocking assigns.
    For {
        /// Initialisation `(lhs, rhs)`.
        init: Box<(Expr, Expr)>,
        /// Loop condition.
        cond: Expr,
        /// Step `(lhs, rhs)`.
        step: Box<(Expr, Expr)>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `repeat (count) body`.
    Repeat {
        /// Iteration count expression.
        count: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `forever body`.
    Forever {
        /// Body.
        body: Box<Stmt>,
    },
    /// `#delay [stmt]`.
    Delay {
        /// Delay amount.
        amount: Expr,
        /// Statement executed after the delay, if any.
        stmt: Option<Box<Stmt>>,
    },
    /// `@(...) [stmt]` or `@* [stmt]`.
    Event {
        /// The event control.
        control: EventControl,
        /// Statement executed after the event, if any.
        stmt: Option<Box<Stmt>>,
    },
    /// `wait (cond) [stmt]`.
    Wait {
        /// Level-sensitive condition.
        cond: Expr,
        /// Statement executed once true.
        stmt: Option<Box<Stmt>>,
    },
    /// A system task call such as `$display("...", x)`.
    SysCall {
        /// Task name without the `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A user task call (parsed, rejected at elaboration).
    TaskCall {
        /// Task name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `disable name;`
    Disable(String),
    /// Bare `;`.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `+`
    Plus,
    /// `-`
    Neg,
    /// `!`
    LogicNot,
    /// `~`
    BitNot,
    /// `&`
    ReduceAnd,
    /// `|`
    ReduceOr,
    /// `^`
    ReduceXor,
    /// `~&`
    ReduceNand,
    /// `~|`
    ReduceNor,
    /// `~^` / `^~`
    ReduceXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `~^` / `^~`
    BitXnor,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `===`
    CaseEq,
    /// `!==`
    CaseNe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression variant.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Shorthand for a number literal expression used in tests/builders.
    pub fn number(value: LogicVec, span: Span) -> Self {
        Expr::new(ExprKind::Number(value), span)
    }

    /// Shorthand for an identifier expression.
    pub fn ident(name: impl Into<String>, span: Span) -> Self {
        Expr::new(ExprKind::Ident(name.into()), span)
    }
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A number literal, already parsed to a value.
    Number(LogicVec),
    /// A real literal kept as text (no real arithmetic in the subset).
    Real(String),
    /// A string literal (escapes unprocessed).
    Str(String),
    /// An identifier reference.
    Ident(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? then : els`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// Bit-select or array word select `base[index]`.
    Index {
        /// The indexed expression (identifier or nested index).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Constant part-select `base[msb:lsb]`.
    PartSelect {
        /// The selected expression.
        base: Box<Expr>,
        /// MSB expression (must be constant).
        msb: Box<Expr>,
        /// LSB expression (must be constant).
        lsb: Box<Expr>,
    },
    /// Indexed part-select `base[start +: width]` / `base[start -: width]`.
    IndexedSelect {
        /// The selected expression.
        base: Box<Expr>,
        /// Start index.
        start: Box<Expr>,
        /// Width (must be constant).
        width: Box<Expr>,
        /// `true` for `+:`.
        ascending: bool,
    },
    /// Concatenation `{a, b, ...}`.
    Concat(Vec<Expr>),
    /// Replication `{count{a, b, ...}}`.
    Replicate {
        /// Replication count (must be constant).
        count: Box<Expr>,
        /// Replicated items.
        items: Vec<Expr>,
    },
    /// System function call `$time`, `$random`, `$signed(x)`, ...
    SysCall {
        /// Function name without the `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// User function call (parsed, rejected at elaboration).
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_file_module_lookup() {
        let m = Module {
            name: "top".into(),
            ports: vec![],
            items: vec![],
            span: Span::default(),
        };
        let f = SourceFile { modules: vec![m] };
        assert!(f.module("top").is_some());
        assert!(f.module("nope").is_none());
    }

    #[test]
    fn expr_builders() {
        let e = Expr::ident("clk", Span::new(0, 3));
        assert_eq!(e.kind, ExprKind::Ident("clk".into()));
        let n = Expr::number(LogicVec::from_u64(3, 2), Span::default());
        assert!(matches!(n.kind, ExprKind::Number(_)));
    }
}
