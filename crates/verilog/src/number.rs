//! Parsing of Verilog number literals into [`LogicVec`] values.
//!
//! Handles plain decimals (`42`), sized/unsized based literals
//! (`4'b10xz`, `'hFF`, `8'shFF`), underscores, and the `?` digit (alias for
//! `z`). The lexer stores literal text verbatim; this module gives it a
//! value.

use crate::value::{Logic, LogicVec};

/// Error produced when a number literal is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumberError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseNumberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid number literal: {}", self.message)
    }
}

impl std::error::Error for ParseNumberError {}

fn err(msg: impl Into<String>) -> ParseNumberError {
    ParseNumberError {
        message: msg.into(),
    }
}

/// Default width for unsized literals, per IEEE 1364 (at least 32 bits).
pub const UNSIZED_WIDTH: usize = 32;

/// Parses a Verilog number literal such as `4'd12`, `3'b0?1`, `'hff` or `42`.
///
/// Unsized literals get [`UNSIZED_WIDTH`] bits. Decimal unsized literals are
/// signed (per the LRM); based literals are unsigned unless the base carries
/// the `s` flag (`8'sd200`).
///
/// # Errors
///
/// Returns [`ParseNumberError`] for empty/garbled text, digits invalid for
/// the base, zero sizes, or `x`/`z` digits in a decimal literal mixed with
/// other digits.
///
/// ```
/// use vgen_verilog::number::parse_number;
/// let v = parse_number("4'd12")?;
/// assert_eq!(v.to_u64(), Some(12));
/// assert_eq!(v.width(), 4);
/// # Ok::<(), vgen_verilog::number::ParseNumberError>(())
/// ```
pub fn parse_number(text: &str) -> Result<LogicVec, ParseNumberError> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    if clean.is_empty() {
        return Err(err("empty literal"));
    }
    let Some(tick) = clean.find('\'') else {
        // Plain decimal literal: signed 32-bit minimum.
        let v: i64 = clean
            .parse()
            .map_err(|_| err(format!("bad decimal `{clean}`")))?;
        return Ok(LogicVec::from_i64(v, UNSIZED_WIDTH).expect("unsized width is positive"));
    };

    let (size_part, rest) = clean.split_at(tick);
    let rest = &rest[1..]; // skip the tick
    let width = if size_part.is_empty() {
        UNSIZED_WIDTH
    } else {
        let w: usize = size_part
            .parse()
            .map_err(|_| err(format!("bad size `{size_part}`")))?;
        if w == 0 {
            return Err(err("zero width"));
        }
        w
    };

    let mut chars = rest.chars();
    let mut base_char = chars.next().ok_or_else(|| err("missing base"))?;
    let mut signed = false;
    if base_char == 's' || base_char == 'S' {
        signed = true;
        base_char = chars.next().ok_or_else(|| err("missing base after s"))?;
    }
    let digits: String = chars.collect();
    if digits.is_empty() {
        return Err(err("missing digits"));
    }

    let bits_per_digit = match base_char.to_ascii_lowercase() {
        'b' => 1,
        'o' => 3,
        'h' => 4,
        'd' => {
            return parse_decimal_based(&digits, width, signed);
        }
        other => return Err(err(format!("unknown base `{other}`"))),
    };

    // Based literal: collect bits LSB-first from the digits (rightmost digit
    // is least significant).
    let mut bits: Vec<Logic> = Vec::new();
    for c in digits.chars().rev() {
        if let Some(l) = Logic::from_char(c) {
            if bits_per_digit == 1 {
                bits.push(l);
                continue;
            }
            if l.is_unknown() {
                // x/z digit expands to a full digit of x/z.
                for _ in 0..bits_per_digit {
                    bits.push(l);
                }
                continue;
            }
        }
        let v = c
            .to_digit(1 << bits_per_digit)
            .ok_or_else(|| err(format!("digit `{c}` invalid for base")))?;
        for i in 0..bits_per_digit {
            bits.push(Logic::from_bool((v >> i) & 1 == 1));
        }
    }
    if bits.is_empty() {
        return Err(err("no digits"));
    }
    // Normalise to declared width: truncate or extend. IEEE: extension uses
    // 0 unless the MSB of the literal is x/z, in which case it extends.
    let lit = LogicVec::from_bits(bits, false).resize(width);
    Ok(lit.with_signed(signed))
}

fn parse_decimal_based(
    digits: &str,
    width: usize,
    signed: bool,
) -> Result<LogicVec, ParseNumberError> {
    // A decimal based literal may be a single x or z digit (e.g. 4'dx).
    if digits.len() == 1 {
        if let Some(l) = Logic::from_char(digits.chars().next().expect("one")) {
            if l.is_unknown() {
                return Ok(LogicVec::filled(width, l).with_signed(signed));
            }
        }
    }
    let v: u64 = digits
        .parse()
        .map_err(|_| err(format!("bad decimal digits `{digits}`")))?;
    Ok(LogicVec::from_u64(v, width).with_signed(signed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_decimal() {
        let v = parse_number("42").expect("parse");
        assert_eq!(v.to_u64(), Some(42));
        assert_eq!(v.width(), 32);
        assert!(v.is_signed());
    }

    #[test]
    fn sized_decimal() {
        let v = parse_number("4'd12").expect("parse");
        assert_eq!(v.to_u64(), Some(12));
        assert_eq!(v.width(), 4);
        assert!(!v.is_signed());
    }

    #[test]
    fn binary_with_unknowns() {
        let v = parse_number("4'b10xz").expect("parse");
        assert_eq!(v.bit(0), Logic::Z);
        assert_eq!(v.bit(1), Logic::X);
        assert_eq!(v.bit(2), Logic::Zero);
        assert_eq!(v.bit(3), Logic::One);
    }

    #[test]
    fn question_mark_is_z() {
        let v = parse_number("3'b1?0").expect("parse");
        assert_eq!(v.bit(1), Logic::Z);
    }

    #[test]
    fn hex_and_octal() {
        assert_eq!(parse_number("8'hFF").expect("parse").to_u64(), Some(255));
        assert_eq!(parse_number("8'hab").expect("parse").to_u64(), Some(0xAB));
        assert_eq!(parse_number("6'o17").expect("parse").to_u64(), Some(0o17));
    }

    #[test]
    fn hex_x_digit_expands_to_nibble() {
        let v = parse_number("8'h_Fx").expect("parse");
        assert_eq!(v.select(7, 4).to_u64(), Some(0xF));
        assert!(v.select(3, 0).has_unknown());
    }

    #[test]
    fn unsized_based() {
        let v = parse_number("'h10").expect("parse");
        assert_eq!(v.width(), 32);
        assert_eq!(v.to_u64(), Some(16));
    }

    #[test]
    fn signed_base_flag() {
        let v = parse_number("8'shFF").expect("parse");
        assert!(v.is_signed());
        assert_eq!(v.to_i64(), Some(-1));
    }

    #[test]
    fn underscores_ignored() {
        assert_eq!(
            parse_number("16'b1010_1010_1010_1010")
                .expect("parse")
                .to_u64(),
            Some(0xAAAA)
        );
        assert_eq!(parse_number("1_000").expect("parse").to_u64(), Some(1000));
    }

    #[test]
    fn truncation_to_declared_width() {
        // 4'hFF truncates to 4 bits.
        assert_eq!(parse_number("4'hFF").expect("parse").to_u64(), Some(0xF));
    }

    #[test]
    fn msb_x_extends() {
        let v = parse_number("8'bx1").expect("parse");
        assert_eq!(v.bit(0), Logic::One);
        assert!(v.bit(7).is_unknown());
    }

    #[test]
    fn decimal_x() {
        let v = parse_number("4'dx").expect("parse");
        assert!(v.bits().iter().all(|b| *b == Logic::X));
        let v = parse_number("4'dz").expect("parse");
        assert!(v.bits().iter().all(|b| *b == Logic::Z));
    }

    #[test]
    fn errors() {
        assert!(parse_number("").is_err());
        assert!(parse_number("4'").is_err());
        assert!(parse_number("0'd1").is_err());
        assert!(parse_number("4'q10").is_err());
        assert!(parse_number("4'b12").is_err());
        assert!(parse_number("4'd1x").is_err());
        assert!(parse_number("4's").is_err());
    }
}
