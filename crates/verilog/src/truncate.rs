//! Completion truncation, mirroring the paper's §IV evaluation setup:
//! "LLM-produced code completions ... are truncated at keywords `end` and
//! `endmodule`".
//!
//! LLMs keep generating after the module closes (a new module, prose, more
//! code), so the harness cuts the completion after the first `endmodule`
//! token. If the completion never closes the module, an `endmodule` can be
//! appended when assembling, matching how VGen salvages unterminated
//! completions.

use crate::lexer::Lexer;
use crate::token::{Keyword, TokenKind};

/// Cuts `completion` after the first `endmodule` token (inclusive).
///
/// Tokenisation is lossy: if the text stops lexing (e.g. an unterminated
/// string), everything before the garbage is kept. Comments do not count —
/// only a real `endmodule` token truncates.
///
/// ```
/// use vgen_verilog::truncate::truncate_completion;
/// let c = "assign y = a;\nendmodule\nmodule junk; endmodule";
/// assert_eq!(truncate_completion(c), "assign y = a;\nendmodule");
/// ```
pub fn truncate_completion(completion: &str) -> &str {
    let tokens = Lexer::new(completion).tokenize_lossy();
    for t in &tokens {
        if t.kind == TokenKind::Keyword(Keyword::Endmodule) {
            return &completion[..t.span.end as usize];
        }
    }
    completion
}

/// Joins a prompt and raw completion into a compilable source candidate.
///
/// The completion is truncated with [`truncate_completion`]; if the result
/// still contains no `endmodule`, one is appended on its own line (the
/// prompt always opens a module, so an unterminated completion would
/// otherwise always fail to compile for a trivial reason).
pub fn assemble_candidate(prompt: &str, completion: &str) -> String {
    let body = truncate_completion(completion);
    let mut out = String::with_capacity(prompt.len() + body.len() + 16);
    out.push_str(prompt);
    if !prompt.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(body);
    let has_endmodule = Lexer::new(body)
        .tokenize_lossy()
        .iter()
        .any(|t| t.kind == TokenKind::Keyword(Keyword::Endmodule));
    if !has_endmodule {
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("endmodule");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_after_first_endmodule() {
        let c = "always @(a) y = a;\nendmodule\n// trailing prose\nmodule x;";
        assert_eq!(truncate_completion(c), "always @(a) y = a;\nendmodule");
    }

    #[test]
    fn keeps_text_without_endmodule() {
        let c = "assign y = a;";
        assert_eq!(truncate_completion(c), c);
    }

    #[test]
    fn endmodule_in_comment_does_not_truncate() {
        let c = "// endmodule in comment\nassign y = a;\nendmodule";
        assert_eq!(truncate_completion(c), c);
    }

    #[test]
    fn endmodule_in_identifier_does_not_truncate() {
        let c = "assign endmodule_like = a;\nendmodule";
        assert_eq!(truncate_completion(c), c);
    }

    #[test]
    fn assemble_appends_missing_endmodule() {
        let src = assemble_candidate("module m(input a, output y);", "assign y = a;");
        assert!(src.ends_with("endmodule"));
        assert!(crate::parser::syntax_check(&src).is_ok());
    }

    #[test]
    fn assemble_does_not_duplicate_endmodule() {
        let src = assemble_candidate("module m(input a, output y);", "assign y = a;\nendmodule");
        assert_eq!(src.matches("endmodule").count(), 1);
        assert!(crate::parser::syntax_check(&src).is_ok());
    }

    #[test]
    fn assemble_cuts_second_module() {
        let src = assemble_candidate(
            "module m(input a, output y);",
            "assign y = a;\nendmodule\nmodule extra(input b); endmodule",
        );
        assert!(!src.contains("extra"));
    }

    #[test]
    fn lossy_truncation_on_garbage() {
        let c = "assign y = a; \"unterminated";
        // No endmodule found before the lex error; text returned unchanged.
        assert_eq!(truncate_completion(c), c);
    }
}
