//! Diagnostics for lexing and parsing.

use crate::span::{LineMap, Span};
use std::fmt;

/// An error produced while lexing or parsing Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
    /// Whether parsing was abandoned because a
    /// [`CancelToken`](vgen_obs::cancel::CancelToken) tripped, rather than
    /// because the input is malformed. The supervision layer uses this to
    /// classify the candidate as *timed out* instead of *uncompilable*.
    pub cancelled: bool,
}

impl ParseError {
    /// Creates a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            cancelled: false,
        }
    }

    /// Creates the cancellation pseudo-error reported when a cancel token
    /// trips mid-parse.
    pub fn cancelled_at(span: Span) -> Self {
        ParseError {
            message: "parse cancelled: check deadline exceeded".into(),
            span,
            cancelled: true,
        }
    }

    /// The 1-based line/column of the error start, resolved against `src`.
    pub fn line_col(&self, src: &str) -> crate::span::LineCol {
        LineMap::new(src).line_col(self.span.start)
    }

    /// Renders the error with line/column information resolved against `src`.
    ///
    /// ```
    /// use vgen_verilog::{error::ParseError, span::Span};
    /// let err = ParseError::new("unexpected `;`", Span::new(4, 5));
    /// assert_eq!(err.render("abc\n;"), "2:1: unexpected `;`");
    /// ```
    pub fn render(&self, src: &str) -> String {
        format!("{}: {}", self.line_col(src), self.message)
    }

    /// Renders the error as `file:line:col: message` — the same location
    /// format lint diagnostics use, so parse errors and lint findings are
    /// interchangeable in tool output.
    ///
    /// ```
    /// use vgen_verilog::{error::ParseError, span::Span};
    /// let err = ParseError::new("unexpected `;`", Span::new(4, 5));
    /// assert_eq!(err.render_named("t.v", "abc\n;"), "t.v:2:1: unexpected `;`");
    /// ```
    pub fn render_named(&self, file: &str, src: &str) -> String {
        format!("{file}:{}: {}", self.line_col(src), self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.span.start)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_col() {
        let err = ParseError::new("boom", Span::new(6, 7));
        assert_eq!(err.render("ab\ncd\nef"), "3:1: boom");
        let lc = err.line_col("ab\ncd\nef");
        assert_eq!((lc.line, lc.col), (3, 1));
    }

    #[test]
    fn render_named_includes_file() {
        let err = ParseError::new("boom", Span::new(6, 7));
        assert_eq!(err.render_named("x.v", "ab\ncd\nef"), "x.v:3:1: boom");
    }

    #[test]
    fn display_is_nonempty() {
        let err = ParseError::new("bad token", Span::point(3));
        assert!(format!("{err}").contains("bad token"));
    }
}
