//! Byte-offset source spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
///
/// Spans are attached to tokens, AST nodes and diagnostics so that errors can
/// be reported with line/column information via [`LineMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length span at `pos`, used for end-of-file diagnostics.
    pub fn point(pos: u32) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The slice of `src` covered by this span.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `src` or not on a char
    /// boundary.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, resolved from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, not display width).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for one source string.
///
/// ```
/// use vgen_verilog::span::LineMap;
/// let map = LineMap::new("module m;\nendmodule\n");
/// let lc = map.line_col(10);
/// assert_eq!((lc.line, lc.col), (2, 1));
/// ```
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds the line table for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Resolves a byte offset to a 1-based line/column.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Resolves both endpoints of a span, so diagnostics carry full
    /// line/column information rather than bare byte offsets.
    pub fn span_line_cols(&self, span: Span) -> (LineCol, LineCol) {
        (self.line_col(span.start), self.line_col(span.end))
    }

    /// The byte offset where 1-based `line` starts, if the source has that
    /// many lines.
    pub fn line_start(&self, line: u32) -> Option<u32> {
        self.line_starts.get(line as usize - 1).copied()
    }

    /// Number of lines in the mapped source (at least 1).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_slice() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(a.slice("abcdefghij"), "cde");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn span_rejects_inverted_range() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn line_map_first_line() {
        let map = LineMap::new("abc\ndef");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_map_later_lines() {
        let map = LineMap::new("abc\ndef\nghi");
        assert_eq!(map.line_col(4), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(10), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn line_map_offset_at_newline() {
        let map = LineMap::new("ab\ncd");
        // The newline itself belongs to line 1.
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn line_map_empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_count(), 1);
    }

    #[test]
    fn span_line_cols_resolves_both_ends() {
        let map = LineMap::new("abc\ndef\nghi");
        let (start, end) = map.span_line_cols(Span::new(4, 9));
        assert_eq!(start, LineCol { line: 2, col: 1 });
        assert_eq!(end, LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_start_lookup() {
        let map = LineMap::new("ab\ncd\nef");
        assert_eq!(map.line_start(1), Some(0));
        assert_eq!(map.line_start(2), Some(3));
        assert_eq!(map.line_start(3), Some(6));
        assert_eq!(map.line_start(4), None);
    }
}
