//! Four-state logic values (`0`, `1`, `x`, `z`) and bit-vectors.
//!
//! [`LogicVec`] is the value domain shared by the constant evaluator in this
//! crate and the event-driven simulator in `vgen-sim`. Semantics follow
//! IEEE 1364-2005: arithmetic with any unknown operand bit yields all-`x`,
//! logical operators use three-valued truth tables, and `z` degrades to `x`
//! when it participates in computation.
//!
//! # Representation
//!
//! Values are stored as two packed bit-planes in the IEEE 1364 VPI
//! `aval`/`bval` encoding: for each bit, `(aval, bval)` is `(0,0)` for `0`,
//! `(1,0)` for `1`, `(0,1)` for `z` and `(1,1)` for `x`. A set `bval` bit
//! therefore means "unknown" and `aval` distinguishes `x` from `z`. Vectors
//! of width ≤ 64 keep both planes inline (no heap allocation); wider vectors
//! spill to boxed `u64` word arrays. All bitwise operators, shifts,
//! reductions, comparisons and concat/select work word-at-a-time on the
//! planes; arithmetic takes a fast path through native `u64`/`i64` math
//! whenever `bval == 0` and degrades to all-`x` otherwise, exactly as the
//! per-bit implementation did.
//!
//! Invariant: `width >= 1`, and in both planes every bit at position
//! `>= width` is zero. This makes whole-word equality (`==`, derived
//! `PartialEq`/`Hash`) a valid value comparison.

use std::fmt;

/// A single four-state logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Converts a bool to `Zero`/`One`.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// `true` for `X` or `Z`.
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Returns `Some(bool)` for `Zero`/`One`, `None` otherwise.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            _ => None,
        }
    }

    /// Bitwise NOT; unknown maps to `X`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Bitwise AND with dominance: `0 & anything == 0`.
    pub fn and(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Bitwise OR with dominance: `1 | anything == 1`.
    pub fn or(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Bitwise XOR; unknown in, `X` out.
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// The character used in literals and `%b` formatting.
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parses one of `0 1 x X z Z ?` (`?` is `z`, as in casez literals).
    pub fn from_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' | '?' => Some(Logic::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Error for attempting to build a zero-width vector. Zero-width values
/// cannot exist in the IEEE 1364 value domain (the `zero-width` lint rule
/// rejects the literals that would produce them); constructors taking an
/// arbitrary width surface the condition as this typed error instead of
/// panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroWidthError;

impl fmt::Display for ZeroWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "logic vector width must be positive")
    }
}

impl std::error::Error for ZeroWidthError {}

/// Bits per storage word.
const WORD: usize = 64;

/// Number of words needed for `width` bits.
#[inline]
fn words_for(width: usize) -> usize {
    width.div_ceil(WORD)
}

/// Mask of the valid bits in the top word of a `width`-bit vector.
#[inline]
fn top_mask(width: usize) -> u64 {
    let r = width % WORD;
    if r == 0 {
        u64::MAX
    } else {
        (1u64 << r) - 1
    }
}

/// Mask of the bits of word `i` whose *global* position is `>= from`.
#[inline]
fn mask_from(i: usize, from: usize) -> u64 {
    let base = i * WORD;
    if from <= base {
        u64::MAX
    } else if from >= base + WORD {
        0
    } else {
        u64::MAX << (from - base)
    }
}

/// VPI encoding of a single [`Logic`] as `(aval, bval)` bits.
#[inline]
fn encode(l: Logic) -> (u64, u64) {
    match l {
        Logic::Zero => (0, 0),
        Logic::One => (1, 0),
        Logic::Z => (0, 1),
        Logic::X => (1, 1),
    }
}

/// The two packed planes; inline for widths ≤ 64, boxed beyond.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Planes {
    Word { aval: u64, bval: u64 },
    Wide { aval: Box<[u64]>, bval: Box<[u64]> },
}

/// A fixed-width four-state bit vector with a signedness flag.
///
/// Bit 0 is the least-significant bit. Width is always at least 1.
///
/// ```
/// use vgen_verilog::value::LogicVec;
/// let a = LogicVec::from_u64(5, 4);
/// let b = LogicVec::from_u64(3, 4);
/// assert_eq!(a.add(&b).to_u64(), Some(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: usize,
    signed: bool,
    planes: Planes,
}

impl LogicVec {
    /// Builds a vector by asking `f` for each `(aval, bval)` word pair.
    /// Bits above `width` are masked off, maintaining the representation
    /// invariant even when `f` returns garbage high bits.
    fn build(width: usize, signed: bool, mut f: impl FnMut(usize) -> (u64, u64)) -> LogicVec {
        debug_assert!(width > 0, "logic vector width must be positive");
        if width <= WORD {
            let (a, b) = f(0);
            let m = top_mask(width);
            LogicVec {
                width,
                signed,
                planes: Planes::Word {
                    aval: a & m,
                    bval: b & m,
                },
            }
        } else {
            let n = words_for(width);
            // Single-pass fill (no zeroed scratch that `f` immediately
            // overwrites); `f` is called in word order, which wide
            // carry-propagating callers rely on.
            let mut aval = Vec::with_capacity(n);
            let mut bval = Vec::with_capacity(n);
            for i in 0..n {
                let (wa, wb) = f(i);
                aval.push(wa);
                bval.push(wb);
            }
            let m = top_mask(width);
            aval[n - 1] &= m;
            bval[n - 1] &= m;
            LogicVec {
                width,
                signed,
                planes: Planes::Wide {
                    aval: aval.into_boxed_slice(),
                    bval: bval.into_boxed_slice(),
                },
            }
        }
    }

    /// Word `i` of both planes; words past the width read as zero.
    #[inline]
    fn word(&self, i: usize) -> (u64, u64) {
        match &self.planes {
            Planes::Word { aval, bval } => {
                if i == 0 {
                    (*aval, *bval)
                } else {
                    (0, 0)
                }
            }
            Planes::Wide { aval, bval } => match aval.get(i) {
                Some(a) => (*a, bval[i]),
                None => (0, 0),
            },
        }
    }

    /// Number of storage words backing this vector.
    pub fn word_len(&self) -> usize {
        words_for(self.width)
    }

    /// The `(aval, bval)` planes of 64-bit word `i` (word 0 holds bits
    /// 0..64). Words at or beyond [`word_len`](Self::word_len) read as zero.
    /// VPI encoding: `bval` bit set ⇒ unknown; `aval` then picks `x` over `z`.
    pub fn word_planes(&self, i: usize) -> (u64, u64) {
        self.word(i)
    }

    /// Mask of valid bits in word `i` (all-ones except the top word).
    #[inline]
    fn word_mask(&self, i: usize) -> u64 {
        if i + 1 == words_for(self.width) {
            top_mask(self.width)
        } else {
            u64::MAX
        }
    }

    /// Word `i` of `v` shifted left by `off` bits (unbounded width).
    #[inline]
    fn up_word(v: &LogicVec, i: usize, off: usize) -> (u64, u64) {
        let q = off / WORD;
        let r = off % WORD;
        if i < q {
            return (0, 0);
        }
        let (a0, b0) = v.word(i - q);
        if r == 0 {
            return (a0, b0);
        }
        let (a1, b1) = if i > q { v.word(i - q - 1) } else { (0, 0) };
        (
            (a0 << r) | (a1 >> (WORD - r)),
            (b0 << r) | (b1 >> (WORD - r)),
        )
    }

    /// Word `i` of `v` shifted right by `off` bits (zero fill from above,
    /// which is exact because bits past `v.width` are zero by invariant).
    #[inline]
    fn down_word(v: &LogicVec, i: usize, off: usize) -> (u64, u64) {
        let q = off / WORD;
        let r = off % WORD;
        let (a0, b0) = v.word(i + q);
        if r == 0 {
            return (a0, b0);
        }
        let (a1, b1) = v.word(i + q + 1);
        (
            (a0 >> r) | (a1 << (WORD - r)),
            (b0 >> r) | (b1 << (WORD - r)),
        )
    }

    /// A `width`-bit unsigned vector with every bit set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn filled(width: usize, value: Logic) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let (ba, bb) = encode(value);
        let pa = if ba == 1 { u64::MAX } else { 0 };
        let pb = if bb == 1 { u64::MAX } else { 0 };
        Self::build(width, false, |_| (pa, pb))
    }

    /// An all-`x` unsigned vector.
    pub fn unknown(width: usize) -> Self {
        Self::filled(width, Logic::X)
    }

    /// An all-zero unsigned vector.
    pub fn zero(width: usize) -> Self {
        Self::filled(width, Logic::Zero)
    }

    /// Builds from raw bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: Vec<Logic>, signed: bool) -> Self {
        assert!(!bits.is_empty(), "logic vector width must be positive");
        let width = bits.len();
        Self::build(width, signed, |i| {
            let lo = i * WORD;
            let hi = width.min(lo + WORD);
            let mut a = 0u64;
            let mut b = 0u64;
            for (j, bit) in bits[lo..hi].iter().enumerate() {
                let (ba, bb) = encode(*bit);
                a |= ba << j;
                b |= bb << j;
            }
            (a, b)
        })
    }

    /// Builds an unsigned vector of `width` bits from the low bits of `v`.
    #[inline]
    pub fn from_u64(v: u64, width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        Self::build(width, false, |i| if i == 0 { (v, 0) } else { (0, 0) })
    }

    /// Builds a signed vector of `width` bits from the two's-complement of `v`.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroWidthError`] if `width == 0` — the one constructor
    /// whose width regularly comes from parsed user input rather than a
    /// declaration, so the failure is typed instead of a panic.
    pub fn from_i64(v: i64, width: usize) -> Result<Self, ZeroWidthError> {
        if width == 0 {
            return Err(ZeroWidthError);
        }
        let fill = if v < 0 { u64::MAX } else { 0 };
        Ok(Self::build(width, true, |i| {
            if i == 0 {
                (v as u64, 0)
            } else {
                (fill, 0)
            }
        }))
    }

    /// Builds a 1-bit vector from a bool.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(b as u64, 1)
    }

    /// The value as a single fully-known word, when the vector is at most
    /// 64 bits wide and carries no `x`/`z` bits. Unlike [`to_u64`] this
    /// never inspects wide planes — it is a constant-time accessor for
    /// word-lane hot paths.
    ///
    /// [`to_u64`]: LogicVec::to_u64
    #[inline]
    pub fn known_word(&self) -> Option<u64> {
        match self.planes {
            Planes::Word { aval, bval } => (bval == 0).then_some(aval),
            Planes::Wide { .. } => None,
        }
    }

    /// In-place store of a fully-known word value and signedness, masking
    /// `v` to the existing width. Word-sized vectors (≤ 64 bits) update
    /// their planes without touching the heap; wide vectors fall back to a
    /// rebuild. The width is unchanged.
    #[inline]
    pub fn set_known_word(&mut self, v: u64, signed: bool) {
        self.signed = signed;
        match &mut self.planes {
            Planes::Word { aval, bval } => {
                *aval = v & top_mask(self.width);
                *bval = 0;
            }
            Planes::Wide { .. } => {
                *self = Self::from_u64(v, self.width).with_signed(signed);
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the vector is treated as two's-complement in arithmetic.
    #[inline]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Returns a copy with the signedness flag set to `signed`.
    #[inline]
    pub fn with_signed(mut self, signed: bool) -> Self {
        self.signed = signed;
        self
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> Vec<Logic> {
        (0..self.width).map(|i| self.bit(i)).collect()
    }

    /// Bit `i` (LSB = 0), or `X` when out of range (Verilog out-of-bounds
    /// select semantics).
    #[inline]
    pub fn bit(&self, i: usize) -> Logic {
        if i >= self.width {
            return Logic::X;
        }
        let (a, b) = self.word(i / WORD);
        let sh = i % WORD;
        match ((a >> sh) & 1, (b >> sh) & 1) {
            (0, 0) => Logic::Zero,
            (1, 0) => Logic::One,
            (0, 1) => Logic::Z,
            _ => Logic::X,
        }
    }

    /// Whether any bit is `x` or `z` (any set `bval` bit).
    #[inline]
    pub fn has_unknown(&self) -> bool {
        match &self.planes {
            Planes::Word { bval, .. } => *bval != 0,
            Planes::Wide { bval, .. } => bval.iter().any(|w| *w != 0),
        }
    }

    /// Interprets as unsigned; `None` if any bit is unknown or width > 64
    /// with a set high bit.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        for i in 1..self.word_len() {
            if self.word(i).0 != 0 {
                return None;
            }
        }
        Some(self.word(0).0)
    }

    /// Interprets as two's-complement according to the sign flag.
    pub fn to_i64(&self) -> Option<i64> {
        if self.has_unknown() {
            return None;
        }
        let w = self.width;
        if !self.signed || self.bit(w - 1) == Logic::Zero {
            return self.to_u64().map(|v| v as i64);
        }
        // Negative: sign-extend the low 64 bits.
        let a0 = self.word(0).0;
        let v = if w >= 64 {
            a0 as i64
        } else {
            (a0 | (u64::MAX << w)) as i64
        };
        Some(v)
    }

    /// Resizes to `width`, zero-, sign- or x-extending as appropriate.
    ///
    /// Extension bits are: the sign bit for signed vectors, `X` if the top
    /// bit is `X`, `Z` if the top bit is `Z` (unsigned `x/z` literals extend
    /// with their top state, per IEEE 1364 §3.5.1), else `0`.
    pub fn resize(&self, width: usize) -> LogicVec {
        assert!(width > 0, "logic vector width must be positive");
        if width == self.width {
            return self.clone();
        }
        if width < self.width {
            return Self::build(width, self.signed, |i| self.word(i));
        }
        let top = self.bit(self.width - 1);
        let ext = match top {
            Logic::X => Logic::X,
            Logic::Z => Logic::Z,
            _ if self.signed => top,
            _ => Logic::Zero,
        };
        let (ea, eb) = encode(ext);
        let pa = if ea == 1 { u64::MAX } else { 0 };
        let pb = if eb == 1 { u64::MAX } else { 0 };
        let ow = self.width;
        Self::build(width, self.signed, |i| {
            let (a, b) = self.word(i);
            let fill = mask_from(i, ow);
            ((a & !fill) | (pa & fill), (b & !fill) | (pb & fill))
        })
    }

    /// The `(aval, bval)` plane-fill words for bits above `self.width` when
    /// this vector is widened: sign bit for signed vectors, `x`/`z` when the
    /// top bit is unknown, zero otherwise — the same extension rule as
    /// [`resize`](Self::resize), precomputed once so binary ops can widen
    /// word-at-a-time without materialising a resized clone of the operand.
    #[inline]
    fn ext_fill(&self) -> (u64, u64) {
        let top = self.bit(self.width - 1);
        let ext = match top {
            Logic::X => Logic::X,
            Logic::Z => Logic::Z,
            _ if self.signed => top,
            _ => Logic::Zero,
        };
        let (ea, eb) = encode(ext);
        (
            if ea == 1 { u64::MAX } else { 0 },
            if eb == 1 { u64::MAX } else { 0 },
        )
    }

    /// Word `i` of `self` as it would appear after `self.resize(w)` for
    /// `w >= self.width`, with `(pa, pb)` the [`ext_fill`](Self::ext_fill)
    /// planes: extension bits are OR-ed in on the fly (bits past the
    /// operand width are zero by invariant) and the result is masked to the
    /// joined width `w`.
    #[inline]
    fn widened_word(&self, i: usize, w: usize, pa: u64, pb: u64) -> (u64, u64) {
        let (a, b) = self.word(i);
        let fill = mask_from(i, self.width);
        let m = if i + 1 == words_for(w) {
            top_mask(w)
        } else {
            u64::MAX
        };
        ((a | (pa & fill)) & m, (b | (pb & fill)) & m)
    }

    /// Truthiness for `if`/`while`/ternary conditions: `Some(true)` if any
    /// bit is 1, `Some(false)` if all bits are 0, `None` (unknown) otherwise.
    #[inline]
    pub fn truthiness(&self) -> Option<bool> {
        let mut any_unknown = false;
        for i in 0..self.word_len() {
            let (a, b) = self.word(i);
            if a & !b != 0 {
                return Some(true);
            }
            if b != 0 {
                any_unknown = true;
            }
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    fn all_x(width: usize) -> LogicVec {
        LogicVec::unknown(width.max(1))
    }

    /// Common width for a binary arithmetic/bitwise op (max of operands).
    fn join_width(&self, rhs: &LogicVec) -> usize {
        self.width().max(rhs.width())
    }

    fn both_signed(&self, rhs: &LogicVec) -> bool {
        self.signed && rhs.signed
    }

    /// `self + rhs` at the joined width (result signed iff both signed).
    ///
    /// Fully known operands are exact at *any* width: beyond 64 bits the
    /// sum runs word-parallel with carry propagation instead of degrading
    /// to all-`x` like the other arithmetic ops still do.
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        if let Some(v) = self.wide_addsub(rhs, false) {
            return v;
        }
        self.arith2(rhs, |a, b| a.wrapping_add(b))
    }

    /// `self - rhs`. Exact for fully known operands at any width, like
    /// [`add`](Self::add).
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        if let Some(v) = self.wide_addsub(rhs, true) {
            return v;
        }
        self.arith2(rhs, |a, b| a.wrapping_sub(b))
    }

    /// Word-parallel wide add/sub: when the joined width exceeds one word
    /// and both operands are fully known, ripple the carry across 64-bit
    /// words (subtraction is `a + !b + 1`). Each operand widens by its own
    /// signedness, the same rule the native-word path applies. `None`
    /// falls back to [`arith2`](Self::arith2).
    fn wide_addsub(&self, rhs: &LogicVec, subtract: bool) -> Option<LogicVec> {
        let w = self.join_width(rhs);
        if w <= WORD || self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let (lpa, _) = self.ext_fill();
        let (rpa, _) = rhs.ext_fill();
        // `build` calls in ascending word order, so the carry threads
        // through sequentially. Garbage above the top word's mask (from
        // `!r` on the masked top word) only feeds bits the constructor
        // masks off and a final carry-out that wrapping discards.
        let mut carry: u64 = u64::from(subtract);
        Some(Self::build(w, self.both_signed(rhs), |i| {
            let la = self.widened_word(i, w, lpa, 0).0;
            let rw = rhs.widened_word(i, w, rpa, 0).0;
            let ra = if subtract { !rw } else { rw };
            let (s1, c1) = la.overflowing_add(ra);
            let (s2, c2) = s1.overflowing_add(carry);
            carry = u64::from(c1 | c2);
            (s2, 0)
        }))
    }

    /// `self * rhs`.
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b| a.wrapping_mul(b))
    }

    /// `self / rhs`; division by zero yields all-`x` (per IEEE 1364).
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        if rhs.to_u64() == Some(0) {
            return Self::all_x(w);
        }
        if self.both_signed(rhs) {
            match (self.to_i64(), rhs.to_i64()) {
                (Some(a), Some(b)) if b != 0 => {
                    LogicVec::from_i64(a.wrapping_div(b), w).expect("joined width is positive")
                }
                _ => Self::all_x(w),
            }
        } else {
            self.arith2(rhs, |a, b| a.checked_div(b).unwrap_or(0))
        }
    }

    /// `self % rhs`; modulo by zero yields all-`x`.
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        if rhs.to_u64() == Some(0) {
            return Self::all_x(w);
        }
        if self.both_signed(rhs) {
            match (self.to_i64(), rhs.to_i64()) {
                (Some(a), Some(b)) if b != 0 => {
                    LogicVec::from_i64(a.wrapping_rem(b), w).expect("joined width is positive")
                }
                _ => Self::all_x(w),
            }
        } else {
            self.arith2(rhs, |a, b| a.checked_rem(b).unwrap_or(0))
        }
    }

    /// `self ** rhs` (unsigned exponentiation, wrapping).
    pub fn pow(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) => {
                let mut acc: u64 = 1;
                for _ in 0..b.min(64) {
                    acc = acc.wrapping_mul(a);
                }
                LogicVec::from_u64(acc, w).with_signed(self.both_signed(rhs))
            }
            _ => Self::all_x(w),
        }
    }

    /// Known-value fast path: when `bval == 0` everywhere the operands are
    /// plain integers and `f` runs on native words; any unknown bit (or a
    /// known value that does not fit in 64 bits) degrades to all-`x`.
    fn arith2(&self, rhs: &LogicVec, f: impl Fn(u64, u64) -> u64) -> LogicVec {
        // Equal-width single-word known operands: both values are exact in
        // a native word, so `f` runs directly and the constructor masks the
        // result — the same answer the widening path below produces, minus
        // the extension scans.
        if self.width == rhs.width && !self.both_signed(rhs) {
            if let (Planes::Word { aval: la, bval: 0 }, Planes::Word { aval: ra, bval: 0 }) =
                (&self.planes, &rhs.planes)
            {
                return LogicVec::from_u64(f(*la, *ra), self.width);
            }
        }
        let w = self.join_width(rhs);
        let signed = self.both_signed(rhs);
        // Widening a signed pair to `w` preserves the two's-complement
        // value, so the operands convert directly; the unsigned reading
        // widens word-at-a-time — neither path materialises resized clones.
        if signed {
            match (self.to_i64(), rhs.to_i64()) {
                (Some(a), Some(b)) => {
                    return LogicVec::from_i64(f(a as u64, b as u64) as i64, w)
                        .expect("joined width is positive")
                }
                _ => return Self::all_x(w),
            }
        }
        match (self.widened_to_u64(w), rhs.widened_to_u64(w)) {
            (Some(a), Some(b)) => LogicVec::from_u64(f(a, b), w),
            _ => Self::all_x(w),
        }
    }

    /// `self.resize(w).to_u64()` for `w >= self.width`, computed without
    /// materialising the resized value: `None` when any bit is unknown or
    /// the (possibly sign-extended) value does not fit in 64 bits.
    fn widened_to_u64(&self, w: usize) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        // Fully known ⇒ the extension fill is the sign bit or zero.
        let (pa, _) = self.ext_fill();
        for i in 1..words_for(w) {
            if self.widened_word(i, w, pa, 0).0 != 0 {
                return None;
            }
        }
        Some(self.widened_word(0, w, pa, 0).0)
    }

    /// Unary minus (two's-complement negation).
    pub fn neg(&self) -> LogicVec {
        LogicVec::zero(self.width())
            .with_signed(self.signed)
            .sub(self)
            .with_signed(self.signed)
    }

    /// Bitwise NOT: known bits invert, unknown bits (`x`/`z`) become `x`.
    pub fn bit_not(&self) -> LogicVec {
        Self::build(self.width, self.signed, |i| {
            let (a, b) = self.word(i);
            ((!a) | b, b)
        })
    }

    /// Word-parallel binary bitwise op: both operands are widened to the
    /// joined width on the fly ([`widened_word`](Self::widened_word), no
    /// resized clones), then `f` maps `(aval_l, bval_l, aval_r, bval_r)`
    /// words to result words.
    fn bitwise2(&self, rhs: &LogicVec, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> LogicVec {
        // Equal-width boxed operands: no widening can occur, so `f` zips
        // the stored words directly — a straight word-parallel sweep with
        // none of the per-word extension arithmetic below.
        if self.width == rhs.width {
            if let (Planes::Wide { aval: la, bval: lb }, Planes::Wide { aval: ra, bval: rb }) =
                (&self.planes, &rhs.planes)
            {
                return Self::build(self.width, self.both_signed(rhs), |i| {
                    f(la[i], lb[i], ra[i], rb[i])
                });
            }
        }
        let w = self.join_width(rhs);
        let (lpa, lpb) = self.ext_fill();
        let (rpa, rpb) = rhs.ext_fill();
        Self::build(w, self.both_signed(rhs), |i| {
            let (la, lb) = self.widened_word(i, w, lpa, lpb);
            let (ra, rb) = rhs.widened_word(i, w, rpa, rpb);
            f(la, lb, ra, rb)
        })
    }

    /// Bitwise AND (`0` dominates unknowns).
    pub fn bit_and(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, |la, lb, ra, rb| {
            let zero = (!la & !lb) | (!ra & !rb); // a known 0 on either side
            let one = (la & !lb) & (ra & !rb); // known 1 on both sides
            let bv = !(zero | one);
            (one | bv, bv)
        })
    }

    /// Bitwise OR (`1` dominates unknowns).
    pub fn bit_or(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, |la, lb, ra, rb| {
            let one = (la & !lb) | (ra & !rb); // a known 1 on either side
            let zero = (!la & !lb) & (!ra & !rb); // known 0 on both sides
            let bv = !(zero | one);
            (one | bv, bv)
        })
    }

    /// Bitwise XOR (any unknown in, `x` out).
    pub fn bit_xor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, |la, lb, ra, rb| {
            let un = lb | rb;
            ((la ^ ra) | un, un)
        })
    }

    /// Bitwise XNOR.
    pub fn bit_xnor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, |la, lb, ra, rb| {
            let un = lb | rb;
            (!(la ^ ra) | un, un)
        })
    }

    /// Reduction AND over all bits (1-bit result): a known `0` anywhere
    /// dominates, otherwise any unknown gives `x`.
    pub fn reduce_and(&self) -> Logic {
        let mut any_unknown = false;
        for i in 0..self.word_len() {
            let (a, b) = self.word(i);
            if !a & !b & self.word_mask(i) != 0 {
                return Logic::Zero;
            }
            if b != 0 {
                any_unknown = true;
            }
        }
        if any_unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction OR over all bits: a known `1` anywhere dominates.
    pub fn reduce_or(&self) -> Logic {
        let mut any_unknown = false;
        for i in 0..self.word_len() {
            let (a, b) = self.word(i);
            if a & !b != 0 {
                return Logic::One;
            }
            if b != 0 {
                any_unknown = true;
            }
        }
        if any_unknown {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// Reduction XOR over all bits: parity when fully known, else `x`.
    pub fn reduce_xor(&self) -> Logic {
        let mut parity = 0u32;
        for i in 0..self.word_len() {
            let (a, b) = self.word(i);
            if b != 0 {
                return Logic::X;
            }
            parity ^= a.count_ones();
        }
        Logic::from_bool(parity & 1 == 1)
    }

    /// Logical shift left by `amount` (zero fill); unknown shift gives all-x.
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        let w = self.width;
        let Some(n) = amount.to_u64() else {
            return Self::all_x(w);
        };
        let n = n.min(w as u64) as usize;
        Self::build(w, self.signed, |i| Self::up_word(self, i, n))
    }

    /// Logical shift right by `amount` (zero fill).
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        let w = self.width;
        let Some(n) = amount.to_u64() else {
            return Self::all_x(w);
        };
        let n = n.min(w as u64) as usize;
        Self::build(w, self.signed, |i| Self::down_word(self, i, n))
    }

    /// Arithmetic shift right: sign fill when signed, zero fill otherwise.
    /// The fill state is the top bit, which may itself be `x`/`z`.
    pub fn ashr(&self, amount: &LogicVec) -> LogicVec {
        if !self.signed {
            return self.shr(amount);
        }
        let w = self.width;
        let Some(n) = amount.to_u64() else {
            return Self::all_x(w);
        };
        let n = n.min(w as u64) as usize;
        let (fa, fb) = encode(self.bit(w - 1));
        let pa = if fa == 1 { u64::MAX } else { 0 };
        let pb = if fb == 1 { u64::MAX } else { 0 };
        let from = w - n;
        Self::build(w, true, |i| {
            let (a, b) = Self::down_word(self, i, n);
            let fill = mask_from(i, from);
            (a | (pa & fill), b | (pb & fill))
        })
    }

    /// Value ordering for the relational operators, exact at any width.
    ///
    /// `None` if either operand has an `x`/`z` bit. Otherwise both operands
    /// are compared at the joined width: two's-complement when both are
    /// signed (sign-extended), raw zero-extended bit patterns otherwise —
    /// the same extension policy [`to_u64`](Self::to_u64)/
    /// [`to_i64`](Self::to_i64) applied in the narrow case.
    fn cmp_values(&self, rhs: &LogicVec) -> Option<std::cmp::Ordering> {
        if self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let signed = self.both_signed(rhs);
        if signed {
            let ln = self.bit(self.width - 1) == Logic::One;
            let rn = rhs.bit(rhs.width - 1) == Logic::One;
            if ln != rn {
                // Opposite signs decide immediately; same-sign values order
                // like their unsigned sign-extended bit patterns below.
                return Some(if ln {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                });
            }
        }
        let fill = |v: &LogicVec| -> u64 {
            if signed && v.bit(v.width - 1) == Logic::One {
                u64::MAX
            } else {
                0
            }
        };
        let (lpa, rpa) = (fill(self), fill(rhs));
        let w = self.join_width(rhs);
        for i in (0..words_for(w)).rev() {
            let la = self.widened_word(i, w, lpa, 0).0;
            let ra = rhs.widened_word(i, w, rpa, 0).0;
            if la != ra {
                return Some(la.cmp(&ra));
            }
        }
        Some(std::cmp::Ordering::Equal)
    }

    fn logic1(v: Option<bool>) -> LogicVec {
        match v {
            Some(b) => LogicVec::from_bool(b),
            None => LogicVec::unknown(1),
        }
    }

    /// `==`: 1-bit result, `x` if any operand bit is unknown.
    pub fn eq_logic(&self, rhs: &LogicVec) -> LogicVec {
        // Widening cannot introduce an unknown into a fully known operand,
        // so the check runs on the operands as-is.
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::unknown(1);
        }
        let w = self.join_width(rhs);
        let (lpa, _) = self.ext_fill();
        let (rpa, _) = rhs.ext_fill();
        for i in 0..words_for(w) {
            if self.widened_word(i, w, lpa, 0).0 != rhs.widened_word(i, w, rpa, 0).0 {
                return LogicVec::from_bool(false);
            }
        }
        LogicVec::from_bool(true)
    }

    /// `!=`.
    pub fn ne_logic(&self, rhs: &LogicVec) -> LogicVec {
        self.eq_logic(rhs).logic_not()
    }

    /// `===`: exact 4-state match, always 0/1.
    pub fn case_eq(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        let (lpa, lpb) = self.ext_fill();
        let (rpa, rpb) = rhs.ext_fill();
        for i in 0..words_for(w) {
            if self.widened_word(i, w, lpa, lpb) != rhs.widened_word(i, w, rpa, rpb) {
                return LogicVec::from_bool(false);
            }
        }
        LogicVec::from_bool(true)
    }

    /// `<`.
    pub fn lt(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_lt()))
    }

    /// `<=`.
    pub fn le(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_le()))
    }

    /// `>`.
    pub fn gt(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_gt()))
    }

    /// `>=`.
    pub fn ge(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_ge()))
    }

    /// Logical NOT (`!`): 1-bit.
    pub fn logic_not(&self) -> LogicVec {
        Self::logic1(self.truthiness().map(|b| !b))
    }

    /// Logical AND (`&&`) with three-valued truth.
    pub fn logic_and(&self, rhs: &LogicVec) -> LogicVec {
        match (self.truthiness(), rhs.truthiness()) {
            (Some(false), _) | (_, Some(false)) => LogicVec::from_bool(false),
            (Some(true), Some(true)) => LogicVec::from_bool(true),
            _ => LogicVec::unknown(1),
        }
    }

    /// Logical OR (`||`) with three-valued truth.
    pub fn logic_or(&self, rhs: &LogicVec) -> LogicVec {
        match (self.truthiness(), rhs.truthiness()) {
            (Some(true), _) | (_, Some(true)) => LogicVec::from_bool(true),
            (Some(false), Some(false)) => LogicVec::from_bool(false),
            _ => LogicVec::unknown(1),
        }
    }

    /// Concatenation `{self, rhs}` — `self` supplies the *high* bits.
    pub fn concat(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.width + rhs.width;
        let off = rhs.width;
        Self::build(w, false, |i| {
            let (la, lb) = rhs.word(i);
            let (ha, hb) = Self::up_word(self, i, off);
            (la | ha, lb | hb)
        })
    }

    /// Replication `{count{self}}`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: usize) -> LogicVec {
        assert!(count > 0, "replication count must be positive");
        let w0 = self.width;
        let w = w0 * count;
        Self::build(w, false, |i| {
            let base = i * WORD;
            let mut a = 0u64;
            let mut b = 0u64;
            // OR in every copy of `self` that overlaps word `i`.
            let mut k = base / w0;
            while k < count && k * w0 < base + WORD {
                let (ra, rb) = Self::up_word(self, i, k * w0);
                a |= ra;
                b |= rb;
                k += 1;
            }
            (a, b)
        })
    }

    /// Part-select `[hi:lo]` in *bit-index* space (after range normalisation);
    /// out-of-range bits read as `x`.
    pub fn select(&self, hi: usize, lo: usize) -> LogicVec {
        assert!(hi >= lo, "part-select hi must be >= lo");
        let w = hi - lo + 1;
        // Result positions at or past `self.width - lo` come from out-of-range
        // source bits and read as x; in-range positions shift down cleanly.
        let x_from = self.width.saturating_sub(lo);
        Self::build(w, false, |i| {
            let (a, b) = Self::down_word(self, i, lo);
            let xm = mask_from(i, x_from);
            (a | xm, b | xm)
        })
    }

    /// Returns a copy with bit positions `lo..=hi` replaced by `value`
    /// (resized to the select width); positions outside `0..width` are
    /// dropped, as in an out-of-range part-select write. Signedness and
    /// width are preserved.
    pub fn with_range(&self, hi: usize, lo: usize, value: &LogicVec) -> LogicVec {
        assert!(hi >= lo, "part-select hi must be >= lo");
        if lo >= self.width {
            return self.clone();
        }
        let v = value.resize(hi - lo + 1);
        let end = hi.min(self.width - 1) + 1;
        Self::build(self.width, self.signed, |i| {
            let (sa, sb) = self.word(i);
            let (va, vb) = Self::up_word(&v, i, lo);
            let m = mask_from(i, lo) & !mask_from(i, end);
            ((sa & !m) | (va & m), (sb & !m) | (vb & m))
        })
    }

    /// Ternary x-merge (IEEE 1364 §5.1.13): bits where both operands agree
    /// on a *known* value keep it; every other bit is `x`. Operands are
    /// resized to the joined width; the result is unsigned.
    pub fn merge_unknown(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        let (lpa, lpb) = self.ext_fill();
        let (rpa, rpb) = rhs.ext_fill();
        Self::build(w, false, |i| {
            let (la, lb) = self.widened_word(i, w, lpa, lpb);
            let (ra, rb) = rhs.widened_word(i, w, rpa, rpb);
            let keep = !((la ^ ra) | (lb ^ rb)) & !lb;
            ((la & keep) | !keep, !keep)
        })
    }

    /// Matches against a casez/casex pattern: pattern `z`/`?` bits (and for
    /// casex also `x` bits) are wildcards.
    pub fn case_matches(&self, pattern: &LogicVec, x_is_wild: bool) -> bool {
        let w = self.join_width(pattern);
        let (vfa, vfb) = self.ext_fill();
        let (pfa, pfb) = pattern.ext_fill();
        for i in 0..words_for(w) {
            let (va, vb) = self.widened_word(i, w, vfa, vfb);
            let (pa, pb) = pattern.widened_word(i, w, pfa, pfb);
            let wild = if x_is_wild {
                vb | pb
            } else {
                (vb & !va) | (pb & !pa) // z bits only
            };
            let diff = (va ^ pa) | (vb ^ pb);
            if diff & !wild != 0 {
                return false;
            }
        }
        true
    }

    /// Whether every bit is `z` (used by `%d` formatting).
    fn is_all_z(&self) -> bool {
        for i in 0..self.word_len() {
            let (a, b) = self.word(i);
            if a != 0 || b != self.word_mask(i) {
                return false;
            }
        }
        true
    }

    /// Renders as a binary string, MSB first (for `%b`).
    pub fn to_binary_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| self.bit(i).to_char())
            .collect()
    }

    /// Renders for `%d`: the decimal value, or `x`/`z` when unknown.
    pub fn to_decimal_string(&self) -> String {
        if let Some(v) = if self.signed {
            self.to_i64().map(|v| v.to_string())
        } else {
            self.to_u64().map(|v| v.to_string())
        } {
            return v;
        }
        if self.is_all_z() {
            "z".to_string()
        } else {
            "x".to_string()
        }
    }

    /// Renders for `%h`: hex digits MSB first, `x`/`z` per nibble when
    /// uniformly unknown, `X`/`Z` when partially unknown.
    pub fn to_hex_string(&self) -> String {
        let nibbles = self.width().div_ceil(4);
        let mut out = String::with_capacity(nibbles);
        for n in (0..nibbles).rev() {
            let bits: Vec<Logic> = (0..4)
                .map(|i| {
                    let idx = n * 4 + i;
                    if idx < self.width() {
                        self.bit(idx)
                    } else {
                        Logic::Zero
                    }
                })
                .collect();
            if bits.iter().all(|b| !b.is_unknown()) {
                let mut v = 0u8;
                for (i, b) in bits.iter().enumerate() {
                    if *b == Logic::One {
                        v |= 1 << i;
                    }
                }
                out.push(char::from_digit(v as u32, 16).expect("nibble"));
            } else if bits.iter().all(|b| *b == Logic::X) {
                out.push('x');
            } else if bits.iter().all(|b| *b == Logic::Z) {
                out.push('z');
            } else if bits.contains(&Logic::X) {
                out.push('X');
            } else {
                out.push('Z');
            }
        }
        out
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width(), self.to_binary_string())
    }
}

impl fmt::Binary for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_binary_string())
    }
}

impl fmt::LowerHex for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(val: u64, w: usize) -> LogicVec {
        LogicVec::from_u64(val, w)
    }

    #[test]
    fn logic_tables() {
        use Logic::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(Z), X);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(Z), X);
        assert_eq!(Z.not(), X);
    }

    #[test]
    fn u64_round_trip() {
        for val in [0u64, 1, 5, 255, 4096, u32::MAX as u64] {
            assert_eq!(v(val, 64).to_u64(), Some(val));
        }
    }

    #[test]
    fn i64_negative_round_trip() {
        let x = LogicVec::from_i64(-5, 8).unwrap();
        assert_eq!(x.to_i64(), Some(-5));
        assert_eq!(x.to_u64(), Some(0xFB));
    }

    #[test]
    fn add_wraps_at_width() {
        assert_eq!(v(15, 4).add(&v(1, 4)).to_u64(), Some(0));
        assert_eq!(v(7, 4).add(&v(8, 4)).to_u64(), Some(15));
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(v(0, 4).sub(&v(1, 4)).to_u64(), Some(15));
    }

    #[test]
    fn arithmetic_with_x_poisons() {
        let x = LogicVec::unknown(4);
        assert!(v(3, 4).add(&x).has_unknown());
        assert!(x.mul(&v(2, 4)).has_unknown());
    }

    #[test]
    fn div_by_zero_is_x() {
        assert!(v(8, 4).div(&v(0, 4)).has_unknown());
        assert!(v(8, 4).rem(&v(0, 4)).has_unknown());
        assert_eq!(v(9, 4).div(&v(2, 4)).to_u64(), Some(4));
        assert_eq!(v(9, 4).rem(&v(2, 4)).to_u64(), Some(1));
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        let a = LogicVec::from_i64(-7, 8).unwrap();
        let b = LogicVec::from_i64(2, 8).unwrap();
        assert_eq!(a.div(&b).to_i64(), Some(-3));
        assert_eq!(a.rem(&b).to_i64(), Some(-1));
    }

    #[test]
    fn signed_overflow_detect_via_bits() {
        // 127 + 1 wraps to -128 in 8-bit signed.
        let a = LogicVec::from_i64(127, 8).unwrap();
        let b = LogicVec::from_i64(1, 8).unwrap();
        assert_eq!(a.add(&b).to_i64(), Some(-128));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(v(0b1100, 4).bit_and(&v(0b1010, 4)).to_u64(), Some(0b1000));
        assert_eq!(v(0b1100, 4).bit_or(&v(0b1010, 4)).to_u64(), Some(0b1110));
        assert_eq!(v(0b1100, 4).bit_xor(&v(0b1010, 4)).to_u64(), Some(0b0110));
        assert_eq!(v(0b1100, 4).bit_not().to_u64(), Some(0b0011));
        assert_eq!(v(0b1100, 4).bit_xnor(&v(0b1010, 4)).to_u64(), Some(0b1001));
    }

    #[test]
    fn reductions() {
        assert_eq!(v(0b1111, 4).reduce_and(), Logic::One);
        assert_eq!(v(0b1101, 4).reduce_and(), Logic::Zero);
        assert_eq!(v(0, 4).reduce_or(), Logic::Zero);
        assert_eq!(v(0b0100, 4).reduce_or(), Logic::One);
        assert_eq!(v(0b0111, 4).reduce_xor(), Logic::One);
        assert_eq!(v(0b0110, 4).reduce_xor(), Logic::Zero);
    }

    #[test]
    fn shifts() {
        assert_eq!(v(0b0011, 4).shl(&v(2, 3)).to_u64(), Some(0b1100));
        assert_eq!(v(0b1100, 4).shr(&v(2, 3)).to_u64(), Some(0b0011));
        // Shift past width clears everything.
        assert_eq!(v(0b1111, 4).shl(&v(9, 4)).to_u64(), Some(0));
    }

    #[test]
    fn arithmetic_shift_right_sign_fills() {
        let neg = LogicVec::from_i64(-8, 8).unwrap(); // 0xF8
        assert_eq!(neg.ashr(&v(2, 3)).to_i64(), Some(-2));
        // Unsigned >>> behaves like >>.
        assert_eq!(v(0x80, 8).ashr(&v(4, 3)).to_u64(), Some(0x08));
    }

    #[test]
    fn comparisons() {
        assert_eq!(v(3, 4).lt(&v(5, 4)).to_u64(), Some(1));
        assert_eq!(v(5, 4).le(&v(5, 4)).to_u64(), Some(1));
        assert_eq!(v(6, 4).gt(&v(5, 4)).to_u64(), Some(1));
        assert_eq!(v(5, 4).ge(&v(6, 4)).to_u64(), Some(0));
    }

    #[test]
    fn signed_comparison() {
        let a = LogicVec::from_i64(-1, 4).unwrap();
        let b = LogicVec::from_i64(1, 4).unwrap();
        assert_eq!(a.lt(&b).to_u64(), Some(1));
        // Same bits unsigned: 15 > 1.
        let au = a.clone().with_signed(false);
        let bu = b.clone().with_signed(false);
        assert_eq!(au.lt(&bu).to_u64(), Some(0));
    }

    #[test]
    fn equality_with_x_is_x() {
        let x = LogicVec::unknown(4);
        assert!(v(3, 4).eq_logic(&x).has_unknown());
        assert_eq!(v(3, 4).eq_logic(&v(3, 4)).to_u64(), Some(1));
        assert_eq!(v(3, 4).ne_logic(&v(4, 4)).to_u64(), Some(1));
    }

    #[test]
    fn case_equality_is_two_state() {
        let x = LogicVec::unknown(4);
        assert_eq!(x.case_eq(&x).to_u64(), Some(1));
        assert_eq!(x.case_eq(&v(3, 4)).to_u64(), Some(0));
    }

    #[test]
    fn logical_ops_three_valued() {
        let x = LogicVec::unknown(1);
        let t = LogicVec::from_bool(true);
        let f = LogicVec::from_bool(false);
        assert_eq!(f.logic_and(&x).to_u64(), Some(0));
        assert!(t.logic_and(&x).has_unknown());
        assert_eq!(t.logic_or(&x).to_u64(), Some(1));
        assert!(f.logic_or(&x).has_unknown());
        assert_eq!(t.logic_not().to_u64(), Some(0));
    }

    #[test]
    fn concat_order_msb_from_lhs() {
        // {2'b10, 2'b01} == 4'b1001
        let c = v(0b10, 2).concat(&v(0b01, 2));
        assert_eq!(c.to_u64(), Some(0b1001));
        assert_eq!(c.width(), 4);
    }

    #[test]
    fn replication() {
        let r = v(0b10, 2).replicate(3);
        assert_eq!(r.to_u64(), Some(0b101010));
        assert_eq!(r.width(), 6);
    }

    #[test]
    fn part_select() {
        let val = v(0b1101_0110, 8);
        assert_eq!(val.select(7, 4).to_u64(), Some(0b1101));
        assert_eq!(val.select(3, 0).to_u64(), Some(0b0110));
        // Out-of-range reads x.
        assert!(val.select(9, 8).has_unknown());
    }

    #[test]
    fn resize_behaviour() {
        assert_eq!(v(0b11, 2).resize(4).to_u64(), Some(0b0011));
        let s = LogicVec::from_i64(-2, 4).unwrap();
        assert_eq!(s.resize(8).to_i64(), Some(-2));
        assert_eq!(v(0b1111, 4).resize(2).to_u64(), Some(0b11));
        // x extends with x.
        assert!(LogicVec::unknown(2).resize(4).bits()[3].is_unknown());
    }

    #[test]
    fn casez_wildcards() {
        // pattern 3'b1?? matches anything with bit2 == 1
        let pattern = LogicVec::from_bits(vec![Logic::Z, Logic::Z, Logic::One], false);
        assert!(v(0b100, 3).case_matches(&pattern, false));
        assert!(v(0b111, 3).case_matches(&pattern, false));
        assert!(!v(0b011, 3).case_matches(&pattern, false));
    }

    #[test]
    fn casex_treats_x_wild() {
        let pattern = LogicVec::from_bits(vec![Logic::X, Logic::One], false);
        assert!(v(0b10, 2).case_matches(&pattern, true));
        assert!(!v(0b10, 2).case_matches(&pattern, false));
    }

    #[test]
    fn formatting() {
        assert_eq!(v(0b1010, 4).to_binary_string(), "1010");
        assert_eq!(v(255, 8).to_decimal_string(), "255");
        assert_eq!(LogicVec::from_i64(-3, 8).unwrap().to_decimal_string(), "-3");
        assert_eq!(v(0xAB, 8).to_hex_string(), "ab");
        assert_eq!(LogicVec::unknown(8).to_hex_string(), "xx");
        assert_eq!(LogicVec::unknown(8).to_decimal_string(), "x");
        assert_eq!(format!("{}", v(5, 4)), "4'b0101");
    }

    #[test]
    fn truthiness() {
        assert_eq!(v(0, 4).truthiness(), Some(false));
        assert_eq!(v(2, 4).truthiness(), Some(true));
        assert_eq!(LogicVec::unknown(4).truthiness(), None);
        // 1 anywhere wins over x.
        let mixed = LogicVec::from_bits(vec![Logic::X, Logic::One], false);
        assert_eq!(mixed.truthiness(), Some(true));
    }

    #[test]
    fn neg_two_complement() {
        assert_eq!(v(1, 4).neg().to_u64(), Some(15));
        assert_eq!(LogicVec::from_i64(-4, 8).unwrap().neg().to_i64(), Some(4));
    }

    // ---- packed-representation specifics ----

    #[test]
    fn from_i64_zero_width_is_typed_error() {
        assert_eq!(LogicVec::from_i64(1, 0), Err(ZeroWidthError));
        assert_eq!(LogicVec::from_i64(-1, 0), Err(ZeroWidthError));
        assert_eq!(
            ZeroWidthError.to_string(),
            "logic vector width must be positive"
        );
        // Width 1 is the smallest legal vector.
        assert_eq!(LogicVec::from_i64(1, 1).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn vpi_plane_encoding() {
        // LSB first: 1, z, x, 0 → aval 0b0101, bval 0b0110.
        let val = LogicVec::from_bits(vec![Logic::One, Logic::Z, Logic::X, Logic::Zero], false);
        assert_eq!(val.word_planes(0), (0b0101, 0b0110));
        assert_eq!(val.word_len(), 1);
        // Round trip.
        assert_eq!(
            val.bits(),
            vec![Logic::One, Logic::Z, Logic::X, Logic::Zero]
        );
    }

    #[test]
    fn wide_vectors_use_multiple_words() {
        let val = v(1, 65).shl(&v(64, 8));
        assert_eq!(val.word_len(), 2);
        assert_eq!(val.word_planes(0), (0, 0));
        assert_eq!(val.word_planes(1), (1, 0));
        assert_eq!(val.bit(64), Logic::One);
        // Word index past the storage reads zero.
        assert_eq!(val.word_planes(7), (0, 0));
    }

    #[test]
    fn wide_arithmetic_beyond_64_bits_stays_exact_for_add_sub() {
        // Add/sub run word-parallel with carry propagation, so fully known
        // values are exact at any width. The other arithmetic ops still
        // degrade to all-x past 64 bits.
        let big = v(1, 80).shl(&v(70, 8)); // 2^70
        assert_eq!(big.to_u64(), None);
        let bumped = big.add(&v(1, 80)); // 2^70 + 1
        assert!(!bumped.has_unknown());
        assert_eq!(bumped.bit(70), Logic::One);
        assert_eq!(bumped.bit(0), Logic::One);
        assert_eq!(bumped.sub(&big).to_u64(), Some(1));
        assert_eq!(bumped.sub(&bumped).to_u64(), Some(0));
        // Carry must ripple across the word boundary: (2^64 - 1) + 1 = 2^64.
        let max_word = v(1, 100).shl(&v(64, 8)).sub(&v(1, 100));
        let next = max_word.add(&v(1, 100));
        assert_eq!(next.bit(64), Logic::One);
        assert_eq!(next.bit(63), Logic::Zero);
        // Multiplication keeps the documented degradation.
        assert!(big.mul(&v(2, 80)).has_unknown());
        // Values that fit keep exact wide-width arithmetic.
        assert_eq!(v(5, 80).add(&v(7, 80)).to_u64(), Some(12));
    }

    #[test]
    fn wide_shift_crosses_word_boundary() {
        let val = v(0b11, 100);
        let up = val.shl(&v(63, 8));
        assert_eq!(up.bit(63), Logic::One);
        assert_eq!(up.bit(64), Logic::One);
        assert_eq!(up.shr(&v(63, 8)).to_u64(), Some(0b11));
    }

    #[test]
    fn wide_select_and_concat() {
        let val = v(0xDEAD, 100).shl(&v(60, 8));
        assert_eq!(val.select(75, 60).to_u64(), Some(0xDEAD));
        let cat = v(0xA, 4).concat(&v(0x5, 68));
        assert_eq!(cat.width(), 72);
        assert_eq!(cat.select(71, 68).to_u64(), Some(0xA));
        assert_eq!(cat.select(67, 0).to_u64(), Some(0x5));
    }

    #[test]
    fn wide_signed_resize_sign_extends_across_words() {
        let s = LogicVec::from_i64(-2, 66).unwrap();
        assert_eq!(s.to_i64(), Some(-2));
        let grown = s.resize(130);
        assert_eq!(grown.bit(129), Logic::One);
        assert_eq!(grown.to_i64(), Some(-2));
    }

    #[test]
    fn with_range_writes_slice() {
        let val = v(0, 8).with_range(5, 2, &v(0b1111, 4));
        assert_eq!(val.to_u64(), Some(0b0011_1100));
        // Out-of-range slots are dropped.
        let clipped = v(0, 4).with_range(5, 2, &v(0b1111, 4));
        assert_eq!(clipped.to_u64(), Some(0b1100));
        let past = v(0b1010, 4).with_range(9, 8, &v(0b11, 2));
        assert_eq!(past.to_u64(), Some(0b1010));
        // Narrow value is resized (zero-extended) to the select width.
        let widened = v(0xFF, 8).with_range(7, 0, &v(1, 1));
        assert_eq!(widened.to_u64(), Some(1));
        // Signedness and width preserved.
        let s = LogicVec::from_i64(-1, 8)
            .unwrap()
            .with_range(0, 0, &v(0, 1));
        assert!(s.is_signed());
        assert_eq!(s.width(), 8);
    }

    #[test]
    fn merge_unknown_keeps_agreeing_known_bits() {
        let a = v(0b1100, 4);
        let b = v(0b1010, 4);
        let m = a.merge_unknown(&b);
        assert_eq!(m.bit(3), Logic::One);
        assert_eq!(m.bit(2), Logic::X);
        assert_eq!(m.bit(1), Logic::X);
        assert_eq!(m.bit(0), Logic::Zero);
        // Agreeing z bits still merge to x (z is not a known value).
        let z = LogicVec::filled(4, Logic::Z);
        assert!(z.merge_unknown(&z).bits().iter().all(|b| *b == Logic::X));
    }

    #[test]
    fn replicate_across_word_boundaries() {
        let r = v(0b101, 3).replicate(30);
        assert_eq!(r.width(), 90);
        for i in 0..90 {
            assert_eq!(r.bit(i), Logic::from_bool(i % 3 != 1), "bit {i}");
        }
    }
}
