//! Four-state logic values (`0`, `1`, `x`, `z`) and bit-vectors.
//!
//! [`LogicVec`] is the value domain shared by the constant evaluator in this
//! crate and the event-driven simulator in `vgen-sim`. Semantics follow
//! IEEE 1364-2005: arithmetic with any unknown operand bit yields all-`x`,
//! logical operators use three-valued truth tables, and `z` degrades to `x`
//! when it participates in computation.

#![allow(clippy::needless_range_loop)]

use std::fmt;

/// A single four-state logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Converts a bool to `Zero`/`One`.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// `true` for `X` or `Z`.
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Returns `Some(bool)` for `Zero`/`One`, `None` otherwise.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            _ => None,
        }
    }

    /// Bitwise NOT; unknown maps to `X`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Bitwise AND with dominance: `0 & anything == 0`.
    pub fn and(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Bitwise OR with dominance: `1 | anything == 1`.
    pub fn or(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Bitwise XOR; unknown in, `X` out.
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// The character used in literals and `%b` formatting.
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parses one of `0 1 x X z Z ?` (`?` is `z`, as in casez literals).
    pub fn from_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' | '?' => Some(Logic::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A fixed-width four-state bit vector with a signedness flag.
///
/// Bit 0 is the least-significant bit. Width is always at least 1.
///
/// ```
/// use vgen_verilog::value::LogicVec;
/// let a = LogicVec::from_u64(5, 4);
/// let b = LogicVec::from_u64(3, 4);
/// assert_eq!(a.add(&b).to_u64(), Some(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    bits: Vec<Logic>,
    signed: bool,
}

impl LogicVec {
    /// An all-`x` vector of `width` bits (the reg power-on value).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn filled(width: usize, value: Logic) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        LogicVec {
            bits: vec![value; width],
            signed: false,
        }
    }

    /// An all-`x` unsigned vector.
    pub fn unknown(width: usize) -> Self {
        Self::filled(width, Logic::X)
    }

    /// An all-zero unsigned vector.
    pub fn zero(width: usize) -> Self {
        Self::filled(width, Logic::Zero)
    }

    /// Builds from raw bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: Vec<Logic>, signed: bool) -> Self {
        assert!(!bits.is_empty(), "logic vector width must be positive");
        LogicVec { bits, signed }
    }

    /// Builds an unsigned vector of `width` bits from the low bits of `v`.
    pub fn from_u64(v: u64, width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let bits = (0..width)
            .map(|i| {
                if i < 64 {
                    Logic::from_bool((v >> i) & 1 == 1)
                } else {
                    Logic::Zero
                }
            })
            .collect();
        LogicVec {
            bits,
            signed: false,
        }
    }

    /// Builds a signed vector of `width` bits from the two's-complement of `v`.
    pub fn from_i64(v: i64, width: usize) -> Self {
        let mut out = Self::from_u64(v as u64, width.max(1));
        if width > 64 && v < 0 {
            for b in out.bits.iter_mut().skip(64) {
                *b = Logic::One;
            }
        }
        out.signed = true;
        out
    }

    /// Builds a 1-bit vector from a bool.
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(b as u64, 1)
    }

    /// Number of bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is treated as two's-complement in arithmetic.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Returns a copy with the signedness flag set to `signed`.
    pub fn with_signed(mut self, signed: bool) -> Self {
        self.signed = signed;
        self
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> &[Logic] {
        &self.bits
    }

    /// Bit `i` (LSB = 0), or `X` when out of range (Verilog out-of-bounds
    /// select semantics).
    pub fn bit(&self, i: usize) -> Logic {
        self.bits.get(i).copied().unwrap_or(Logic::X)
    }

    /// Whether any bit is `x` or `z`.
    pub fn has_unknown(&self) -> bool {
        self.bits.iter().any(|b| b.is_unknown())
    }

    /// Interprets as unsigned; `None` if any bit is unknown or width > 64
    /// with a set high bit.
    pub fn to_u64(&self) -> Option<u64> {
        let mut v = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) if i >= 64 => return None,
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Interprets as two's-complement according to the sign flag.
    pub fn to_i64(&self) -> Option<i64> {
        if self.has_unknown() {
            return None;
        }
        let w = self.width();
        if !self.signed || self.bit(w - 1) == Logic::Zero {
            return self.to_u64().map(|v| v as i64);
        }
        // Negative: sign-extend into 64 bits.
        let mut v: i64 = -1;
        for i in 0..w.min(64) {
            match self.bit(i) {
                Logic::One => v |= 1 << i,
                Logic::Zero => v &= !(1 << i),
                _ => return None,
            }
        }
        Some(v)
    }

    /// Resizes to `width`, zero-, sign- or x-extending as appropriate.
    ///
    /// Extension bits are: the sign bit for signed vectors, `X` if the top
    /// bit is `X`, `Z` if the top bit is `Z` (unsigned `x/z` literals extend
    /// with their top state, per IEEE 1364 §3.5.1), else `0`.
    pub fn resize(&self, width: usize) -> LogicVec {
        assert!(width > 0, "logic vector width must be positive");
        let mut bits = self.bits.clone();
        if width < bits.len() {
            bits.truncate(width);
        } else {
            let top = *bits.last().expect("non-empty");
            let ext = match top {
                Logic::X => Logic::X,
                Logic::Z => Logic::Z,
                _ if self.signed => top,
                _ => Logic::Zero,
            };
            bits.resize(width, ext);
        }
        LogicVec {
            bits,
            signed: self.signed,
        }
    }

    /// Truthiness for `if`/`while`/ternary conditions: `Some(true)` if any
    /// bit is 1, `Some(false)` if all bits are 0, `None` (unknown) otherwise.
    pub fn truthiness(&self) -> Option<bool> {
        let mut any_unknown = false;
        for b in &self.bits {
            match b {
                Logic::One => return Some(true),
                Logic::Zero => {}
                _ => any_unknown = true,
            }
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    fn all_x(width: usize) -> LogicVec {
        LogicVec::unknown(width.max(1))
    }

    /// Common width for a binary arithmetic/bitwise op (max of operands).
    fn join_width(&self, rhs: &LogicVec) -> usize {
        self.width().max(rhs.width())
    }

    fn both_signed(&self, rhs: &LogicVec) -> bool {
        self.signed && rhs.signed
    }

    /// `self + rhs` at the joined width (result signed iff both signed).
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b| a.wrapping_add(b))
    }

    /// `self - rhs`.
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b| a.wrapping_sub(b))
    }

    /// `self * rhs`.
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b| a.wrapping_mul(b))
    }

    /// `self / rhs`; division by zero yields all-`x` (per IEEE 1364).
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        if rhs.to_u64() == Some(0) {
            return Self::all_x(w);
        }
        if self.both_signed(rhs) {
            match (self.to_i64(), rhs.to_i64()) {
                (Some(a), Some(b)) if b != 0 => LogicVec::from_i64(a.wrapping_div(b), w),
                _ => Self::all_x(w),
            }
        } else {
            self.arith2(rhs, |a, b| a.checked_div(b).unwrap_or(0))
        }
    }

    /// `self % rhs`; modulo by zero yields all-`x`.
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        if rhs.to_u64() == Some(0) {
            return Self::all_x(w);
        }
        if self.both_signed(rhs) {
            match (self.to_i64(), rhs.to_i64()) {
                (Some(a), Some(b)) if b != 0 => LogicVec::from_i64(a.wrapping_rem(b), w),
                _ => Self::all_x(w),
            }
        } else {
            self.arith2(rhs, |a, b| a.checked_rem(b).unwrap_or(0))
        }
    }

    /// `self ** rhs` (unsigned exponentiation, wrapping).
    pub fn pow(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) => {
                let mut acc: u64 = 1;
                for _ in 0..b.min(64) {
                    acc = acc.wrapping_mul(a);
                }
                LogicVec::from_u64(acc, w).with_signed(self.both_signed(rhs))
            }
            _ => Self::all_x(w),
        }
    }

    fn arith2(&self, rhs: &LogicVec, f: impl Fn(u64, u64) -> u64) -> LogicVec {
        let w = self.join_width(rhs);
        let signed = self.both_signed(rhs);
        if signed {
            match (
                self.resize(w).with_signed(true).to_i64(),
                rhs.resize(w).with_signed(true).to_i64(),
            ) {
                (Some(a), Some(b)) => return LogicVec::from_i64(f(a as u64, b as u64) as i64, w),
                _ => return Self::all_x(w),
            }
        }
        match (self.resize(w).to_u64(), rhs.resize(w).to_u64()) {
            (Some(a), Some(b)) => LogicVec::from_u64(f(a, b), w),
            _ => Self::all_x(w),
        }
    }

    /// Unary minus (two's-complement negation).
    pub fn neg(&self) -> LogicVec {
        LogicVec::zero(self.width())
            .with_signed(self.signed)
            .sub(self)
            .with_signed(self.signed)
    }

    /// Bitwise NOT.
    pub fn bit_not(&self) -> LogicVec {
        LogicVec {
            bits: self.bits.iter().map(|b| b.not()).collect(),
            signed: self.signed,
        }
    }

    fn bitwise2(&self, rhs: &LogicVec, f: impl Fn(Logic, Logic) -> Logic) -> LogicVec {
        let w = self.join_width(rhs);
        let a = self.resize(w);
        let b = rhs.resize(w);
        LogicVec {
            bits: (0..w).map(|i| f(a.bit(i), b.bit(i))).collect(),
            signed: self.both_signed(rhs),
        }
    }

    /// Bitwise AND.
    pub fn bit_and(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::and)
    }

    /// Bitwise OR.
    pub fn bit_or(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::or)
    }

    /// Bitwise XOR.
    pub fn bit_xor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::xor)
    }

    /// Bitwise XNOR.
    pub fn bit_xnor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, |a, b| a.xor(b).not())
    }

    /// Reduction AND over all bits (1-bit result).
    pub fn reduce_and(&self) -> Logic {
        self.bits.iter().copied().fold(Logic::One, Logic::and)
    }

    /// Reduction OR over all bits.
    pub fn reduce_or(&self) -> Logic {
        self.bits.iter().copied().fold(Logic::Zero, Logic::or)
    }

    /// Reduction XOR over all bits.
    pub fn reduce_xor(&self) -> Logic {
        self.bits.iter().copied().fold(Logic::Zero, Logic::xor)
    }

    /// Logical shift left by `amount` (zero fill); unknown shift gives all-x.
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        let w = self.width();
        let Some(n) = amount.to_u64() else {
            return Self::all_x(w);
        };
        let n = n.min(w as u64) as usize;
        let mut bits = vec![Logic::Zero; w];
        for i in n..w {
            bits[i] = self.bit(i - n);
        }
        LogicVec {
            bits,
            signed: self.signed,
        }
    }

    /// Logical shift right by `amount` (zero fill).
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        let w = self.width();
        let Some(n) = amount.to_u64() else {
            return Self::all_x(w);
        };
        let n = n.min(w as u64) as usize;
        let mut bits = vec![Logic::Zero; w];
        for i in 0..w - n {
            bits[i] = self.bit(i + n);
        }
        LogicVec {
            bits,
            signed: self.signed,
        }
    }

    /// Arithmetic shift right: sign fill when signed, zero fill otherwise.
    pub fn ashr(&self, amount: &LogicVec) -> LogicVec {
        if !self.signed {
            return self.shr(amount);
        }
        let w = self.width();
        let Some(n) = amount.to_u64() else {
            return Self::all_x(w);
        };
        let n = n.min(w as u64) as usize;
        let fill = self.bit(w - 1);
        let mut bits = vec![fill; w];
        for i in 0..w - n {
            bits[i] = self.bit(i + n);
        }
        LogicVec { bits, signed: true }
    }

    fn cmp_values(&self, rhs: &LogicVec) -> Option<std::cmp::Ordering> {
        if self.both_signed(rhs) {
            Some(self.to_i64()?.cmp(&rhs.to_i64()?))
        } else {
            Some(self.to_u64()?.cmp(&rhs.to_u64()?))
        }
    }

    fn logic1(v: Option<bool>) -> LogicVec {
        match v {
            Some(b) => LogicVec::from_bool(b),
            None => LogicVec::unknown(1),
        }
    }

    /// `==`: 1-bit result, `x` if any operand bit is unknown.
    pub fn eq_logic(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        let a = self.resize(w);
        let b = rhs.resize(w);
        if a.has_unknown() || b.has_unknown() {
            return LogicVec::unknown(1);
        }
        Self::logic1(Some(a.bits == b.bits))
    }

    /// `!=`.
    pub fn ne_logic(&self, rhs: &LogicVec) -> LogicVec {
        self.eq_logic(rhs).logic_not()
    }

    /// `===`: exact 4-state match, always 0/1.
    pub fn case_eq(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.join_width(rhs);
        LogicVec::from_bool(self.resize(w).bits == rhs.resize(w).bits)
    }

    /// `<`.
    pub fn lt(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_lt()))
    }

    /// `<=`.
    pub fn le(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_le()))
    }

    /// `>`.
    pub fn gt(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_gt()))
    }

    /// `>=`.
    pub fn ge(&self, rhs: &LogicVec) -> LogicVec {
        Self::logic1(self.cmp_values(rhs).map(|o| o.is_ge()))
    }

    /// Logical NOT (`!`): 1-bit.
    pub fn logic_not(&self) -> LogicVec {
        Self::logic1(self.truthiness().map(|b| !b))
    }

    /// Logical AND (`&&`) with three-valued truth.
    pub fn logic_and(&self, rhs: &LogicVec) -> LogicVec {
        match (self.truthiness(), rhs.truthiness()) {
            (Some(false), _) | (_, Some(false)) => LogicVec::from_bool(false),
            (Some(true), Some(true)) => LogicVec::from_bool(true),
            _ => LogicVec::unknown(1),
        }
    }

    /// Logical OR (`||`) with three-valued truth.
    pub fn logic_or(&self, rhs: &LogicVec) -> LogicVec {
        match (self.truthiness(), rhs.truthiness()) {
            (Some(true), _) | (_, Some(true)) => LogicVec::from_bool(true),
            (Some(false), Some(false)) => LogicVec::from_bool(false),
            _ => LogicVec::unknown(1),
        }
    }

    /// Concatenation `{self, rhs}` — `self` supplies the *high* bits.
    pub fn concat(&self, rhs: &LogicVec) -> LogicVec {
        let mut bits = rhs.bits.clone();
        bits.extend_from_slice(&self.bits);
        LogicVec {
            bits,
            signed: false,
        }
    }

    /// Replication `{count{self}}`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: usize) -> LogicVec {
        assert!(count > 0, "replication count must be positive");
        let mut bits = Vec::with_capacity(self.width() * count);
        for _ in 0..count {
            bits.extend_from_slice(&self.bits);
        }
        LogicVec {
            bits,
            signed: false,
        }
    }

    /// Part-select `[hi:lo]` in *bit-index* space (after range normalisation);
    /// out-of-range bits read as `x`.
    pub fn select(&self, hi: usize, lo: usize) -> LogicVec {
        assert!(hi >= lo, "part-select hi must be >= lo");
        LogicVec {
            bits: (lo..=hi).map(|i| self.bit(i)).collect(),
            signed: false,
        }
    }

    /// Matches against a casez/casex pattern: pattern `z`/`?` bits (and for
    /// casex also `x` bits) are wildcards.
    pub fn case_matches(&self, pattern: &LogicVec, x_is_wild: bool) -> bool {
        let w = self.join_width(pattern);
        let v = self.resize(w);
        let p = pattern.resize(w);
        (0..w).all(|i| {
            let pb = p.bit(i);
            let vb = v.bit(i);
            if pb == Logic::Z || vb == Logic::Z {
                return true;
            }
            if x_is_wild && (pb == Logic::X || vb == Logic::X) {
                return true;
            }
            pb == vb
        })
    }

    /// Renders as a binary string, MSB first (for `%b`).
    pub fn to_binary_string(&self) -> String {
        self.bits.iter().rev().map(|b| b.to_char()).collect()
    }

    /// Renders for `%d`: the decimal value, or `x`/`z` when unknown.
    pub fn to_decimal_string(&self) -> String {
        if let Some(v) = if self.signed {
            self.to_i64().map(|v| v.to_string())
        } else {
            self.to_u64().map(|v| v.to_string())
        } {
            return v;
        }
        if self.bits.iter().all(|b| *b == Logic::Z) {
            "z".to_string()
        } else {
            "x".to_string()
        }
    }

    /// Renders for `%h`: hex digits MSB first, `x`/`z` per nibble when
    /// uniformly unknown, `X`/`Z` when partially unknown.
    pub fn to_hex_string(&self) -> String {
        let nibbles = self.width().div_ceil(4);
        let mut out = String::with_capacity(nibbles);
        for n in (0..nibbles).rev() {
            let bits: Vec<Logic> = (0..4)
                .map(|i| {
                    let idx = n * 4 + i;
                    if idx < self.width() {
                        self.bit(idx)
                    } else {
                        Logic::Zero
                    }
                })
                .collect();
            if bits.iter().all(|b| !b.is_unknown()) {
                let mut v = 0u8;
                for (i, b) in bits.iter().enumerate() {
                    if *b == Logic::One {
                        v |= 1 << i;
                    }
                }
                out.push(char::from_digit(v as u32, 16).expect("nibble"));
            } else if bits.iter().all(|b| *b == Logic::X) {
                out.push('x');
            } else if bits.iter().all(|b| *b == Logic::Z) {
                out.push('z');
            } else if bits.contains(&Logic::X) {
                out.push('X');
            } else {
                out.push('Z');
            }
        }
        out
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width(), self.to_binary_string())
    }
}

impl fmt::Binary for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_binary_string())
    }
}

impl fmt::LowerHex for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(val: u64, w: usize) -> LogicVec {
        LogicVec::from_u64(val, w)
    }

    #[test]
    fn logic_tables() {
        use Logic::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(Z), X);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(Z), X);
        assert_eq!(Z.not(), X);
    }

    #[test]
    fn u64_round_trip() {
        for val in [0u64, 1, 5, 255, 4096, u32::MAX as u64] {
            assert_eq!(v(val, 64).to_u64(), Some(val));
        }
    }

    #[test]
    fn i64_negative_round_trip() {
        let x = LogicVec::from_i64(-5, 8);
        assert_eq!(x.to_i64(), Some(-5));
        assert_eq!(x.to_u64(), Some(0xFB));
    }

    #[test]
    fn add_wraps_at_width() {
        assert_eq!(v(15, 4).add(&v(1, 4)).to_u64(), Some(0));
        assert_eq!(v(7, 4).add(&v(8, 4)).to_u64(), Some(15));
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(v(0, 4).sub(&v(1, 4)).to_u64(), Some(15));
    }

    #[test]
    fn arithmetic_with_x_poisons() {
        let x = LogicVec::unknown(4);
        assert!(v(3, 4).add(&x).has_unknown());
        assert!(x.mul(&v(2, 4)).has_unknown());
    }

    #[test]
    fn div_by_zero_is_x() {
        assert!(v(8, 4).div(&v(0, 4)).has_unknown());
        assert!(v(8, 4).rem(&v(0, 4)).has_unknown());
        assert_eq!(v(9, 4).div(&v(2, 4)).to_u64(), Some(4));
        assert_eq!(v(9, 4).rem(&v(2, 4)).to_u64(), Some(1));
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        let a = LogicVec::from_i64(-7, 8);
        let b = LogicVec::from_i64(2, 8);
        assert_eq!(a.div(&b).to_i64(), Some(-3));
        assert_eq!(a.rem(&b).to_i64(), Some(-1));
    }

    #[test]
    fn signed_overflow_detect_via_bits() {
        // 127 + 1 wraps to -128 in 8-bit signed.
        let a = LogicVec::from_i64(127, 8);
        let b = LogicVec::from_i64(1, 8);
        assert_eq!(a.add(&b).to_i64(), Some(-128));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(v(0b1100, 4).bit_and(&v(0b1010, 4)).to_u64(), Some(0b1000));
        assert_eq!(v(0b1100, 4).bit_or(&v(0b1010, 4)).to_u64(), Some(0b1110));
        assert_eq!(v(0b1100, 4).bit_xor(&v(0b1010, 4)).to_u64(), Some(0b0110));
        assert_eq!(v(0b1100, 4).bit_not().to_u64(), Some(0b0011));
        assert_eq!(v(0b1100, 4).bit_xnor(&v(0b1010, 4)).to_u64(), Some(0b1001));
    }

    #[test]
    fn reductions() {
        assert_eq!(v(0b1111, 4).reduce_and(), Logic::One);
        assert_eq!(v(0b1101, 4).reduce_and(), Logic::Zero);
        assert_eq!(v(0, 4).reduce_or(), Logic::Zero);
        assert_eq!(v(0b0100, 4).reduce_or(), Logic::One);
        assert_eq!(v(0b0111, 4).reduce_xor(), Logic::One);
        assert_eq!(v(0b0110, 4).reduce_xor(), Logic::Zero);
    }

    #[test]
    fn shifts() {
        assert_eq!(v(0b0011, 4).shl(&v(2, 3)).to_u64(), Some(0b1100));
        assert_eq!(v(0b1100, 4).shr(&v(2, 3)).to_u64(), Some(0b0011));
        // Shift past width clears everything.
        assert_eq!(v(0b1111, 4).shl(&v(9, 4)).to_u64(), Some(0));
    }

    #[test]
    fn arithmetic_shift_right_sign_fills() {
        let neg = LogicVec::from_i64(-8, 8); // 0xF8
        assert_eq!(neg.ashr(&v(2, 3)).to_i64(), Some(-2));
        // Unsigned >>> behaves like >>.
        assert_eq!(v(0x80, 8).ashr(&v(4, 3)).to_u64(), Some(0x08));
    }

    #[test]
    fn comparisons() {
        assert_eq!(v(3, 4).lt(&v(5, 4)).to_u64(), Some(1));
        assert_eq!(v(5, 4).le(&v(5, 4)).to_u64(), Some(1));
        assert_eq!(v(6, 4).gt(&v(5, 4)).to_u64(), Some(1));
        assert_eq!(v(5, 4).ge(&v(6, 4)).to_u64(), Some(0));
    }

    #[test]
    fn signed_comparison() {
        let a = LogicVec::from_i64(-1, 4);
        let b = LogicVec::from_i64(1, 4);
        assert_eq!(a.lt(&b).to_u64(), Some(1));
        // Same bits unsigned: 15 > 1.
        let au = a.clone().with_signed(false);
        let bu = b.clone().with_signed(false);
        assert_eq!(au.lt(&bu).to_u64(), Some(0));
    }

    #[test]
    fn equality_with_x_is_x() {
        let x = LogicVec::unknown(4);
        assert!(v(3, 4).eq_logic(&x).has_unknown());
        assert_eq!(v(3, 4).eq_logic(&v(3, 4)).to_u64(), Some(1));
        assert_eq!(v(3, 4).ne_logic(&v(4, 4)).to_u64(), Some(1));
    }

    #[test]
    fn case_equality_is_two_state() {
        let x = LogicVec::unknown(4);
        assert_eq!(x.case_eq(&x).to_u64(), Some(1));
        assert_eq!(x.case_eq(&v(3, 4)).to_u64(), Some(0));
    }

    #[test]
    fn logical_ops_three_valued() {
        let x = LogicVec::unknown(1);
        let t = LogicVec::from_bool(true);
        let f = LogicVec::from_bool(false);
        assert_eq!(f.logic_and(&x).to_u64(), Some(0));
        assert!(t.logic_and(&x).has_unknown());
        assert_eq!(t.logic_or(&x).to_u64(), Some(1));
        assert!(f.logic_or(&x).has_unknown());
        assert_eq!(t.logic_not().to_u64(), Some(0));
    }

    #[test]
    fn concat_order_msb_from_lhs() {
        // {2'b10, 2'b01} == 4'b1001
        let c = v(0b10, 2).concat(&v(0b01, 2));
        assert_eq!(c.to_u64(), Some(0b1001));
        assert_eq!(c.width(), 4);
    }

    #[test]
    fn replication() {
        let r = v(0b10, 2).replicate(3);
        assert_eq!(r.to_u64(), Some(0b101010));
        assert_eq!(r.width(), 6);
    }

    #[test]
    fn part_select() {
        let val = v(0b1101_0110, 8);
        assert_eq!(val.select(7, 4).to_u64(), Some(0b1101));
        assert_eq!(val.select(3, 0).to_u64(), Some(0b0110));
        // Out-of-range reads x.
        assert!(val.select(9, 8).has_unknown());
    }

    #[test]
    fn resize_behaviour() {
        assert_eq!(v(0b11, 2).resize(4).to_u64(), Some(0b0011));
        let s = LogicVec::from_i64(-2, 4);
        assert_eq!(s.resize(8).to_i64(), Some(-2));
        assert_eq!(v(0b1111, 4).resize(2).to_u64(), Some(0b11));
        // x extends with x.
        assert!(LogicVec::unknown(2).resize(4).bits()[3].is_unknown());
    }

    #[test]
    fn casez_wildcards() {
        // pattern 3'b1?? matches anything with bit2 == 1
        let pattern = LogicVec::from_bits(vec![Logic::Z, Logic::Z, Logic::One], false);
        assert!(v(0b100, 3).case_matches(&pattern, false));
        assert!(v(0b111, 3).case_matches(&pattern, false));
        assert!(!v(0b011, 3).case_matches(&pattern, false));
    }

    #[test]
    fn casex_treats_x_wild() {
        let pattern = LogicVec::from_bits(vec![Logic::X, Logic::One], false);
        assert!(v(0b10, 2).case_matches(&pattern, true));
        assert!(!v(0b10, 2).case_matches(&pattern, false));
    }

    #[test]
    fn formatting() {
        assert_eq!(v(0b1010, 4).to_binary_string(), "1010");
        assert_eq!(v(255, 8).to_decimal_string(), "255");
        assert_eq!(LogicVec::from_i64(-3, 8).to_decimal_string(), "-3");
        assert_eq!(v(0xAB, 8).to_hex_string(), "ab");
        assert_eq!(LogicVec::unknown(8).to_hex_string(), "xx");
        assert_eq!(LogicVec::unknown(8).to_decimal_string(), "x");
        assert_eq!(format!("{}", v(5, 4)), "4'b0101");
    }

    #[test]
    fn truthiness() {
        assert_eq!(v(0, 4).truthiness(), Some(false));
        assert_eq!(v(2, 4).truthiness(), Some(true));
        assert_eq!(LogicVec::unknown(4).truthiness(), None);
        // 1 anywhere wins over x.
        let mixed = LogicVec::from_bits(vec![Logic::X, Logic::One], false);
        assert_eq!(mixed.truthiness(), Some(true));
    }

    #[test]
    fn neg_two_complement() {
        assert_eq!(v(1, 4).neg().to_u64(), Some(15));
        assert_eq!(LogicVec::from_i64(-4, 8).neg().to_i64(), Some(4));
    }
}
