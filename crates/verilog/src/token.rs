//! Tokens produced by the [`Lexer`](crate::lexer::Lexer).

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or escaped identifier (`\foo `), with the name resolved.
    Ident(String),
    /// A system identifier such as `$display` (name excludes the `$`).
    SysIdent(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// An integer/based number literal, stored as raw text (e.g. `4'b10xz`).
    Number(String),
    /// A real literal such as `1.5` or `2e3`, stored as raw text.
    Real(String),
    /// A string literal with escapes *not* yet processed (text between quotes).
    Str(String),
    /// A punctuation or operator token.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword if this token is one.
    pub fn as_keyword(&self) -> Option<Keyword> {
        match self {
            TokenKind::Keyword(k) => Some(*k),
            _ => None,
        }
    }

    /// Returns the punctuation if this token is one.
    pub fn as_punct(&self) -> Option<Punct> {
        match self {
            TokenKind::Punct(p) => Some(*p),
            _ => None,
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Verilog-2005 keywords recognised by the front-end.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Keyword {
            $(#[doc = $text] $variant,)+
        }

        impl Keyword {
            /// Looks up a keyword from its source text.
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The canonical source text of the keyword.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Module => "module",
    Endmodule => "endmodule",
    Macromodule => "macromodule",
    Input => "input",
    Output => "output",
    Inout => "inout",
    Wire => "wire",
    Reg => "reg",
    Integer => "integer",
    Real => "real",
    Time => "time",
    Signed => "signed",
    Parameter => "parameter",
    Localparam => "localparam",
    Defparam => "defparam",
    Assign => "assign",
    Always => "always",
    Initial => "initial",
    Begin => "begin",
    End => "end",
    If => "if",
    Else => "else",
    Case => "case",
    Casez => "casez",
    Casex => "casex",
    Endcase => "endcase",
    Default => "default",
    For => "for",
    While => "while",
    Repeat => "repeat",
    Forever => "forever",
    Posedge => "posedge",
    Negedge => "negedge",
    Or => "or",
    And => "and",
    Not => "not",
    Nand => "nand",
    Nor => "nor",
    Xor => "xor",
    Xnor => "xnor",
    Buf => "buf",
    Function => "function",
    Endfunction => "endfunction",
    Task => "task",
    Endtask => "endtask",
    Generate => "generate",
    Endgenerate => "endgenerate",
    Genvar => "genvar",
    Wait => "wait",
    Disable => "disable",
    Deassign => "deassign",
    Force => "force",
    Release => "release",
    Fork => "fork",
    Join => "join",
    Supply0 => "supply0",
    Supply1 => "supply1",
    Tri => "tri",
    Event => "event",
    Specify => "specify",
    Endspecify => "endspecify",
    Primitive => "primitive",
    Endprimitive => "endprimitive",
    Table => "table",
    Endtable => "endtable",
    Automatic => "automatic",
    Scalared => "scalared",
    Vectored => "vectored",
    Edge => "edge",
    Cmos => "cmos",
    Pulldown => "pulldown",
    Pullup => "pullup",
}

macro_rules! puncts {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Operator and punctuation tokens.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Punct {
            $(#[doc = $text] $variant,)+
        }

        impl Punct {
            /// The canonical source text of the punctuation.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Punct::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

puncts! {
    LParen => "(",
    RParen => ")",
    LBracket => "[",
    RBracket => "]",
    LBrace => "{",
    RBrace => "}",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    Colon => ":",
    At => "@",
    Hash => "#",
    Question => "?",
    Assign => "=",
    PlusColon => "+:",
    MinusColon => "-:",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Power => "**",
    Slash => "/",
    Percent => "%",
    Bang => "!",
    Tilde => "~",
    Amp => "&",
    Pipe => "|",
    Caret => "^",
    TildeAmp => "~&",
    TildePipe => "~|",
    TildeCaret => "~^",
    CaretTilde => "^~",
    AmpAmp => "&&",
    PipePipe => "||",
    EqEq => "==",
    NotEq => "!=",
    CaseEq => "===",
    CaseNotEq => "!==",
    Lt => "<",
    LtEq => "<=",
    Gt => ">",
    GtEq => ">=",
    Shl => "<<",
    Shr => ">>",
    AShl => "<<<",
    AShr => ">>>",
    Arrow => "->",
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::SysIdent(s) => write!(f, "system identifier `${s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Number(s) => write!(f, "number `{s}`"),
            TokenKind::Real(s) => write!(f, "real `{s}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::Module, Keyword::Endmodule, Keyword::Posedge] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("notakeyword"), None);
    }

    #[test]
    fn punct_text() {
        assert_eq!(Punct::AShr.as_str(), ">>>");
        assert_eq!(Punct::CaseEq.as_str(), "===");
        assert_eq!(format!("{}", Punct::LtEq), "<=");
    }

    #[test]
    fn token_kind_display() {
        assert_eq!(
            format!("{}", TokenKind::Ident("clk".into())),
            "identifier `clk`"
        );
        assert_eq!(format!("{}", TokenKind::Eof), "end of input");
    }

    #[test]
    fn token_kind_accessors() {
        assert_eq!(
            TokenKind::Keyword(Keyword::Module).as_keyword(),
            Some(Keyword::Module)
        );
        assert_eq!(TokenKind::Punct(Punct::Semi).as_punct(), Some(Punct::Semi));
        assert_eq!(TokenKind::Eof.as_keyword(), None);
        assert_eq!(TokenKind::Eof.as_punct(), None);
    }
}
