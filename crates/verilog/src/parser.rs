//! Recursive-descent parser for the Verilog-2005 subset.
//!
//! The grammar covers everything the VGen benchmark exercises: ANSI and
//! non-ANSI module headers, net/reg/integer declarations with packed and
//! unpacked ranges, parameters, continuous assigns, `always`/`initial`
//! processes with the full procedural statement set, module and gate
//! instantiation, and the complete operator precedence ladder.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::number::parse_number;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use vgen_obs::CancelToken;

/// Parses a full source file (one or more modules).
///
/// # Errors
///
/// Returns the first lexical or syntactic error. The error's
/// [`render`](ParseError::render) method resolves line/column against `src`.
///
/// ```
/// use vgen_verilog::parse;
/// let file = parse("module m(input a, output y); assign y = ~a; endmodule")?;
/// assert_eq!(file.modules[0].name, "m");
/// # Ok::<(), vgen_verilog::error::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    parse_with_cancel(src, &CancelToken::unlimited())
}

/// [`parse`] under a cooperative [`CancelToken`]: the parser polls the
/// token every [`CANCEL_POLL_WORK`] units of work (roughly, grammar
/// productions) and bails out with a [`ParseError::cancelled_at`] error —
/// `cancelled == true` — once it trips. With an
/// [unlimited](CancelToken::unlimited) token the polls cost one relaxed
/// atomic load each and the behaviour is identical to [`parse`].
pub fn parse_with_cancel(src: &str, cancel: &CancelToken) -> Result<SourceFile, ParseError> {
    let _span = vgen_obs::span("parse");
    let tokens = Lexer::new(src).tokenize()?;
    // Lexing is linear and allocation-light; one poll after it bounds the
    // damage of a multi-megabyte input without instrumenting the scan loop.
    if cancel.poll() {
        return Err(ParseError::cancelled_at(Span::default()));
    }
    if tokens.len() > MAX_TOKENS {
        let span = tokens[MAX_TOKENS].span;
        return Err(ParseError::new(
            format!("input exceeds {MAX_TOKENS} tokens"),
            span,
        ));
    }
    Parser::with_cancel(tokens, cancel.clone()).parse_source_file()
}

/// Checks whether `src` is syntactically valid — the "compiles" check used
/// by the evaluation harness (mirrors `iverilog` syntax checking).
pub fn syntax_check(src: &str) -> Result<(), ParseError> {
    parse(src).map(|_| ())
}

/// Token-count ceiling for one source file. LLM completions that blow past
/// this (comment bombs, repeated garbage) are rejected up front instead of
/// being carried through the whole pipeline.
pub const MAX_TOKENS: usize = 400_000;

/// Nesting-depth ceiling for expressions and statements combined. Keeps a
/// pathological completion (`((((…))))`, thousand-deep `begin` blocks) from
/// overflowing the parser's stack; such inputs become a [`ParseError`].
///
/// Sized for the worst case: each statement level costs ~3 stack frames in
/// an unoptimised build, and the checker must survive on a 2 MiB test
/// thread, so the ceiling stays well under that even in debug builds.
pub const MAX_NEST_DEPTH: usize = 100;

/// Units of parser work (grammar productions entered, module items started)
/// between [`CancelToken`] polls. Large enough that the clock read
/// amortises to noise, small enough that a near-[`MAX_TOKENS`] input still
/// observes its deadline within a few milliseconds of work.
pub const CANCEL_POLL_WORK: u32 = 1024;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression/statement nesting depth (recursion guard).
    depth: usize,
    /// Cooperative cancellation handle (unlimited by default).
    cancel: CancelToken,
    /// Work counter driving periodic [`CancelToken::poll`] calls.
    work: u32,
}

impl Parser {
    fn with_cancel(tokens: Vec<Token>, cancel: CancelToken) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
            cancel,
            work: 0,
        }
    }

    /// Counts one unit of work; every [`CANCEL_POLL_WORK`] units, polls the
    /// cancel token and errors out if it has tripped.
    fn check_cancel(&mut self) -> Result<(), ParseError> {
        self.work = self.work.wrapping_add(1);
        if self.work.is_multiple_of(CANCEL_POLL_WORK) && self.cancel.poll() {
            return Err(ParseError::cancelled_at(self.span()));
        }
        Ok(())
    }

    /// Bumps the recursion guard; errors out beyond [`MAX_NEST_DEPTH`].
    fn enter(&mut self) -> Result<(), ParseError> {
        self.check_cancel()?;
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return Err(ParseError::new(
                format!("nesting exceeds {MAX_NEST_DEPTH} levels"),
                self.span(),
            ));
        }
        Ok(())
    }

    fn exit(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: Punct) -> bool {
        self.peek().as_punct() == Some(p)
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        self.peek().as_keyword() == Some(k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span, ParseError> {
        if self.at_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<Span, ParseError> {
        if self.at_keyword(k) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("`{k}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek() {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok((s, t.span)),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::new(
            format!("expected {wanted}, found {}", self.peek()),
            self.span(),
        )
    }

    // ---------------------------------------------------------- source file

    fn parse_source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.at_keyword(Keyword::Module) || self.at_keyword(Keyword::Macromodule) {
                modules.push(self.parse_module()?);
            } else {
                return Err(self.unexpected("`module`"));
            }
        }
        if modules.is_empty() {
            return Err(ParseError::new("no module definition found", self.span()));
        }
        Ok(SourceFile { modules })
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let start = self.bump().span; // module / macromodule
        let (name, _) = self.expect_ident()?;
        let mut ports = Vec::new();
        let mut items = Vec::new();

        // Optional parameter port list: #(parameter W = 8, ...)
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            loop {
                let p = self.parse_param_decl(false)?;
                items.push(Item::Param(p));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }

        if self.eat_punct(Punct::LParen) {
            if !self.at_punct(Punct::RParen) {
                self.parse_port_list(&mut ports, &mut items)?;
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::Semi)?;

        while !self.at_keyword(Keyword::Endmodule) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(ParseError::new(
                    format!("missing `endmodule` for module `{name}`"),
                    self.span(),
                ));
            }
            items.push(self.parse_item()?);
        }
        let end = self.expect_keyword(Keyword::Endmodule)?;
        Ok(Module {
            name,
            ports,
            items,
            span: start.to(end),
        })
    }

    /// Parses the header port list, handling both ANSI (`input clk, ...`)
    /// and non-ANSI (`clk, rst`) styles, including mixed trailing names that
    /// inherit the previous direction (`input a, b, output c`).
    fn parse_port_list(
        &mut self,
        ports: &mut Vec<String>,
        items: &mut Vec<Item>,
    ) -> Result<(), ParseError> {
        let mut cur: Option<Decl> = None;
        loop {
            let dir = self.parse_opt_dir();
            if dir.is_some() {
                // Flush the previous direction group.
                if let Some(d) = cur.take() {
                    items.push(Item::Decl(d));
                }
                let kind = self.parse_opt_net_kind();
                let signed = self.eat_keyword(Keyword::Signed);
                let range = self.parse_opt_range()?;
                let (pname, pspan) = self.expect_ident()?;
                ports.push(pname.clone());
                cur = Some(Decl {
                    dir,
                    kind,
                    signed,
                    range,
                    names: vec![Declarator {
                        name: pname,
                        dims: vec![],
                        init: None,
                        span: pspan,
                    }],
                    span: pspan,
                });
            } else {
                let (pname, pspan) = self.expect_ident()?;
                ports.push(pname.clone());
                if let Some(d) = cur.as_mut() {
                    // Continuation of an ANSI group: `input a, b`.
                    d.names.push(Declarator {
                        name: pname,
                        dims: vec![],
                        init: None,
                        span: pspan,
                    });
                    d.span = d.span.to(pspan);
                }
                // Else: non-ANSI port, declared later in the body.
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        if let Some(d) = cur.take() {
            items.push(Item::Decl(d));
        }
        Ok(())
    }

    fn parse_opt_dir(&mut self) -> Option<PortDir> {
        let dir = match self.peek().as_keyword()? {
            Keyword::Input => PortDir::Input,
            Keyword::Output => PortDir::Output,
            Keyword::Inout => PortDir::Inout,
            _ => return None,
        };
        self.bump();
        Some(dir)
    }

    fn parse_opt_net_kind(&mut self) -> Option<NetKind> {
        let kind = match self.peek().as_keyword()? {
            Keyword::Wire | Keyword::Tri => NetKind::Wire,
            Keyword::Reg => NetKind::Reg,
            Keyword::Integer => NetKind::Integer,
            Keyword::Time => NetKind::Time,
            Keyword::Real => NetKind::Real,
            Keyword::Supply0 => NetKind::Supply0,
            Keyword::Supply1 => NetKind::Supply1,
            _ => return None,
        };
        self.bump();
        Some(kind)
    }

    fn parse_opt_range(&mut self) -> Result<Option<Range>, ParseError> {
        if !self.at_punct(Punct::LBracket) {
            return Ok(None);
        }
        self.bump();
        let msb = self.parse_expr()?;
        self.expect_punct(Punct::Colon)?;
        let lsb = self.parse_expr()?;
        self.expect_punct(Punct::RBracket)?;
        Ok(Some(Range { msb, lsb }))
    }

    // --------------------------------------------------------- module items

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        // Flat files (thousands of small items, little nesting) count work
        // here; deeply nested expressions count it in `enter`.
        self.check_cancel()?;
        let start = self.span();
        match self.peek() {
            TokenKind::Keyword(kw) => match kw {
                Keyword::Input | Keyword::Output | Keyword::Inout => {
                    let dir = self.parse_opt_dir();
                    let kind = self.parse_opt_net_kind();
                    self.parse_decl_tail(dir, kind, start)
                }
                Keyword::Wire
                | Keyword::Tri
                | Keyword::Reg
                | Keyword::Integer
                | Keyword::Time
                | Keyword::Real
                | Keyword::Supply0
                | Keyword::Supply1 => {
                    let kind = self.parse_opt_net_kind();
                    self.parse_decl_tail(None, kind, start)
                }
                Keyword::Parameter => {
                    self.bump();
                    let p = self.parse_param_decl_body(false, start)?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Item::Param(p))
                }
                Keyword::Localparam => {
                    self.bump();
                    let p = self.parse_param_decl_body(true, start)?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Item::Param(p))
                }
                Keyword::Defparam => {
                    self.bump();
                    let (mut path, _) = self.expect_ident()?;
                    while self.eat_punct(Punct::Dot) {
                        let (seg, _) = self.expect_ident()?;
                        path.push('.');
                        path.push_str(&seg);
                    }
                    self.expect_punct(Punct::Assign)?;
                    let value = self.parse_expr()?;
                    let end = self.expect_punct(Punct::Semi)?;
                    Ok(Item::Defparam {
                        path,
                        value,
                        span: start.to(end),
                    })
                }
                Keyword::Assign => {
                    self.bump();
                    let delay = self.parse_opt_delay()?;
                    let mut assigns = Vec::new();
                    loop {
                        let lhs = self.parse_expr()?;
                        self.expect_punct(Punct::Assign)?;
                        let rhs = self.parse_expr()?;
                        assigns.push((lhs, rhs));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    let end = self.expect_punct(Punct::Semi)?;
                    Ok(Item::Assign(AssignItem {
                        delay,
                        assigns,
                        span: start.to(end),
                    }))
                }
                Keyword::Always => {
                    self.bump();
                    let body = self.parse_stmt()?;
                    let span = start.to(body.span);
                    Ok(Item::Always(AlwaysItem { body, span }))
                }
                Keyword::Initial => {
                    self.bump();
                    let body = self.parse_stmt()?;
                    let span = start.to(body.span);
                    Ok(Item::Initial(InitialItem { body, span }))
                }
                Keyword::And
                | Keyword::Or
                | Keyword::Not
                | Keyword::Nand
                | Keyword::Nor
                | Keyword::Xor
                | Keyword::Xnor
                | Keyword::Buf => self.parse_gate(start),
                Keyword::Function => self.parse_function(start),
                Keyword::Task => Err(ParseError::new(
                    "`task` definitions are not supported by this subset",
                    start,
                )),
                Keyword::Generate | Keyword::Genvar => Err(ParseError::new(
                    "generate constructs are not supported by this subset",
                    start,
                )),
                other => Err(ParseError::new(
                    format!("unexpected `{other}` in module body"),
                    start,
                )),
            },
            TokenKind::Ident(_) => self.parse_instance(start),
            _ => Err(self.unexpected("module item")),
        }
    }

    fn parse_decl_tail(
        &mut self,
        dir: Option<PortDir>,
        kind: Option<NetKind>,
        start: Span,
    ) -> Result<Item, ParseError> {
        // `output reg [3:0] q;` — direction may be followed by a kind.
        let kind = match kind {
            Some(k) => Some(k),
            None => self.parse_opt_net_kind(),
        };
        let signed = self.eat_keyword(Keyword::Signed);
        let range = self.parse_opt_range()?;
        let mut names = Vec::new();
        loop {
            let (name, nspan) = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.at_punct(Punct::LBracket) {
                dims.push(self.parse_opt_range()?.expect("checked opening bracket"));
            }
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            names.push(Declarator {
                name,
                dims,
                init,
                span: nspan,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Item::Decl(Decl {
            dir,
            kind,
            signed,
            range,
            names,
            span: start.to(end),
        }))
    }

    fn parse_param_decl(&mut self, local: bool) -> Result<ParamDecl, ParseError> {
        let start = self.span();
        // Inside a parameter port list the keyword is optional after the first.
        self.eat_keyword(Keyword::Parameter);
        self.parse_param_decl_body(local, start)
    }

    /// Parses `[signed] [range] name = expr {, name = expr}` after the
    /// `parameter`/`localparam` keyword.
    fn parse_param_decl_body(&mut self, local: bool, start: Span) -> Result<ParamDecl, ParseError> {
        let signed = self.eat_keyword(Keyword::Signed);
        self.eat_keyword(Keyword::Integer); // `parameter integer N = 4`
        let range = self.parse_opt_range()?;
        let mut assigns = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            self.expect_punct(Punct::Assign)?;
            let value = self.parse_expr()?;
            assigns.push((name, value));
            // In a module body list: `parameter A = 0, B = 1;`. In a header
            // parameter list the comma may instead introduce a new
            // `parameter` keyword, handled by the caller — stop if the next
            // token after the comma is a keyword.
            if self.at_punct(Punct::Comma)
                && matches!(self.peek_at(1), TokenKind::Ident(_))
                && self.peek_at(2).as_punct() == Some(Punct::Assign)
            {
                self.bump();
                continue;
            }
            break;
        }
        Ok(ParamDecl {
            local,
            signed,
            range,
            assigns,
            span: start.to(self.prev_span()),
        })
    }

    /// Parses `function [automatic] [signed] [range] name; {decls} stmt
    /// endfunction`. ANSI-style argument lists in the header are also
    /// accepted: `function [3:0] f(input [3:0] a);`.
    fn parse_function(&mut self, start: Span) -> Result<Item, ParseError> {
        self.expect_keyword(Keyword::Function)?;
        self.eat_keyword(Keyword::Automatic);
        let signed = self.eat_keyword(Keyword::Signed);
        let range = self.parse_opt_range()?;
        let (name, _) = self.expect_ident()?;
        let mut decls = Vec::new();
        if self.eat_punct(Punct::LParen) {
            // ANSI header arguments.
            if !self.at_punct(Punct::RParen) {
                loop {
                    let dstart = self.span();
                    let dir = self.parse_opt_dir();
                    if dir.is_none() {
                        return Err(self.unexpected("`input` argument declaration"));
                    }
                    let kind = self.parse_opt_net_kind();
                    let dsigned = self.eat_keyword(Keyword::Signed);
                    let drange = self.parse_opt_range()?;
                    let (aname, aspan) = self.expect_ident()?;
                    decls.push(Decl {
                        dir,
                        kind,
                        signed: dsigned,
                        range: drange,
                        names: vec![Declarator {
                            name: aname,
                            dims: vec![],
                            init: None,
                            span: aspan,
                        }],
                        span: dstart.to(aspan),
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::Semi)?;
        // Non-ANSI input/local declarations before the body.
        loop {
            let dstart = self.span();
            match self.peek().as_keyword() {
                Some(Keyword::Input) => {
                    let dir = self.parse_opt_dir();
                    let kind = self.parse_opt_net_kind();
                    match self.parse_decl_tail(dir, kind, dstart)? {
                        Item::Decl(d) => decls.push(d),
                        _ => unreachable!("decl tail returns Decl"),
                    }
                }
                Some(Keyword::Reg | Keyword::Integer | Keyword::Time) => {
                    let kind = self.parse_opt_net_kind();
                    match self.parse_decl_tail(None, kind, dstart)? {
                        Item::Decl(d) => decls.push(d),
                        _ => unreachable!("decl tail returns Decl"),
                    }
                }
                _ => break,
            }
        }
        let body = self.parse_stmt()?;
        let end = self.expect_keyword(Keyword::Endfunction)?;
        Ok(Item::Function(FunctionDecl {
            name,
            signed,
            range,
            decls,
            body,
            span: start.to(end),
        }))
    }

    fn parse_gate(&mut self, start: Span) -> Result<Item, ParseError> {
        let kind = match self.bump().kind.as_keyword().expect("gate keyword") {
            Keyword::And => GateKind::And,
            Keyword::Or => GateKind::Or,
            Keyword::Not => GateKind::Not,
            Keyword::Nand => GateKind::Nand,
            Keyword::Nor => GateKind::Nor,
            Keyword::Xor => GateKind::Xor,
            Keyword::Xnor => GateKind::Xnor,
            Keyword::Buf => GateKind::Buf,
            _ => unreachable!("caller matched a gate keyword"),
        };
        let name = if let TokenKind::Ident(_) = self.peek() {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect_punct(Punct::LParen)?;
        let mut conns = Vec::new();
        loop {
            conns.push(self.parse_expr()?);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        let end = self.expect_punct(Punct::Semi)?;
        if conns.len() < 2 {
            return Err(ParseError::new(
                "gate primitive needs an output and at least one input",
                start.to(end),
            ));
        }
        Ok(Item::Gate(GateInstance {
            kind,
            name,
            conns,
            span: start.to(end),
        }))
    }

    fn parse_instance(&mut self, start: Span) -> Result<Item, ParseError> {
        let (module, _) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            params = self.parse_connection_list()?;
            self.expect_punct(Punct::RParen)?;
        }
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let conns = if self.at_punct(Punct::RParen) {
            Vec::new()
        } else {
            self.parse_connection_list()?
        };
        self.expect_punct(Punct::RParen)?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Item::Instance(Instance {
            module,
            params,
            name,
            conns,
            span: start.to(end),
        }))
    }

    fn parse_connection_list(&mut self) -> Result<Vec<Connection>, ParseError> {
        let mut conns = Vec::new();
        loop {
            if self.eat_punct(Punct::Dot) {
                let (port, _) = self.expect_ident()?;
                self.expect_punct(Punct::LParen)?;
                let expr = if self.at_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                conns.push(Connection::Named(port, expr));
            } else {
                conns.push(Connection::Positional(self.parse_expr()?));
            }
            if !self.eat_punct(Punct::Comma) {
                return Ok(conns);
            }
        }
    }

    // ----------------------------------------------------------- statements

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let result = self.parse_stmt_inner();
        self.exit();
        result
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        match self.peek() {
            TokenKind::Keyword(Keyword::Begin) => self.parse_block(start),
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                let end = els.as_ref().map(|e| e.span).unwrap_or(then.span);
                Ok(Stmt {
                    kind: StmtKind::If { cond, then, els },
                    span: start.to(end),
                })
            }
            TokenKind::Keyword(k @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                let kind = match k {
                    Keyword::Case => CaseKind::Exact,
                    Keyword::Casez => CaseKind::Z,
                    _ => CaseKind::X,
                };
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let mut arms = Vec::new();
                while !self.at_keyword(Keyword::Endcase) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(ParseError::new("missing `endcase`", self.span()));
                    }
                    arms.push(self.parse_case_arm()?);
                }
                let end = self.expect_keyword(Keyword::Endcase)?;
                Ok(Stmt {
                    kind: StmtKind::Case { kind, expr, arms },
                    span: start.to(end),
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init_lhs = self.parse_expr()?;
                self.expect_punct(Punct::Assign)?;
                let init_rhs = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                let step_lhs = self.parse_expr()?;
                self.expect_punct(Punct::Assign)?;
                let step_rhs = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let span = start.to(body.span);
                Ok(Stmt {
                    kind: StmtKind::For {
                        init: Box::new((init_lhs, init_rhs)),
                        cond,
                        step: Box::new((step_lhs, step_rhs)),
                        body,
                    },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let span = start.to(body.span);
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Repeat) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let count = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let span = start.to(body.span);
                Ok(Stmt {
                    kind: StmtKind::Repeat { count, body },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Forever) => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                let span = start.to(body.span);
                Ok(Stmt {
                    kind: StmtKind::Forever { body },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Wait) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let stmt = self.parse_opt_substmt()?;
                Ok(Stmt {
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Wait { cond, stmt },
                })
            }
            TokenKind::Keyword(Keyword::Disable) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                let end = self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Disable(name),
                    span: start.to(end),
                })
            }
            TokenKind::Punct(Punct::Hash) => {
                self.bump();
                let amount = self.parse_delay_value()?;
                let stmt = self.parse_opt_substmt()?;
                Ok(Stmt {
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Delay { amount, stmt },
                })
            }
            TokenKind::Punct(Punct::At) => {
                self.bump();
                let control = self.parse_event_control()?;
                let stmt = self.parse_opt_substmt()?;
                Ok(Stmt {
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Event { control, stmt },
                })
            }
            TokenKind::SysIdent(_) => {
                let name = match self.bump().kind {
                    TokenKind::SysIdent(s) => s,
                    _ => unreachable!(),
                };
                let mut args = Vec::new();
                if self.eat_punct(Punct::LParen) {
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                }
                let end = self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::SysCall { name, args },
                    span: start.to(end),
                })
            }
            TokenKind::Punct(Punct::Semi) => {
                let end = self.bump().span;
                Ok(Stmt {
                    kind: StmtKind::Null,
                    span: end,
                })
            }
            TokenKind::Ident(_) | TokenKind::Punct(Punct::LBrace) => {
                self.parse_assign_or_call(start)
            }
            _ => Err(self.unexpected("statement")),
        }
    }

    fn parse_opt_substmt(&mut self) -> Result<Option<Box<Stmt>>, ParseError> {
        if self.eat_punct(Punct::Semi) {
            Ok(None)
        } else {
            Ok(Some(Box::new(self.parse_stmt()?)))
        }
    }

    fn parse_block(&mut self, start: Span) -> Result<Stmt, ParseError> {
        self.expect_keyword(Keyword::Begin)?;
        let name = if self.eat_punct(Punct::Colon) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        let mut decls = Vec::new();
        // Local declarations are only allowed at the top of the block.
        loop {
            let dstart = self.span();
            match self.peek().as_keyword() {
                Some(Keyword::Reg | Keyword::Integer | Keyword::Time | Keyword::Real) => {
                    let kind = self.parse_opt_net_kind();
                    match self.parse_decl_tail(None, kind, dstart)? {
                        Item::Decl(d) => decls.push(d),
                        _ => unreachable!("decl tail returns Decl"),
                    }
                }
                _ => break,
            }
        }
        let mut stmts = Vec::new();
        while !self.at_keyword(Keyword::End) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(ParseError::new("missing `end`", self.span()));
            }
            stmts.push(self.parse_stmt()?);
        }
        let end = self.expect_keyword(Keyword::End)?;
        Ok(Stmt {
            kind: StmtKind::Block { name, decls, stmts },
            span: start.to(end),
        })
    }

    fn parse_case_arm(&mut self) -> Result<CaseArm, ParseError> {
        if self.eat_keyword(Keyword::Default) {
            self.eat_punct(Punct::Colon);
            let body = self.parse_stmt()?;
            return Ok(CaseArm {
                labels: vec![],
                body,
            });
        }
        let mut labels = vec![self.parse_expr()?];
        while self.eat_punct(Punct::Comma) {
            labels.push(self.parse_expr()?);
        }
        self.expect_punct(Punct::Colon)?;
        let body = self.parse_stmt()?;
        Ok(CaseArm { labels, body })
    }

    fn parse_event_control(&mut self) -> Result<EventControl, ParseError> {
        if self.eat_punct(Punct::Star) {
            return Ok(EventControl::Star);
        }
        self.expect_punct(Punct::LParen)?;
        if self.eat_punct(Punct::Star) {
            self.expect_punct(Punct::RParen)?;
            return Ok(EventControl::Star);
        }
        let mut terms = Vec::new();
        loop {
            let edge = if self.eat_keyword(Keyword::Posedge) {
                Some(Edge::Pos)
            } else if self.eat_keyword(Keyword::Negedge) {
                Some(Edge::Neg)
            } else {
                None
            };
            let expr = self.parse_expr()?;
            terms.push(EventExpr { edge, expr });
            if self.eat_keyword(Keyword::Or) || self.eat_punct(Punct::Comma) {
                continue;
            }
            break;
        }
        self.expect_punct(Punct::RParen)?;
        Ok(EventControl::List(terms))
    }

    fn parse_opt_delay(&mut self) -> Result<Option<Expr>, ParseError> {
        if !self.eat_punct(Punct::Hash) {
            return Ok(None);
        }
        Ok(Some(self.parse_delay_value()?))
    }

    fn parse_delay_value(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct(Punct::LParen) {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            return Ok(e);
        }
        // A delay is a primary: number, real or identifier.
        self.parse_primary()
    }

    /// Parses a statement starting with an lvalue: a procedural assignment
    /// (`x = e;`, `x <= e;`, with optional intra-assignment delay) or a task
    /// call (`t(args);` / `t;`).
    fn parse_assign_or_call(&mut self, start: Span) -> Result<Stmt, ParseError> {
        // Task call: ident ( ... ) ; or ident ;
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek_at(1).as_punct() == Some(Punct::Semi) {
                self.bump();
                let end = self.bump().span;
                return Ok(Stmt {
                    kind: StmtKind::TaskCall { name, args: vec![] },
                    span: start.to(end),
                });
            }
        }
        // Lvalues are postfix expressions (identifier, select, concat);
        // using the full expression parser here would swallow `q <= x` as a
        // comparison.
        let lhs = self.parse_postfix()?;
        let op = if self.eat_punct(Punct::Assign) {
            AssignOp::Blocking
        } else if self.eat_punct(Punct::LtEq) {
            AssignOp::NonBlocking
        } else if self.at_punct(Punct::Semi) {
            // `foo(args);` parsed as a call expression — degrade to TaskCall.
            if let ExprKind::Call { name, args } = lhs.kind {
                let end = self.bump().span;
                return Ok(Stmt {
                    kind: StmtKind::TaskCall { name, args },
                    span: start.to(end),
                });
            }
            return Err(self.unexpected("`=` or `<=`"));
        } else {
            return Err(self.unexpected("`=` or `<=`"));
        };
        let delay = self.parse_opt_delay()?;
        let rhs = self.parse_expr()?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Assign {
                lhs,
                op,
                delay,
                rhs,
            },
            span: start.to(end),
        })
    }

    // ---------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.parse_ternary_inner();
        self.exit();
        result
    }

    fn parse_ternary_inner(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(cond);
        }
        let then = self.parse_ternary()?;
        self.expect_punct(Punct::Colon)?;
        let els = self.parse_ternary()?;
        let span = cond.span.to(els.span);
        Ok(Expr::new(
            ExprKind::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
            span,
        ))
    }

    /// Precedence-climbing binary expression parser. Level 0 is `||`.
    fn parse_binary(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.parse_binary_inner(min_level);
        self.exit();
        result
    }

    fn parse_binary_inner(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let Some((op, level)) = self.peek_binary_op() else {
                return Ok(lhs);
            };
            if level < min_level {
                return Ok(lhs);
            }
            self.bump();
            // All supported binary operators are left-associative except
            // `**`, which is right-associative.
            let next_min = if op == BinaryOp::Pow {
                level
            } else {
                level + 1
            };
            let rhs = self.parse_binary(next_min)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn peek_binary_op(&self) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        use Punct as P;
        let op = match self.peek().as_punct()? {
            P::PipePipe => (LogicOr, 0),
            P::AmpAmp => (LogicAnd, 1),
            P::Pipe => (BitOr, 2),
            P::Caret => (BitXor, 3),
            P::TildeCaret | P::CaretTilde => (BitXnor, 3),
            P::Amp => (BitAnd, 4),
            P::EqEq => (Eq, 5),
            P::NotEq => (Ne, 5),
            P::CaseEq => (CaseEq, 5),
            P::CaseNotEq => (CaseNe, 5),
            P::Lt => (Lt, 6),
            P::LtEq => (Le, 6),
            P::Gt => (Gt, 6),
            P::GtEq => (Ge, 6),
            P::Shl => (Shl, 7),
            P::Shr => (Shr, 7),
            P::AShl => (AShl, 7),
            P::AShr => (AShr, 7),
            P::Plus => (Add, 8),
            P::Minus => (Sub, 8),
            P::Star => (Mul, 9),
            P::Slash => (Div, 9),
            P::Percent => (Rem, 9),
            P::Power => (Pow, 10),
            _ => return None,
        };
        Some(op)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        // Every operand passes through here, so this one guard bounds all
        // expression recursion (parens, unary chains, `**` right recursion).
        self.enter()?;
        let result = self.parse_unary_inner();
        self.exit();
        result
    }

    fn parse_unary_inner(&mut self) -> Result<Expr, ParseError> {
        use Punct as P;
        use UnaryOp::*;
        let start = self.span();
        let op = match self.peek().as_punct() {
            Some(P::Plus) => Some(Plus),
            Some(P::Minus) => Some(Neg),
            Some(P::Bang) => Some(LogicNot),
            Some(P::Tilde) => Some(BitNot),
            Some(P::Amp) => Some(ReduceAnd),
            Some(P::Pipe) => Some(ReduceOr),
            Some(P::Caret) => Some(ReduceXor),
            Some(P::TildeAmp) => Some(ReduceNand),
            Some(P::TildePipe) => Some(ReduceNor),
            Some(P::TildeCaret) | Some(P::CaretTilde) => Some(ReduceXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.parse_unary()?;
            let span = start.to(arg.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    arg: Box::new(arg),
                },
                span,
            ));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            if !self.at_punct(Punct::LBracket) {
                return Ok(expr);
            }
            self.bump();
            let first = self.parse_expr()?;
            if self.eat_punct(Punct::Colon) {
                let lsb = self.parse_expr()?;
                let end = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::PartSelect {
                        base: Box::new(expr),
                        msb: Box::new(first),
                        lsb: Box::new(lsb),
                    },
                    span,
                );
            } else if self.eat_punct(Punct::PlusColon) || {
                // distinguish +: and -: (already lexed as single tokens)
                false
            } {
                let width = self.parse_expr()?;
                let end = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::IndexedSelect {
                        base: Box::new(expr),
                        start: Box::new(first),
                        width: Box::new(width),
                        ascending: true,
                    },
                    span,
                );
            } else if self.eat_punct(Punct::MinusColon) {
                let width = self.parse_expr()?;
                let end = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::IndexedSelect {
                        base: Box::new(expr),
                        start: Box::new(first),
                        width: Box::new(width),
                        ascending: false,
                    },
                    span,
                );
            } else {
                let end = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::Index {
                        base: Box::new(expr),
                        index: Box::new(first),
                    },
                    span,
                );
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Number(text) => {
                self.bump();
                let value = parse_number(&text).map_err(|e| ParseError::new(e.message, start))?;
                Ok(Expr::number(value, start))
            }
            TokenKind::Real(text) => {
                self.bump();
                Ok(Expr::new(ExprKind::Real(text), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at_punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen)?;
                    return Ok(Expr::new(ExprKind::Call { name, args }, start.to(end)));
                }
                Ok(Expr::ident(name, start))
            }
            TokenKind::SysIdent(name) => {
                self.bump();
                let mut args = Vec::new();
                if self.eat_punct(Punct::LParen) {
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                }
                Ok(Expr::new(
                    ExprKind::SysCall { name, args },
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(inner)
            }
            TokenKind::Punct(Punct::LBrace) => self.parse_concat(start),
            _ => Err(self.unexpected("expression")),
        }
    }

    fn parse_concat(&mut self, start: Span) -> Result<Expr, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let first = self.parse_expr()?;
        // Replication: `{count{items}}`.
        if self.at_punct(Punct::LBrace) {
            self.bump();
            let mut items = Vec::new();
            loop {
                items.push(self.parse_expr()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            let end = self.expect_punct(Punct::RBrace)?;
            return Ok(Expr::new(
                ExprKind::Replicate {
                    count: Box::new(first),
                    items,
                },
                start.to(end),
            ));
        }
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            items.push(self.parse_expr()?);
        }
        let end = self.expect_punct(Punct::RBrace)?;
        Ok(Expr::new(ExprKind::Concat(items), start.to(end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SourceFile {
        match parse(src) {
            Ok(f) => f,
            Err(e) => panic!("parse failed: {}\nsource:\n{src}", e.render(src)),
        }
    }

    #[test]
    fn simple_wire_module() {
        let f = parse_ok("module w(input a, output b); assign b = a; endmodule");
        let m = &f.modules[0];
        assert_eq!(m.name, "w");
        assert_eq!(m.ports, vec!["a", "b"]);
        assert_eq!(m.items.len(), 3); // two port decls + assign
    }

    #[test]
    fn ansi_header_with_reg_and_range() {
        let f = parse_ok("module c(input clk, input reset, output reg [3:0] q); endmodule");
        let m = &f.modules[0];
        assert_eq!(m.ports, vec!["clk", "reset", "q"]);
        let Item::Decl(d) = &m.items[2] else {
            panic!("expected decl")
        };
        assert_eq!(d.dir, Some(PortDir::Output));
        assert_eq!(d.kind, Some(NetKind::Reg));
        assert!(d.range.is_some());
    }

    #[test]
    fn header_direction_groups() {
        let f = parse_ok("module m(input a, b, output c); endmodule");
        let m = &f.modules[0];
        assert_eq!(m.ports, vec!["a", "b", "c"]);
        let Item::Decl(d) = &m.items[0] else { panic!() };
        assert_eq!(d.names.len(), 2);
    }

    #[test]
    fn non_ansi_ports() {
        let f = parse_ok("module m(a, y);\ninput a;\noutput y;\nwire a;\nassign y = a;\nendmodule");
        assert_eq!(f.modules[0].ports, vec!["a", "y"]);
    }

    #[test]
    fn always_posedge_nonblocking() {
        let f = parse_ok(
            "module m(input clk, output reg q);\n\
             always @(posedge clk) q <= ~q;\nendmodule",
        );
        let Item::Always(a) = &f.modules[0].items[2] else {
            panic!()
        };
        let StmtKind::Event { control, stmt } = &a.body.kind else {
            panic!()
        };
        let EventControl::List(terms) = control else {
            panic!()
        };
        assert_eq!(terms[0].edge, Some(Edge::Pos));
        let StmtKind::Assign { op, .. } = &stmt.as_ref().expect("stmt").kind else {
            panic!()
        };
        assert_eq!(*op, AssignOp::NonBlocking);
    }

    #[test]
    fn sensitivity_star_variants() {
        for src in [
            "module m(input a, output reg y); always @* y = a; endmodule",
            "module m(input a, output reg y); always @(*) y = a; endmodule",
        ] {
            let f = parse_ok(src);
            let Item::Always(a) = &f.modules[0].items[2] else {
                panic!()
            };
            let StmtKind::Event { control, .. } = &a.body.kind else {
                panic!()
            };
            assert_eq!(*control, EventControl::Star);
        }
    }

    #[test]
    fn event_list_or_and_comma() {
        for src in [
            "module m(input a, b, output reg y); always @(a or b) y = a & b; endmodule",
            "module m(input a, b, output reg y); always @(a, b) y = a & b; endmodule",
        ] {
            let f = parse_ok(src);
            let Item::Always(al) = f.modules[0]
                .items
                .iter()
                .find(|i| matches!(i, Item::Always(_)))
                .expect("always")
            else {
                panic!()
            };
            let StmtKind::Event {
                control: EventControl::List(terms),
                ..
            } = &al.body.kind
            else {
                panic!()
            };
            assert_eq!(terms.len(), 2);
        }
    }

    #[test]
    fn case_statement_with_default() {
        let f = parse_ok(
            "module m(input [1:0] s, output reg y);\nalways @(*) begin\n\
             case (s)\n2'b00: y = 0;\n2'b01, 2'b10: y = 1;\ndefault: y = 0;\nendcase\nend\nendmodule",
        );
        let Item::Always(a) = &f.modules[0].items[2] else {
            panic!()
        };
        let StmtKind::Event { stmt, .. } = &a.body.kind else {
            panic!()
        };
        let StmtKind::Block { stmts, .. } = &stmt.as_ref().expect("block").kind else {
            panic!()
        };
        let StmtKind::Case { arms, .. } = &stmts[0].kind else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[1].labels.len(), 2);
        assert!(arms[2].labels.is_empty());
    }

    #[test]
    fn parameters_and_localparams() {
        let f = parse_ok(
            "module m;\nparameter IDLE = 0, SA = 1, SB = 2, SAB = 3;\n\
             localparam W = 4;\nendmodule",
        );
        let Item::Param(p) = &f.modules[0].items[0] else {
            panic!()
        };
        assert_eq!(p.assigns.len(), 4);
        assert!(!p.local);
        let Item::Param(lp) = &f.modules[0].items[1] else {
            panic!()
        };
        assert!(lp.local);
    }

    #[test]
    fn memory_declaration() {
        let f = parse_ok("module m;\nreg [7:0] mem [0:63];\nendmodule");
        let Item::Decl(d) = &f.modules[0].items[0] else {
            panic!()
        };
        assert_eq!(d.names[0].dims.len(), 1);
    }

    #[test]
    fn module_instance_named_and_positional() {
        let f = parse_ok(
            "module tb;\nwire a, y;\nsub u1(.a(a), .y(y));\nsub u2(a, y);\n\
             sub #(.W(4)) u3(.a(a), .y());\nendmodule",
        );
        let insts: Vec<&Instance> = f.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Instance(inst) => Some(inst),
                _ => None,
            })
            .collect();
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[0].conns.len(), 2);
        assert!(matches!(insts[1].conns[0], Connection::Positional(_)));
        assert_eq!(insts[2].params.len(), 1);
        assert!(matches!(insts[2].conns[1], Connection::Named(_, None)));
    }

    #[test]
    fn gate_primitives() {
        let f = parse_ok(
            "module g(input a, b, output y1, y2);\nand g1(y1, a, b);\nor (y2, a, b);\nendmodule",
        );
        let gates: Vec<&GateInstance> = f.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Gate(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(gates.len(), 2);
        assert_eq!(gates[0].kind, GateKind::And);
        assert_eq!(gates[1].name, None);
    }

    #[test]
    fn initial_with_delays_and_syscalls() {
        let f = parse_ok(
            "module tb;\nreg clk;\ninitial begin\nclk = 0;\n#5 clk = 1;\n\
             #10;\n$display(\"t=%0d\", $time);\n$finish;\nend\nendmodule",
        );
        let Item::Initial(i) = &f.modules[0].items[1] else {
            panic!()
        };
        let StmtKind::Block { stmts, .. } = &i.body.kind else {
            panic!()
        };
        assert_eq!(stmts.len(), 5);
        assert!(matches!(stmts[1].kind, StmtKind::Delay { .. }));
        assert!(matches!(
            stmts[3].kind,
            StmtKind::SysCall { ref name, .. } if name == "display"
        ));
    }

    #[test]
    fn clock_generator() {
        let f = parse_ok("module tb;\nreg clk;\nalways #5 clk = ~clk;\nendmodule");
        let Item::Always(a) = &f.modules[0].items[1] else {
            panic!()
        };
        assert!(matches!(a.body.kind, StmtKind::Delay { .. }));
    }

    #[test]
    fn for_loop() {
        let f = parse_ok(
            "module tb;\ninteger i;\nreg [7:0] m [0:3];\ninitial begin\n\
             for (i = 0; i < 4; i = i + 1) m[i] = i;\nend\nendmodule",
        );
        let Item::Initial(init) = &f.modules[0].items[2] else {
            panic!()
        };
        let StmtKind::Block { stmts, .. } = &init.body.kind else {
            panic!()
        };
        assert!(matches!(stmts[0].kind, StmtKind::For { .. }));
    }

    #[test]
    fn expression_precedence() {
        let f = parse_ok("module m(input a, b, c, output y); assign y = a & b | c; endmodule");
        let Item::Assign(a) = f.modules[0]
            .items
            .iter()
            .find(|i| matches!(i, Item::Assign(_)))
            .expect("assign")
        else {
            panic!()
        };
        // Must parse as (a & b) | c.
        let ExprKind::Binary { op, lhs, .. } = &a.assigns[0].1.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::BitOr);
        assert!(matches!(
            lhs.kind,
            ExprKind::Binary {
                op: BinaryOp::BitAnd,
                ..
            }
        ));
    }

    #[test]
    fn ternary_and_comparison() {
        parse_ok(
            "module m(input [3:0] a, output [3:0] y); assign y = a >= 4 ? a - 4 : a + 1; endmodule",
        );
    }

    #[test]
    fn concat_replicate_selects() {
        parse_ok(
            "module m(input [7:0] a, output [15:0] y);\n\
             assign y = {a[7:4], {2{a[1:0]}}, a[0], {4{1'b0}}, a[3]};\nendmodule",
        );
    }

    #[test]
    fn indexed_part_select() {
        let f =
            parse_ok("module m(input [31:0] a, output [7:0] y); assign y = a[8 +: 8]; endmodule");
        let Item::Assign(item) = f.modules[0]
            .items
            .iter()
            .find(|i| matches!(i, Item::Assign(_)))
            .expect("assign")
        else {
            panic!()
        };
        assert!(matches!(
            item.assigns[0].1.kind,
            ExprKind::IndexedSelect {
                ascending: true,
                ..
            }
        ));
    }

    #[test]
    fn signed_decl_and_system_functions() {
        parse_ok(
            "module m(input signed [7:0] a, b, output signed [7:0] s);\n\
             assign s = $signed(a) + $signed(b);\nendmodule",
        );
    }

    #[test]
    fn named_block_with_decl() {
        parse_ok("module m;\ninitial begin : blk\ninteger i;\ni = 0;\nend\nendmodule");
    }

    #[test]
    fn if_else_chain() {
        let f = parse_ok(
            "module m(input [2:0] x, output reg [1:0] p);\nalways @(x)\n\
             if (x == 0) p <= 0;\nelse if (x[0]) p <= 0;\nelse if (x[1]) p <= 1;\nelse p <= 2;\nendmodule",
        );
        let Item::Always(a) = &f.modules[0].items[2] else {
            panic!()
        };
        let StmtKind::Event { stmt, .. } = &a.body.kind else {
            panic!()
        };
        assert!(matches!(
            stmt.as_ref().expect("if").kind,
            StmtKind::If { .. }
        ));
    }

    #[test]
    fn intra_assignment_delay() {
        parse_ok("module m;\nreg a;\ninitial a = #3 1'b1;\nendmodule");
    }

    #[test]
    fn wait_and_repeat_and_forever() {
        parse_ok(
            "module m;\nreg clk, done;\ninitial begin\nwait (done);\n\
             repeat (3) @(posedge clk);\nend\nalways forever #5 clk = ~clk;\nendmodule",
        );
    }

    #[test]
    fn error_missing_endmodule() {
        assert!(parse("module m(input a);").is_err());
    }

    #[test]
    fn error_missing_semicolon() {
        assert!(parse("module m(input a, output y) assign y = a; endmodule").is_err());
    }

    #[test]
    fn error_bad_expression() {
        assert!(parse("module m(output y); assign y = ; endmodule").is_err());
    }

    #[test]
    fn error_unbalanced_begin() {
        assert!(parse("module m; initial begin x = 1; endmodule").is_err());
    }

    #[test]
    fn function_definition_non_ansi() {
        let f = parse_ok(
            "module m(input [3:0] a, output [3:0] y);\n\
             function [3:0] double;\ninput [3:0] v;\ndouble = v << 1;\nendfunction\n\
             assign y = double(a);\nendmodule",
        );
        let Item::Function(func) = &f.modules[0].items[2] else {
            panic!("expected function item")
        };
        assert_eq!(func.name, "double");
        assert!(func.range.is_some());
        assert_eq!(func.decls.len(), 1);
    }

    #[test]
    fn function_definition_ansi() {
        let f = parse_ok(
            "module m(input [7:0] a, b, output [7:0] y);\n\
             function [7:0] max2(input [7:0] x, input [7:0] z);\n\
             begin\nif (x > z) max2 = x;\nelse max2 = z;\nend\nendfunction\n\
             assign y = max2(a, b);\nendmodule",
        );
        let Item::Function(func) = &f.modules[0].items[2] else {
            panic!("expected function item")
        };
        assert_eq!(func.decls.len(), 2);
    }

    #[test]
    fn function_with_locals_and_loop() {
        parse_ok(
            "module m(input [7:0] a, output [3:0] y);\n\
             function [3:0] popcount;\ninput [7:0] v;\ninteger i;\nbegin\n\
             popcount = 0;\nfor (i = 0; i < 8; i = i + 1)\n\
             popcount = popcount + {3'b0, v[i]};\nend\nendfunction\n\
             assign y = popcount(a);\nendmodule",
        );
    }

    #[test]
    fn error_on_task_definition() {
        assert!(parse("module m; task t; endtask endmodule").is_err());
    }

    #[test]
    fn error_empty_source() {
        assert!(parse("").is_err());
        assert!(parse("// just a comment").is_err());
    }

    #[test]
    fn multiple_modules() {
        let f = parse_ok("module a; endmodule module b; endmodule");
        assert_eq!(f.modules.len(), 2);
        assert!(f.module("b").is_some());
    }

    #[test]
    fn power_is_right_associative() {
        let f = parse_ok("module m(output [31:0] y); assign y = 2 ** 3 ** 2; endmodule");
        let Item::Assign(a) = &f.modules[0].items[1] else {
            panic!()
        };
        // 2 ** (3 ** 2)
        let ExprKind::Binary { op, rhs, .. } = &a.assigns[0].1.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Pow);
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary {
                op: BinaryOp::Pow,
                ..
            }
        ));
    }

    #[test]
    fn header_parameter_list() {
        let f = parse_ok("module m #(parameter W = 8, D = 4) (input [W-1:0] a); endmodule");
        let params: Vec<&ParamDecl> = f.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Param(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].assigns.len(), 2);
    }

    #[test]
    fn syntax_check_api() {
        assert!(syntax_check("module m; endmodule").is_ok());
        assert!(syntax_check("module m; garbage!!! endmodule").is_err());
    }

    #[test]
    fn wire_with_initialiser() {
        parse_ok("module m(input a, b); wire y = a & b; endmodule");
    }

    #[test]
    fn reduction_operators() {
        parse_ok(
            "module m(input [3:0] a, output y0, y1, y2);\nassign y0 = &a;\n\
             assign y1 = ~|a;\nassign y2 = ^a ^ ~^a;\nendmodule",
        );
    }

    #[test]
    fn defparam_is_parsed() {
        parse_ok("module m; defparam u.W = 4; endmodule");
    }
}
