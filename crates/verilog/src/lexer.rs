//! Hand-written lexer for the Verilog-2005 subset.
//!
//! Comments (`//`, `/* */`) and compiler directives (`` `timescale `` etc.)
//! are skipped; directives are consumed to end of line, which is sufficient
//! for the benchmark corpus (no macro expansion is required by the problem
//! set).

use crate::error::ParseError;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Converts Verilog source text into a token stream.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the entire input, appending a final [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns the first lexical error encountered (unterminated string or
    /// block comment, stray character).
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    /// Tokenizes as much as possible, stopping silently at the first error.
    ///
    /// Used for corpus statistics and truncation where partial results are
    /// more useful than failure. Always ends with an `Eof` token.
    pub fn tokenize_lossy(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            match self.next_token() {
                Ok(tok) => {
                    let done = tok.kind == TokenKind::Eof;
                    out.push(tok);
                    if done {
                        return out;
                    }
                }
                Err(e) => {
                    out.push(Token {
                        kind: TokenKind::Eof,
                        span: e.span,
                    });
                    return out;
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::new(start, self.pos as u32),
                                ))
                            }
                        }
                    }
                }
                Some(b'`') => {
                    // Compiler directive: skip to end of line.
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let start = self.pos as u32;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::point(start),
            });
        };

        let kind = match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(),
            b'\\' => self.lex_escaped_ident(),
            b'$' => self.lex_sys_ident(),
            b'0'..=b'9' => self.lex_number()?,
            b'\'' => self.lex_based_literal(start)?,
            b'"' => self.lex_string(start)?,
            _ => self.lex_punct(start)?,
        };
        Ok(Token {
            kind,
            span: Span::new(start, self.pos as u32),
        })
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn lex_escaped_ident(&mut self) -> TokenKind {
        self.pos += 1; // backslash
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        TokenKind::Ident(self.src[start..self.pos].to_string())
    }

    fn lex_sys_ident(&mut self) -> TokenKind {
        self.pos += 1; // $
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        TokenKind::SysIdent(self.src[start..self.pos].to_string())
    }

    /// Lexes a number starting with a digit. If followed by `'`, continues
    /// into a based literal (`4'b01`). Also handles reals (`1.5`, `2e3`).
    fn lex_number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'_')) {
            self.pos += 1;
        }
        // Real literal?
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b'0'..=b'9')) {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'_')) {
                self.pos += 1;
            }
            self.maybe_exponent();
            return Ok(TokenKind::Real(self.src[start..self.pos].to_string()));
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && matches!(self.peek_at(1), Some(b'0'..=b'9') | Some(b'-') | Some(b'+'))
        {
            self.maybe_exponent();
            return Ok(TokenKind::Real(self.src[start..self.pos].to_string()));
        }
        // Based literal continuation: `8'hFF` (allow space before tick? no —
        // IEEE allows it, but we keep it strict and simple).
        if self.peek() == Some(b'\'') {
            self.consume_based_body()?;
        }
        Ok(TokenKind::Number(self.src[start..self.pos].to_string()))
    }

    fn maybe_exponent(&mut self) {
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut off = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                off = 2;
            }
            if matches!(self.peek_at(off), Some(b'0'..=b'9')) {
                self.pos += off;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
    }

    /// Lexes an unsized based literal starting at `'` (e.g. `'hFF`).
    fn lex_based_literal(&mut self, start: u32) -> Result<TokenKind, ParseError> {
        self.consume_based_body()?;
        Ok(TokenKind::Number(
            self.src[start as usize..self.pos].to_string(),
        ))
    }

    /// Consumes `'[s]<base><digits>` with the cursor on the tick.
    fn consume_based_body(&mut self) -> Result<(), ParseError> {
        let tick = self.pos as u32;
        self.pos += 1;
        if matches!(self.peek(), Some(b's') | Some(b'S')) {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'b' | b'B' | b'o' | b'O' | b'h' | b'H' | b'd' | b'D') => {
                self.pos += 1;
            }
            _ => {
                return Err(ParseError::new(
                    "expected number base after `'`",
                    Span::new(tick, self.pos as u32 + 1),
                ))
            }
        }
        // Allow whitespace between base and digits (e.g. `3 'b000` / `3'b 000`).
        while matches!(self.peek(), Some(b) if b == b' ' || b == b'\t') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9'
                | b'a'..=b'f'
                | b'A'..=b'F'
                | b'x'
                | b'X'
                | b'z'
                | b'Z'
                | b'?'
                | b'_' => self.pos += 1,
                _ => break,
            }
        }
        if self.pos == digits_start {
            return Err(ParseError::new(
                "expected digits after number base",
                Span::new(tick, self.pos as u32),
            ));
        }
        Ok(())
    }

    fn lex_string(&mut self, start: u32) -> Result<TokenKind, ParseError> {
        self.pos += 1; // opening quote
        let body_start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let body = self.src[body_start..self.pos].to_string();
                    self.pos += 1;
                    return Ok(TokenKind::Str(body));
                }
                Some(b'\\') => {
                    self.pos += 2;
                }
                Some(b'\n') | None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos as u32),
                    ))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn lex_punct(&mut self, start: u32) -> Result<TokenKind, ParseError> {
        use Punct::*;
        let b = self.bump().expect("caller checked non-empty");
        let two = self.peek();
        let three = self.peek_at(1);
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'@' => At,
            b'#' => Hash,
            b'?' => Question,
            b':' => Colon,
            b'+' => {
                if two == Some(b':') {
                    self.pos += 1;
                    PlusColon
                } else {
                    Plus
                }
            }
            b'-' => match two {
                Some(b':') => {
                    self.pos += 1;
                    MinusColon
                }
                Some(b'>') => {
                    self.pos += 1;
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if two == Some(b'*') {
                    self.pos += 1;
                    Power
                } else {
                    Star
                }
            }
            b'/' => Slash,
            b'%' => Percent,
            b'!' => match (two, three) {
                (Some(b'='), Some(b'=')) => {
                    self.pos += 2;
                    CaseNotEq
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    NotEq
                }
                _ => Bang,
            },
            b'~' => match two {
                Some(b'&') => {
                    self.pos += 1;
                    TildeAmp
                }
                Some(b'|') => {
                    self.pos += 1;
                    TildePipe
                }
                Some(b'^') => {
                    self.pos += 1;
                    TildeCaret
                }
                _ => Tilde,
            },
            b'&' => {
                if two == Some(b'&') {
                    self.pos += 1;
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if two == Some(b'|') {
                    self.pos += 1;
                    PipePipe
                } else {
                    Pipe
                }
            }
            b'^' => {
                if two == Some(b'~') {
                    self.pos += 1;
                    CaretTilde
                } else {
                    Caret
                }
            }
            b'=' => match (two, three) {
                (Some(b'='), Some(b'=')) => {
                    self.pos += 2;
                    CaseEq
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    EqEq
                }
                _ => Assign,
            },
            b'<' => match (two, three) {
                (Some(b'<'), Some(b'<')) => {
                    self.pos += 2;
                    AShl
                }
                (Some(b'<'), _) => {
                    self.pos += 1;
                    Shl
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    LtEq
                }
                _ => Lt,
            },
            b'>' => match (two, three) {
                (Some(b'>'), Some(b'>')) => {
                    self.pos += 2;
                    AShr
                }
                (Some(b'>'), _) => {
                    self.pos += 1;
                    Shr
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    GtEq
                }
                _ => Gt,
            },
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start, self.pos as u32),
                ))
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

/// Convenience: tokenizes `src` in one call.
///
/// # Errors
///
/// Propagates the first lexical error. See [`Lexer::tokenize`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lex")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_module_header() {
        let ks = kinds("module top(input clk);");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Module),
                TokenKind::Ident("top".into()),
                TokenKind::Punct(Punct::LParen),
                TokenKind::Keyword(Keyword::Input),
                TokenKind::Ident("clk".into()),
                TokenKind::Punct(Punct::RParen),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_directives() {
        let ks = kinds("// line\n/* block\nmore */ `timescale 1ns/1ps\nwire");
        assert_eq!(ks, vec![TokenKind::Keyword(Keyword::Wire), TokenKind::Eof]);
    }

    #[test]
    fn lexes_based_numbers() {
        let ks = kinds("4'b10xz 8'hFF 'd42 4'd12 2'sb11");
        let nums: Vec<String> = ks
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Number(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["4'b10xz", "8'hFF", "'d42", "4'd12", "2'sb11"]);
    }

    #[test]
    fn lexes_number_with_space_before_digits() {
        let ks = kinds("3'b 000");
        assert!(matches!(&ks[0], TokenKind::Number(s) if s == "3'b 000"));
    }

    #[test]
    fn lexes_real_numbers() {
        let ks = kinds("1.5 2e3 4.2e-1");
        let reals: Vec<String> = ks
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Real(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(reals, vec!["1.5", "2e3", "4.2e-1"]);
    }

    #[test]
    fn lexes_operators_longest_match() {
        let ks = kinds("<= << <<< == === != !== >= >> >>> ~^ ^~ ** -> +: -:");
        use Punct::*;
        let ps: Vec<Punct> = ks.into_iter().filter_map(|k| k.as_punct()).collect();
        assert_eq!(
            ps,
            vec![
                LtEq, Shl, AShl, EqEq, CaseEq, NotEq, CaseNotEq, GtEq, Shr, AShr, TildeCaret,
                CaretTilde, Power, Arrow, PlusColon, MinusColon
            ]
        );
    }

    #[test]
    fn lexes_system_idents() {
        let ks = kinds("$display $finish");
        assert_eq!(ks[0], TokenKind::SysIdent("display".into()),);
        assert_eq!(ks[1], TokenKind::SysIdent("finish".into()));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let ks = kinds(r#""hello %d\n""#);
        assert_eq!(ks[0], TokenKind::Str(r"hello %d\n".into()));
    }

    #[test]
    fn escaped_identifier() {
        let ks = kinds(r"\bus[0] ;");
        assert_eq!(ks[0], TokenKind::Ident("bus[0]".into()));
        assert_eq!(ks[1], TokenKind::Punct(Punct::Semi));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn error_on_unterminated_block_comment() {
        assert!(tokenize("/* abc").is_err());
    }

    #[test]
    fn error_on_bad_based_literal() {
        assert!(tokenize("4'q1").is_err());
        assert!(tokenize("4'b").is_err());
    }

    #[test]
    fn lossy_mode_recovers() {
        let toks = Lexer::new("wire \"oops").tokenize_lossy();
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Wire));
        assert_eq!(toks.last().expect("eof").kind, TokenKind::Eof);
    }

    #[test]
    fn spans_are_accurate() {
        let toks = tokenize("  wire x;").expect("lex");
        assert_eq!(toks[0].span, Span::new(2, 6));
        assert_eq!(toks[1].span, Span::new(7, 8));
        assert_eq!(toks[2].span, Span::new(8, 9));
    }

    #[test]
    fn question_alone_is_ternary() {
        let ks = kinds("a ? b : c");
        assert_eq!(ks[1], TokenKind::Punct(Punct::Question));
        assert_eq!(ks[3], TokenKind::Punct(Punct::Colon));
    }
}
